//! Quickstart: measure one Small Byte Range attack end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a testbed (client → Akamai-profile edge → Apache-like origin),
//! sends the Table IV exploited request for a 10 MB resource, and prints
//! the per-segment traffic and the amplification factor.

use rangeamp::attack::SbrAttack;
use rangeamp_cdn::Vendor;

fn main() {
    let ten_mb = 10 * 1024 * 1024;
    let attack = SbrAttack::new(Vendor::Akamai, ten_mb);

    println!(
        "exploited range case: {}",
        attack.exploited_case().description
    );

    let report = attack.run();
    println!(
        "attacker sent      {:>12} bytes of requests",
        report.traffic.attacker_request_bytes
    );
    println!(
        "attacker received  {:>12} bytes of responses",
        report.traffic.attacker_response_bytes
    );
    println!(
        "origin sent        {:>12} bytes of responses",
        report.traffic.victim_response_bytes
    );
    println!(
        "amplification      {:>12.0}×",
        report.amplification_factor()
    );
    println!();
    println!(
        "Paper Table IV reports 16 991× for Akamai at 10 MB; the factor is \
         proportional to the target resource size, so a 25 MB target exceeds 43 000×."
    );
}
