//! Benign traffic vs. attack traffic: replay a mixed workload through a
//! vulnerable CDN and watch (a) every legitimate client get exactly what
//! it asked for, and (b) the handful of attack requests dominate origin
//! traffic — while looking just like media-player probes to the origin.
//!
//! ```text
//! cargo run --release --example benign_vs_attack
//! ```

use rangeamp::workload::{evaluate_detector, replay_stream, TinyRangeDetector, WorkloadGenerator};
use rangeamp::{Testbed, TARGET_PATH};
use rangeamp_cdn::Vendor;

fn main() {
    const MB: u64 = 1024 * 1024;
    let size = 5 * MB;
    let bed = Testbed::builder()
        .vendor(Vendor::Cloudflare)
        .resource(TARGET_PATH, size)
        .build();

    let mut generator = WorkloadGenerator::new(42, size);
    let stream = generator.mixed_stream(100, 10);
    let benign = stream.iter().filter(|l| !l.is_attack).count();
    let attacks = stream.len() - benign;

    let (served_ok, origin_bytes) = replay_stream(&bed, &stream);
    println!("{benign} benign requests: {served_ok} served correctly");
    println!("{attacks} attack requests hidden in the stream");
    println!(
        "origin sent {:.1} MB total — ≥ {:.1} MB of it attack-induced",
        origin_bytes as f64 / MB as f64,
        (attacks as u64 * size) as f64 / MB as f64
    );

    let detector = TinyRangeDetector { tiny_threshold: 64 };
    let report = evaluate_detector(detector, &stream, size);
    println!();
    println!(
        "naive tiny-range detector: catches {:.0}% of attacks but flags {:.0}% of benign traffic",
        report.true_positive_rate * 100.0,
        report.false_positive_rate * 100.0
    );
    println!("— the §VI-C problem: attack requests look like media-player probes.");
}
