//! Mitigation evaluation: quantify each §VI-C defense against both
//! attacks, plus the weakness of origin-side rate limiting against a
//! distributed CDN-egress attack.
//!
//! ```text
//! cargo run --release --example mitigation_eval
//! ```

use rangeamp::mitigation::{
    evaluate_obr_defenses, evaluate_sbr_defenses, origin_rate_limit_admission,
};
use rangeamp_cdn::Vendor;

fn main() {
    const MB: u64 = 1024 * 1024;

    println!("SBR against Akamai (10 MB resource):");
    for outcome in evaluate_sbr_defenses(Vendor::Akamai, 10 * MB) {
        println!(
            "  {:<24} factor = {:>8.1}×   residual = {:>6.3}%",
            outcome.defense.name(),
            outcome.amplification_factor,
            outcome.residual_fraction * 100.0
        );
    }

    println!();
    println!("OBR on Cloudflare → Akamai (n = 512):");
    for outcome in evaluate_obr_defenses(Vendor::Cloudflare, Vendor::Akamai, 512) {
        println!(
            "  {:<24} factor = {:>8.1}×   residual = {:>6.3}%",
            outcome.defense.name(),
            outcome.amplification_factor,
            outcome.residual_fraction * 100.0
        );
    }

    println!();
    println!("origin-side rate limiting (1 req/s per peer allowed):");
    for (edges, rate) in [(1usize, 20u32), (20, 1), (200, 1)] {
        let admitted = origin_rate_limit_admission(1.0, edges, rate, 10);
        println!(
            "  {:>4} egress node(s) × {:>2} req/s  →  {:>5.1}% of attack traffic admitted",
            edges,
            rate,
            admitted * 100.0
        );
    }
    println!();
    println!(
        "Laziness (or a tight expansion cap) kills SBR; overlap rejection or \
         coalescing kills OBR; per-peer rate limits fail once the attack is \
         spread across the CDN's egress fleet — the paper's §VI-C conclusions."
    );
}
