//! SBR campaign: attack all 13 vendor profiles across resource sizes,
//! the way the paper's second experiment sweeps Fig 6.
//!
//! ```text
//! cargo run --release --example sbr_campaign
//! ```

use rangeamp::attack::SbrAttack;
use rangeamp::report::TextTable;
use rangeamp_cdn::Vendor;

fn main() {
    const MB: u64 = 1024 * 1024;
    let sizes = [MB, 5 * MB, 10 * MB];

    let mut table = TextTable::new(
        "SBR amplification campaign (response-byte ratios)",
        &["CDN", "case", "1MB", "5MB", "10MB", "client bytes (10MB)"],
    );
    for vendor in Vendor::ALL {
        let mut factors = Vec::new();
        let mut client_bytes = 0;
        let mut case = String::new();
        for &size in &sizes {
            let report = SbrAttack::new(vendor, size).run();
            factors.push(format!("{:.0}", report.amplification_factor()));
            client_bytes = report.traffic.attacker_response_bytes;
            case = report.exploited_case.clone();
        }
        table.row(vec![
            vendor.name().to_string(),
            case,
            factors[0].clone(),
            factors[1].clone(),
            factors[2].clone(),
            client_bytes.to_string(),
        ]);
    }
    println!("{table}");
    println!("Every CDN profile amplifies ≥ 3 orders of magnitude — the paper's core SBR finding.");
}
