//! Fault injection in ~20 lines: a Cloudflare edge in front of a flaky
//! origin, with retries, a circuit breaker and serve-stale.
//!
//! ```text
//! cargo run --release --example flaky_origin
//! ```

use rangeamp::{Testbed, TARGET_HOST, TARGET_PATH};
use rangeamp_cdn::{BreakerConfig, Vendor};
use rangeamp_http::Request;
use rangeamp_net::FaultPlan;

fn main() {
    let bed = Testbed::builder()
        .vendor(Vendor::Cloudflare)
        .resource(TARGET_PATH, 1024 * 1024)
        .fault_plan(FaultPlan::flaky_origin(0xF1A2))
        .breaker(BreakerConfig::default())
        .cache_ttl_ms(5_000) // short TTL so serve-stale has expired entries
        .build();

    for round in 0..32u32 {
        // Same path every round: once cached, refetches that fail fall
        // back to the (expired) copy instead of surfacing a 5xx.
        bed.edge().resilience().clock().advance_millis(10_000);
        let req = Request::get(TARGET_PATH)
            .header("Host", TARGET_HOST)
            .build();
        let resp = bed.request(&req);
        println!(
            "round {round:>2}: {} {}",
            resp.status().as_u16(),
            resp.headers().get("X-Cache").unwrap_or("-")
        );
    }

    let stats = bed.edge().resilience().stats();
    println!("\n{stats:#?}");
    println!("breaker state: {}", bed.edge().resilience().breaker_state());
}
