//! OBR cascade: chain Cloudflare (FCDN) in front of Akamai (BCDN), pack
//! the `Range` header with the maximum number of overlapping ranges the
//! two CDNs' header limits admit, and watch the `fcdn-bcdn` link inflate
//! while the attacker pays almost nothing.
//!
//! ```text
//! cargo run --release --example obr_cascade
//! ```

use rangeamp::attack::{obr_combos, ObrAttack};
use rangeamp::report::group_digits;
use rangeamp_cdn::Vendor;

fn main() {
    // The headline combo of Table V.
    let attack = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai);
    println!("range case shape : {:?}", attack.range_case());
    println!("max n (solver)   : {} overlapping ranges", attack.max_n());

    let report = attack.run();
    println!();
    println!("one multi-range request against a 1 KB resource:");
    println!(
        "  origin → BCDN   : {:>12} bytes (the resource, once)",
        group_digits(report.server_to_bcdn_bytes)
    );
    println!(
        "  BCDN  → FCDN    : {:>12} bytes ({}-part multipart response)",
        group_digits(report.bcdn_to_fcdn_bytes),
        report.n
    );
    println!(
        "  attacker accepts: {:>12} bytes (small TCP receive window)",
        group_digits(report.attacker_bytes)
    );
    println!(
        "  amplification   : {:>12.0}×",
        report.amplification_factor()
    );

    println!();
    println!("all 11 vulnerable cascades (Table V):");
    for (fcdn, bcdn) in obr_combos() {
        let report = ObrAttack::new(fcdn, bcdn).run();
        println!(
            "  {:<11} → {:<9}  n = {:>5}  factor = {:>8.2}×",
            fcdn.name(),
            bcdn.name(),
            report.n,
            report.amplification_factor()
        );
    }
}
