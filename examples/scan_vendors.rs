//! Vulnerability scan: rediscover the paper's Tables I–III by
//! differential probing of the 13 vendor profiles, exactly like the
//! paper's first experiment.
//!
//! ```text
//! cargo run --release --example scan_vendors
//! ```

use rangeamp::report::TextTable;
use rangeamp::scanner::Scanner;

fn main() {
    let scanner = Scanner::default();

    let mut table1 = TextTable::new(
        "Range forwarding behaviours vulnerable to the SBR attack",
        &["CDN", "Vulnerable Range Format", "Forwarded Range Format"],
    );
    for row in scanner.scan_table1() {
        table1.row(vec![
            row.vendor,
            row.vulnerable_format,
            row.forwarded_format,
        ]);
    }
    println!("{table1}");

    let mut table2 = TextTable::new(
        "Multi-range forwarding vulnerable to the OBR attack (FCDN side)",
        &["CDN", "Vulnerable Range Format", "Forwarded"],
    );
    for row in scanner.scan_table2() {
        table2.row(vec![
            row.vendor,
            row.vulnerable_format,
            row.forwarded_format,
        ]);
    }
    println!("{table2}");

    let mut table3 = TextTable::new(
        "Multi-range replying vulnerable to the OBR attack (BCDN side)",
        &["CDN", "Vulnerable Ranges Format", "Response Format"],
    );
    for row in scanner.scan_table3() {
        table3.row(vec![row.vendor, row.vulnerable_format, row.response_format]);
    }
    println!("{table3}");

    // Randomized fuzz campaign over one vendor, the aggregate view of
    // the paper's ABNF-generated corpus.
    let mut fuzz = TextTable::new(
        "Fuzz campaign (Akamai, 8 random probes per family)",
        &["family", "laziness", "deletion", "expansion", "amplifying"],
    );
    for summary in scanner.fuzz_report(rangeamp_cdn::Vendor::Akamai, 8) {
        fuzz.row(vec![
            summary.kind,
            summary.laziness.to_string(),
            summary.deletion.to_string(),
            summary.expansion.to_string(),
            summary.amplifying.to_string(),
        ]);
    }
    println!("{fuzz}");
}
