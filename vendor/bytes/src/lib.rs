//! Vendored stand-in for the `bytes` crate: a cheaply cloneable,
//! contiguous byte buffer with zero-copy slicing, backed by `Arc<[u8]>`.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer. Clones and sub-slices
/// share the same backing allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_static(b"")
    }

    /// Creates a `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `bytes` into a freshly allocated buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing the backing storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted, matching the
    /// real `bytes` crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n.checked_add(1).expect("range end overflow"),
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end,
            "range start must not be greater than end: {begin} > {end}"
        );
        assert!(end <= len, "range end out of bounds: {end} > {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The buffer contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Bytes {
        let len = vec.len();
        Bytes {
            data: Arc::from(vec),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(bytes: &'static [u8]) -> Bytes {
        Bytes::from_static(bytes)
    }
}

impl From<&'static str> for Bytes {
    fn from(text: &'static str) -> Bytes {
        Bytes::from_static(text.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(text: String) -> Bytes {
        Bytes::from(text.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_respects_bounds() {
        let all = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        assert_eq!(all.len(), 6);
        let mid = all.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let inclusive = all.slice(1..=2);
        assert_eq!(&inclusive[..], &[1, 2]);
        assert_eq!(all.slice(..).len(), 6);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..10);
    }
}
