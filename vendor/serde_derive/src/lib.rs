//! Vendored `#[derive(Serialize)]`, written against `proc_macro` alone
//! (no syn/quote available offline). It supports what this workspace
//! derives on: non-generic structs with named fields, and enums whose
//! variants are unit or single-field newtypes. Output follows serde's
//! externally-tagged convention: structs become objects in field order,
//! unit variants become their name as a string, newtype variants become
//! a single-entry object.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(code) => code.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("derive(Serialize) shim does not support generic types".to_string());
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group.stream(),
        other => return Err(format!("expected braced body, found {other:?}")),
    };

    match kind.as_str() {
        "struct" => expand_struct(&name, body),
        "enum" => expand_enum(&name, body),
        other => Err(format!("cannot derive Serialize for `{other}` items")),
    }
}

fn expand_struct(name: &str, body: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(field);
    }

    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))")
        })
        .collect();
    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{}])\n\
             }}\n\
         }}",
        entries.join(", ")
    ))
}

fn expand_enum(name: &str, body: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut arms = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                arms.push(format!(
                    "{name}::{variant}(__field0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from({variant:?}), \
                          ::serde::Serialize::to_value(__field0))])"
                ));
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "derive(Serialize) shim does not support struct variant `{variant}`"
                ));
            }
            _ => {
                arms.push(format!(
                    "{name}::{variant} => \
                         ::serde::Value::Str(::std::string::String::from({variant:?}))"
                ));
            }
        }
        // Consume up to and including the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }

    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join(", ")
    ))
}

/// Advances past `#[...]` attributes (including doc comments) and
/// `pub` / `pub(...)` visibility markers.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Advances past a type, stopping after the field-separating comma (or
/// at end of input). Commas nested inside `<...>` are not separators.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}
