//! Vendored stand-in for `crossbeam`, backed by `std::thread::scope`.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are provided, with
//! crossbeam's signatures (the spawn closure receives the scope so it
//! can spawn nested threads).

#![forbid(unsafe_code)]

/// Scoped-thread support mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, like
        /// crossbeam's API, so nested spawning works.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which threads that borrow from the environment
    /// can be spawned; all are joined before `scope` returns.
    ///
    /// `std::thread::scope` propagates child panics as a panic in the
    /// parent, so the `Err` arm is never produced here; the `Result`
    /// wrapper only preserves crossbeam's signature.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_observe_borrows() {
        let counter = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst));
            }
        })
        .expect("no thread panicked");
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
    }
}
