//! Vendored stand-in for `rand`: a deterministic splitmix64-based
//! `StdRng` behind the `Rng`/`SeedableRng` traits this workspace uses.
//!
//! Statistical quality is secondary here — what matters for the testbed
//! is that the same seed always produces the same sequence.

#![forbid(unsafe_code)]

/// Random number generator implementations.
pub mod rngs {
    /// Deterministic generator: splitmix64 over a 64-bit state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> rngs::StdRng {
        rngs::StdRng { state: seed }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// Panics when the range is empty, matching `rand`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing generator trait.
pub trait Rng {
    /// Draws the next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&y));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
        let _: u64 = rng.gen();
    }
}
