//! Vendored stand-in for `serde`'s `Serialize` half.
//!
//! Instead of serde's visitor-based `Serializer` API, serialization here
//! goes through a single JSON-like [`Value`] tree: `Serialize::to_value`
//! is the only required method, and `#[derive(Serialize)]` (from the
//! vendored `serde_derive`) generates it. `serde_json` then renders the
//! tree. Field order is declaration order, so output is deterministic.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON-like value tree, the intermediate form of all serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
