//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: a `Mutex` whose
//! `lock()` returns the guard directly (no `Result`). Poisoning is
//! ignored, matching parking_lot's semantics.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-tolerant API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous critical section does
    /// not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
