//! Vendored stand-in for `serde_json`: renders the vendored
//! `serde::Value` tree as JSON (compact and pretty), plus a `json!`
//! macro covering object/array/scalar literals.

#![forbid(unsafe_code)]

pub use serde::Value;

use serde::Serialize;

/// Serialization error. The vendored value model is total, so this is
/// never produced in practice; it exists to preserve signatures.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => render_f64(*x, out),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // serde_json refuses non-finite numbers; `null` is the closest
        // total behaviour.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from a JSON-shaped literal. Keys must be string
/// literals; values are arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$value) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_compact_and_pretty() {
        let value = json!({
            "name": "edge",
            "count": 3u64,
            "factor": 2.0f64,
            "tags": ["a", "b"],
        });
        assert_eq!(
            super::to_string(&value).unwrap(),
            r#"{"name":"edge","count":3,"factor":2.0,"tags":["a","b"]}"#
        );
        let pretty = super::to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"count\": 3"), "{pretty}");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(super::to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }
}
