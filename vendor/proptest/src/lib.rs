//! Vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `Strategy` with `prop_map`/`prop_flat_map`/`boxed`, integer/float
//! range strategies, a regex-subset string strategy, `Just`, tuples,
//! `prop_oneof!`, `collection::vec`, `option::of`, `any::<T>()`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! case seed instead of a minimal input), and case generation is
//! deterministic per test (seeded from the test's module path), which
//! suits this repo's reproducibility-first testbed.

#![forbid(unsafe_code)]

/// Deterministic RNG used to drive all strategies (splitmix64).
pub mod rng {
    /// Deterministic source of randomness for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Draws the next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform draw in `[lo, hi)`.
        pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }
    }
}

/// Runner configuration and failure types.
pub mod test_runner {
    /// Number of cases to run per property (`ProptestConfig` in the
    /// prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many successful cases each property must produce.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Outcome of a single failing or rejected test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The case was rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(message.into())
        }

        /// Builds the rejection variant.
        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            }
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::rng::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map }
        }

        /// Generates a value, then generates from the strategy it maps to.
        fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, map }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            rng.f64_in(self.start, self.end)
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// Regex-subset string generation backing `&str` strategies.
pub mod string {
    use crate::rng::TestRng;

    enum CharSet {
        Literal(char),
        Class(Vec<char>),
        Any,
    }

    struct Atom {
        set: CharSet,
        min: usize,
        max: usize,
    }

    /// Generates a string matching `pattern`, a subset of regex syntax:
    /// literals, `.`, character classes with ranges, and the quantifiers
    /// `{n}`, `{n,m}`, `?`, `*`, `+`.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let span = (atom.max - atom.min) as u64;
            let count = atom.min + rng.below(span + 1) as usize;
            for _ in 0..count {
                out.push(pick(&atom.set, rng));
            }
        }
        out
    }

    fn pick(set: &CharSet, rng: &mut TestRng) -> char {
        match set {
            CharSet::Literal(c) => *c,
            CharSet::Class(choices) => choices[rng.below(choices.len() as u64) as usize],
            CharSet::Any => {
                // Mostly printable ASCII, with occasional control and
                // non-ASCII characters to stress parsers.
                const EXTRAS: [char; 4] = ['\t', '\0', '\u{7f}', 'é'];
                if rng.below(16) == 0 {
                    EXTRAS[rng.below(EXTRAS.len() as u64) as usize]
                } else {
                    char::from(0x20 + rng.below(0x5f) as u8)
                }
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    set
                }
                '.' => {
                    i += 1;
                    CharSet::Any
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 1;
                    CharSet::Literal(c)
                }
                c => {
                    i += 1;
                    CharSet::Literal(c)
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            atoms.push(Atom { set, min, max });
        }
        atoms
    }

    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (CharSet, usize) {
        let mut choices = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = *chars
                .get(i)
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            match c {
                ']' => return (CharSet::Class(choices), i + 1),
                '-' if prev.is_some() && chars.get(i + 1).is_some_and(|&n| n != ']') => {
                    let lo = prev.expect("checked above");
                    let hi = chars[i + 1];
                    assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                    for code in (lo as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            if ch != lo {
                                choices.push(ch);
                            }
                        }
                    }
                    prev = None;
                    i += 2;
                }
                c => {
                    choices.push(c);
                    prev = Some(c);
                    i += 1;
                }
            }
        }
    }

    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('?') => (0, 1, i + 1),
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|offset| i + offset)
                    .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                };
                (min, max, close + 1)
            }
            _ => (1, 1, i),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors of values from `element` with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy yielding `None` or `Some` of the inner strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Option<S::Value>` with equal probability of `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type produced by [`any`].
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Whole-domain strategy for primitive types.
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    /// Returns the canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyStrategy<$t>;

                fn arbitrary() -> AnyStrategy<$t> {
                    AnyStrategy(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyStrategy<bool>;

        fn arbitrary() -> AnyStrategy<bool> {
            AnyStrategy(std::marker::PhantomData)
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// FNV-1a hash used to derive a per-test deterministic seed.
#[doc(hidden)]
pub fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Defines property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(...)]` inner attribute followed by `fn` items
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed = 0u32;
            let mut __attempt = 0u64;
            while __passed < __config.cases {
                __attempt += 1;
                if __attempt > u64::from(__config.cases) * 10 + 100 {
                    break; // Too many prop_assume! rejections; give up quietly.
                }
                let mut __rng = $crate::rng::TestRng::new(
                    __seed ^ __attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (attempt {} of test {}): {}",
                            __attempt,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_cases!(($config); $($rest)*);
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition, failing the current case (not panicking) so the
/// runner can report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality, failing the current case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __left, __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), __left, __right, format!($($fmt)+)
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::rng::TestRng::new(3);
        for _ in 0..200 {
            let s = crate::string::generate_matching("bytes=[-,0-9 ]{0,64}", &mut rng);
            assert!(s.starts_with("bytes="), "{s:?}");
            assert!(s.len() <= "bytes=".len() + 64);
            assert!(
                s["bytes=".len()..]
                    .chars()
                    .all(|c| matches!(c, '-' | ',' | '0'..='9' | ' ')),
                "{s:?}"
            );
            let t = crate::string::generate_matching("[A-Za-z][A-Za-z0-9-]{0,12}", &mut rng);
            assert!(t.chars().next().expect("non-empty").is_ascii_alphabetic());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000).prop_flat_map(|lo| (Just(lo), lo..1000u64));
        let a: Vec<_> = {
            let mut rng = crate::rng::TestRng::new(42);
            (0..50).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::rng::TestRng::new(42);
            (0..50).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
        for (lo, hi) in a {
            assert!(lo <= hi && hi < 1000);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 0u64..100, v in crate::collection::vec(0u8..10, 1..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            let choice = prop_oneof![Just(1u8), Just(2u8)];
            let mut rng = crate::rng::TestRng::new(x);
            let picked = choice.generate(&mut rng);
            prop_assert!(picked == 1 || picked == 2);
        }
    }
}
