//! Vendored stand-in for `criterion`: a minimal wall-clock harness with
//! criterion's API shape. It runs each benchmark a bounded number of
//! iterations, reports the mean per-iteration time, and performs no
//! statistical analysis — enough for `cargo bench` to build and give
//! ballpark numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation (reported alongside timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        std::hint::black_box(routine());
        let iters = self.sample_size.max(1) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iters;
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    let mut line = format!("{label:<40} {mean:>12.2?}/iter");
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Bytes(n) => {
                let _ = write!(line, "  {:>10.1} MiB/s", per_sec(n) / (1024.0 * 1024.0));
            }
            Throughput::Elements(n) => {
                let _ = write!(line, "  {:>10.1} elem/s", per_sec(n));
            }
        }
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.label),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Benchmarks `routine`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.label),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: 10,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        report(&id.label, &bencher, None);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
