//! Apache-emulating origin server for the RangeAmp testbed.
//!
//! The paper's origin is "Apache/2.4.18 with the default configuration"
//! on a 1000 Mbps Linux server (§V). This crate provides:
//!
//! * [`Resource`] / [`ResourceStore`] — synthetic target resources of
//!   exact sizes (the experiments sweep 1 KB .. 25 MB),
//! * [`OriginServer`] — RFC 7233-conformant request handling (200 / 206
//!   single-part / 206 multipart / 416), with the knobs the attacks turn:
//!   range support can be disabled (the OBR attacker disables it so the
//!   origin replies 200 with the full body — §IV-C), and multi-range
//!   hardening can be toggled (Apache's post-CVE-2011-3192 behaviour),
//! * [`RateLimiter`] — the "enforce local DoS defense" server-side
//!   mitigation of §VI-C,
//! * [`OverloadShedder`] — a concurrent-transfer budget; past it the
//!   origin sheds with `503` + `Retry-After`, the failure the edge
//!   resilience layer (retry, circuit breaker, serve-stale) reacts to.
//!
//! # Example
//!
//! ```
//! use rangeamp_origin::{OriginServer, ResourceStore};
//! use rangeamp_http::{Request, StatusCode};
//!
//! let mut store = ResourceStore::new();
//! store.add_synthetic("/1KB.jpg", 1000, "image/jpeg");
//! let origin = OriginServer::new(store);
//!
//! let req = Request::get("/1KB.jpg").header("Range", "bytes=0-0").build();
//! let resp = origin.handle(&req);
//! assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
//! assert_eq!(resp.headers().get("content-range"), Some("bytes 0-0/1000"));
//! assert_eq!(resp.body().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod overload;
mod ratelimit;
mod resource;
mod server;

pub use config::{MultiRangeBehavior, OriginConfig};
pub use overload::{OverloadPolicy, OverloadShedder};
pub use ratelimit::RateLimiter;
pub use resource::{Resource, ResourceStore};
pub use server::OriginServer;
