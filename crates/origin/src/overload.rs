//! Concurrent-transfer overload model for the origin.
//!
//! The paper's origin is a single Apache box on a 1000 Mbps uplink; under
//! an SBR flood it is the transfer slots, not the request parsing, that
//! run out first. [`OverloadShedder`] models that: each admitted
//! body-bearing response occupies a transfer slot for as long as the
//! payload takes to drain at the per-transfer rate, and once the
//! concurrent budget is exhausted further requests are shed with
//! `503 Service Unavailable` + `Retry-After` — the signal the edge
//! resilience layer (retry/backoff, circuit breaker) reacts to.
//!
//! Time is supplied by the caller in virtual milliseconds, like
//! [`RateLimiter`](crate::RateLimiter), so overload behaviour is fully
//! deterministic and composes with the token-bucket defense: the rate
//! limiter polices *request arrival*, the shedder polices *transfer
//! occupancy*.

use std::sync::Mutex;

/// Sizing of the origin's transfer budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Transfers allowed in flight at once; beyond this the origin sheds.
    pub max_concurrent_transfers: usize,
    /// Per-transfer drain rate in bytes per virtual millisecond. The
    /// default (12 500 B/ms = 100 Mbps) matches one-tenth of the paper's
    /// 1000 Mbps uplink.
    pub transfer_bytes_per_ms: u64,
    /// Value advertised in `Retry-After` when shedding, in seconds.
    pub retry_after_secs: u64,
}

impl Default for OverloadPolicy {
    fn default() -> OverloadPolicy {
        OverloadPolicy {
            max_concurrent_transfers: 64,
            transfer_bytes_per_ms: 12_500,
            retry_after_secs: 1,
        }
    }
}

impl OverloadPolicy {
    /// A deliberately tiny budget for tests and chaos campaigns.
    pub fn strict(max_concurrent_transfers: usize) -> OverloadPolicy {
        OverloadPolicy {
            max_concurrent_transfers,
            ..OverloadPolicy::default()
        }
    }
}

/// Tracks in-flight transfers and sheds past the budget.
///
/// Interior mutability keeps [`OriginServer::handle_at`] callable through
/// `&self`, mirroring how the rest of the testbed shares components.
///
/// [`OriginServer::handle_at`]: crate::OriginServer::handle_at
#[derive(Debug)]
pub struct OverloadShedder {
    policy: OverloadPolicy,
    /// Virtual end times (ms) of transfers still occupying a slot.
    active_until: Mutex<Vec<u64>>,
}

impl OverloadShedder {
    /// Creates a shedder with the given budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget admits no transfers or drains at zero rate.
    pub fn new(policy: OverloadPolicy) -> OverloadShedder {
        assert!(
            policy.max_concurrent_transfers > 0,
            "budget must admit transfers"
        );
        assert!(
            policy.transfer_bytes_per_ms > 0,
            "drain rate must be positive"
        );
        OverloadShedder {
            policy,
            active_until: Mutex::new(Vec::new()),
        }
    }

    /// The active budget.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// Tries to admit a transfer of `transfer_bytes` starting at `now_ms`.
    ///
    /// # Errors
    ///
    /// When the budget is exhausted, returns the `Retry-After` value in
    /// seconds the shed response should advertise.
    pub fn try_admit(&self, now_ms: u64, transfer_bytes: u64) -> Result<(), u64> {
        let mut active = self.active_until.lock().unwrap_or_else(|e| e.into_inner());
        active.retain(|&end| end > now_ms);
        if active.len() >= self.policy.max_concurrent_transfers {
            return Err(self.policy.retry_after_secs);
        }
        let drain_ms = transfer_bytes
            .div_ceil(self.policy.transfer_bytes_per_ms)
            .max(1);
        active.push(now_ms + drain_ms);
        Ok(())
    }

    /// Transfers occupying a slot at `now_ms`.
    pub fn in_flight(&self, now_ms: u64) -> usize {
        let active = self.active_until.lock().unwrap_or_else(|e| e.into_inner());
        active.iter().filter(|&&end| end > now_ms).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_budget_then_sheds() {
        let shedder = OverloadShedder::new(OverloadPolicy::strict(2));
        assert!(shedder.try_admit(0, 1_000_000).is_ok());
        assert!(shedder.try_admit(0, 1_000_000).is_ok());
        assert_eq!(shedder.try_admit(0, 1_000_000), Err(1));
        assert_eq!(shedder.in_flight(0), 2);
    }

    #[test]
    fn slots_free_after_drain_time() {
        let shedder = OverloadShedder::new(OverloadPolicy::strict(1));
        // 1 MB at 12 500 B/ms drains in 80 ms.
        assert!(shedder.try_admit(0, 1_000_000).is_ok());
        assert_eq!(shedder.try_admit(40, 1_000_000), Err(1));
        assert!(shedder.try_admit(80, 1_000_000).is_ok());
    }

    #[test]
    fn tiny_transfers_still_occupy_one_millisecond() {
        let shedder = OverloadShedder::new(OverloadPolicy::strict(1));
        assert!(shedder.try_admit(0, 1).is_ok());
        assert_eq!(shedder.in_flight(0), 1);
        assert_eq!(shedder.in_flight(1), 0);
    }

    #[test]
    #[should_panic]
    fn zero_budget_is_rejected() {
        OverloadShedder::new(OverloadPolicy::strict(0));
    }
}
