/// How the origin treats multi-range requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultiRangeBehavior {
    /// Apache's post-CVE-2011-3192 default: egregious multi-range
    /// requests (per the RFC 7233 §6.1 heuristic) are ignored and the
    /// whole representation is returned as a 200.
    #[default]
    IgnoreEgregious,
    /// Honor every range as requested, one part per range, no overlap
    /// checking — pre-fix behaviour, kept for ablations.
    Honor,
    /// Reject egregious requests with 416 instead of ignoring them.
    RejectEgregious,
}

/// Origin server configuration.
///
/// Defaults mirror the paper's testbed: Apache/2.4.18, default config,
/// range requests enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginConfig {
    /// Whether byte-range requests are supported at all. The OBR attacker
    /// disables this on their own origin so the BCDN always receives a
    /// 200 with the entire representation (paper §IV-C).
    pub ranges_enabled: bool,
    /// Multi-range handling when ranges are enabled.
    pub multi_range: MultiRangeBehavior,
    /// Maximum number of ranges honored in one request (Apache's
    /// `MaxRanges` directive; default 200). Requests beyond the limit are
    /// treated as if they carried no `Range` header.
    pub max_ranges: usize,
    /// `Server` response header value.
    pub server_header: String,
    /// Fixed `Date` header (virtual time keeps runs deterministic).
    pub date_header: String,
}

impl Default for OriginConfig {
    fn default() -> OriginConfig {
        OriginConfig {
            ranges_enabled: true,
            multi_range: MultiRangeBehavior::IgnoreEgregious,
            max_ranges: 200,
            server_header: "Apache/2.4.18 (Ubuntu)".to_string(),
            date_header: "Thu, 02 Jan 2020 00:00:00 GMT".to_string(),
        }
    }
}

impl OriginConfig {
    /// The paper's default testbed origin.
    pub fn apache_default() -> OriginConfig {
        OriginConfig::default()
    }

    /// An origin with range requests disabled — what the OBR attacker
    /// deploys behind the BCDN.
    pub fn ranges_disabled() -> OriginConfig {
        OriginConfig {
            ranges_enabled: false,
            ..OriginConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let config = OriginConfig::default();
        assert!(config.ranges_enabled);
        assert_eq!(config.multi_range, MultiRangeBehavior::IgnoreEgregious);
        assert_eq!(config.max_ranges, 200);
        assert!(config.server_header.contains("Apache/2.4.18"));
    }

    #[test]
    fn ranges_disabled_preset() {
        let config = OriginConfig::ranges_disabled();
        assert!(!config.ranges_enabled);
        assert_eq!(config.server_header, OriginConfig::default().server_header);
    }
}
