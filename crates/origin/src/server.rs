use rangeamp_http::multipart::MultipartBuilder;
use rangeamp_http::range::RangeHeader;
use rangeamp_http::{Method, Request, Response, ResponseBuilder, StatusCode};
use rangeamp_net::{SpanKind, Telemetry};

use crate::{MultiRangeBehavior, OriginConfig, OverloadShedder, Resource, ResourceStore};

/// The origin web server.
///
/// Handling follows RFC 7233 exactly as Apache does (see module tests for
/// the conformance matrix):
///
/// * no `Range` header, unsupported unit, or malformed value → `200` with
///   the full representation (a malformed `Range` is *ignored*, not
///   rejected),
/// * satisfiable single range → `206` with `Content-Range`,
/// * satisfiable multiple ranges → `206 multipart/byteranges`,
/// * syntactically valid but unsatisfiable → `416` with
///   `Content-Range: bytes */len`,
/// * ranges disabled → no `Accept-Ranges`, `Range` ignored entirely.
#[derive(Debug)]
pub struct OriginServer {
    store: ResourceStore,
    config: OriginConfig,
    overload: Option<OverloadShedder>,
    telemetry: Option<Telemetry>,
}

impl OriginServer {
    /// Creates a server over `store` with the paper's default Apache
    /// configuration.
    pub fn new(store: ResourceStore) -> OriginServer {
        OriginServer::with_config(store, OriginConfig::default())
    }

    /// Creates a server with an explicit configuration.
    pub fn with_config(store: ResourceStore, config: OriginConfig) -> OriginServer {
        OriginServer {
            store,
            config,
            overload: None,
            telemetry: None,
        }
    }

    /// Attaches an overload shedder: body-bearing responses occupy
    /// transfer slots, and past the budget [`handle_at`] answers `503`
    /// with `Retry-After` instead.
    ///
    /// [`handle_at`]: OriginServer::handle_at
    pub fn with_overload(mut self, shedder: OverloadShedder) -> OriginServer {
        self.overload = Some(shedder);
        self
    }

    /// The overload shedder, if one is attached.
    pub fn overload(&self) -> Option<&OverloadShedder> {
        self.overload.as_ref()
    }

    /// Attaches a telemetry bundle: every handled request records a
    /// server-side span (virtual start/end, request/response wire bytes,
    /// path, status) nested under whatever edge span is in flight.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> OriginServer {
        self.telemetry = Some(telemetry);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &OriginConfig {
        &self.config
    }

    /// Mutable configuration (the OBR attacker flips `ranges_enabled`
    /// here).
    pub fn config_mut(&mut self) -> &mut OriginConfig {
        &mut self.config
    }

    /// The document root.
    pub fn store(&self) -> &ResourceStore {
        &self.store
    }

    /// Handles one request at virtual time zero.
    ///
    /// Identical to [`handle_at`](OriginServer::handle_at) with
    /// `now_ms == 0`; kept as the simple entry point for callers that do
    /// not model time (the overload budget never frees at a frozen
    /// clock, so attach a shedder only through `handle_at` callers).
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_at(req, 0)
    }

    /// Handles one request at virtual time `now_ms`, producing the
    /// complete response.
    ///
    /// `HEAD` requests receive the `GET` response's headers with an empty
    /// payload; `If-None-Match` hits are answered `304 Not Modified`.
    /// With an [`OverloadShedder`] attached, successful body-bearing
    /// responses must win a transfer slot first — otherwise the request
    /// is shed with `503 Service Unavailable` and a `Retry-After` header.
    pub fn handle_at(&self, req: &Request, now_ms: u64) -> Response {
        let span = self.telemetry.as_ref().map(|tel| {
            let mut span = tel
                .tracer()
                .start_span("origin-handle", SpanKind::Origin, now_ms);
            span.attr("path", req.uri().path().to_string());
            if let Some(range) = req.headers().get("range") {
                span.attr("range", range);
            }
            span.add_bytes_in(req.wire_len());
            span
        });
        let resp = self.handle_at_core(req, now_ms);
        if let Some(mut span) = span {
            let tel = self.telemetry.as_ref().expect("span implies telemetry");
            let status = resp.status().as_u16().to_string();
            span.add_bytes_out(resp.wire_len());
            span.attr("status", status.clone());
            span.finish(now_ms);
            tel.metrics()
                .counter_add("origin_requests_total", &[("status", &status)], 1);
        }
        resp
    }

    fn handle_at_core(&self, req: &Request, now_ms: u64) -> Response {
        let resp = self.respond(req);
        if let Some(shedder) = &self.overload {
            if resp.status().is_success() && !resp.body().is_empty() {
                if let Err(retry_after_secs) = shedder.try_admit(now_ms, resp.body().len()) {
                    return self
                        .base_response(StatusCode::SERVICE_UNAVAILABLE)
                        .header("Retry-After", retry_after_secs.to_string())
                        .sized_body("origin transfer budget exhausted")
                        .build();
                }
            }
        }
        resp
    }

    fn respond(&self, req: &Request) -> Response {
        if !matches!(req.method(), Method::Get | Method::Head) {
            return self
                .base_response(StatusCode::BAD_REQUEST)
                .sized_body("method not supported by testbed origin")
                .build();
        }

        let Some(resource) = self.store.get(req.uri().path()) else {
            return self
                .base_response(StatusCode::NOT_FOUND)
                .sized_body("not found")
                .build();
        };

        // Conditional GET (RFC 7232): a matching validator short-circuits
        // to 304 — this is what well-behaved cache revalidation produces.
        if let Some(if_none_match) = req.headers().get("if-none-match") {
            if if_none_match == resource.etag() || if_none_match == "*" {
                return self
                    .base_response(StatusCode::NOT_MODIFIED)
                    .header("ETag", resource.etag())
                    .build();
            }
        }

        if req.method() == &Method::Head {
            // Same headers as GET, no payload (RFC 7231 §4.3.2).
            let mut resp = self.handle_get(req, resource);
            let declared = resp.body().len().to_string();
            resp.set_body(rangeamp_http::Body::empty());
            resp.headers_mut().set("Content-Length", declared);
            return resp;
        }
        self.handle_get(req, resource)
    }

    fn handle_get(&self, req: &Request, resource: &Resource) -> Response {
        let range_value = req.headers().get("range");
        if !self.config.ranges_enabled {
            // Range support off: header ignored, no Accept-Ranges.
            return self.full_response(resource, false);
        }

        let Some(range_value) = range_value else {
            return self.full_response(resource, true);
        };
        let Ok(header) = RangeHeader::parse(range_value) else {
            // Malformed Range headers are ignored per RFC 7233 §3.1.
            return self.full_response(resource, true);
        };

        // If-Range (RFC 7233 §3.2): a failed validator voids the Range
        // header and the entire representation is sent.
        if let Some(if_range) = req.headers().get("if-range") {
            match rangeamp_http::IfRange::parse(if_range) {
                Ok(validator)
                    if !validator.matches(
                        Some(resource.etag()),
                        Some(self.config.date_header.as_str()),
                    ) =>
                {
                    return self.full_response(resource, true);
                }
                Ok(_) => {}
                Err(_) => return self.full_response(resource, true),
            }
        }

        if header.is_multi() {
            let too_many = header.specs().len() > self.config.max_ranges;
            let egregious = header.is_egregious(resource.len());
            match self.config.multi_range {
                MultiRangeBehavior::IgnoreEgregious if too_many || egregious => {
                    return self.full_response(resource, true);
                }
                MultiRangeBehavior::RejectEgregious if too_many || egregious => {
                    return self.unsatisfiable_response(resource);
                }
                _ => {}
            }
        }

        let resolved = header.resolve(resource.len());
        match resolved.len() {
            0 => self.unsatisfiable_response(resource),
            1 => {
                let range = resolved[0];
                let content_range = rangeamp_http::range::ContentRange::Satisfied {
                    range,
                    complete_length: resource.len(),
                };
                self.base_response(StatusCode::PARTIAL_CONTENT)
                    .header("Last-Modified", self.config.date_header.clone())
                    .header("ETag", resource.etag())
                    .header("Accept-Ranges", "bytes")
                    .header("Content-Range", content_range.to_string())
                    .header("Content-Type", resource.content_type())
                    .sized_body(resource.slice(range.first, range.last))
                    .build()
            }
            _ => {
                let mut builder = MultipartBuilder::new(resource.content_type(), resource.len());
                for range in &resolved {
                    builder = builder.part(*range, resource.slice(range.first, range.last));
                }
                let content_type = builder.content_type_header();
                self.base_response(StatusCode::PARTIAL_CONTENT)
                    .header("Last-Modified", self.config.date_header.clone())
                    .header("ETag", resource.etag())
                    .header("Accept-Ranges", "bytes")
                    .header("Content-Type", content_type)
                    .sized_body(builder.build())
                    .build()
            }
        }
    }

    fn base_response(&self, status: StatusCode) -> ResponseBuilder {
        Response::builder(status)
            .header("Date", self.config.date_header.clone())
            .header("Server", self.config.server_header.clone())
    }

    fn full_response(&self, resource: &Resource, advertise_ranges: bool) -> Response {
        let mut builder = self
            .base_response(StatusCode::OK)
            .header("Last-Modified", self.config.date_header.clone())
            .header("ETag", resource.etag());
        if advertise_ranges {
            builder = builder.header("Accept-Ranges", "bytes");
        }
        builder
            .header("Content-Type", resource.content_type())
            .sized_body(resource.full_body())
            .build()
    }

    fn unsatisfiable_response(&self, resource: &Resource) -> Response {
        let content_range = rangeamp_http::range::ContentRange::Unsatisfied {
            complete_length: resource.len(),
        };
        self.base_response(StatusCode::RANGE_NOT_SATISFIABLE)
            .header("Content-Range", content_range.to_string())
            .sized_body("range not satisfiable")
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rangeamp_http::multipart;

    fn server_with(path: &str, size: u64) -> OriginServer {
        let mut store = ResourceStore::new();
        store.add_synthetic(path, size, "application/octet-stream");
        OriginServer::new(store)
    }

    fn get(path: &str, range: Option<&str>) -> Request {
        let mut builder = Request::get(path).header("Host", "origin.example");
        if let Some(range) = range {
            builder = builder.header("Range", range);
        }
        builder.build()
    }

    #[test]
    fn plain_get_returns_200_with_accept_ranges() {
        let server = server_with("/f.bin", 1000);
        let resp = server.handle(&get("/f.bin", None));
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.headers().get("accept-ranges"), Some("bytes"));
        assert_eq!(resp.body().len(), 1000);
        assert_eq!(resp.headers().get("content-length"), Some("1000"));
    }

    #[test]
    fn missing_resource_is_404() {
        let server = server_with("/f.bin", 10);
        assert_eq!(
            server.handle(&get("/nope", None)).status(),
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn single_range_returns_206_fig2c() {
        // Paper Fig 2a/2c: bytes=0-0 of a 1000-byte resource.
        let server = server_with("/1KB.jpg", 1000);
        let resp = server.handle(&get("/1KB.jpg", Some("bytes=0-0")));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.headers().get("content-length"), Some("1"));
        assert_eq!(resp.headers().get("content-range"), Some("bytes 0-0/1000"));
        assert_eq!(resp.headers().get("accept-ranges"), Some("bytes"));
    }

    #[test]
    fn multi_range_returns_multipart_fig2d() {
        // Paper Fig 2b/2d: bytes=1-1,-2 of a 1000-byte resource.
        let server = server_with("/1KB.jpg", 1000);
        let resp = server.handle(&get("/1KB.jpg", Some("bytes=1-1,-2")));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        let content_type = resp.headers().get("content-type").unwrap();
        assert!(content_type.starts_with("multipart/byteranges; boundary="));
        // A multipart 206 must not carry a top-level Content-Range.
        assert_eq!(resp.headers().get("content-range"), None);
        let boundary = content_type.split("boundary=").nth(1).unwrap();
        let parts = multipart::parse(resp.body().as_bytes(), boundary).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].body.len(), 1);
        assert_eq!(parts[1].body.len(), 2);
    }

    #[test]
    fn unsatisfiable_range_is_416_with_star_content_range() {
        let server = server_with("/f.bin", 1000);
        let resp = server.handle(&get("/f.bin", Some("bytes=5000-6000")));
        assert_eq!(resp.status(), StatusCode::RANGE_NOT_SATISFIABLE);
        assert_eq!(resp.headers().get("content-range"), Some("bytes */1000"));
    }

    #[test]
    fn malformed_range_is_ignored_not_rejected() {
        let server = server_with("/f.bin", 1000);
        let resp = server.handle(&get("/f.bin", Some("bytes=9-2")));
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body().len(), 1000);
    }

    #[test]
    fn ranges_disabled_ignores_range_and_hides_accept_ranges() {
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 1000, "x/y");
        let server = OriginServer::with_config(store, OriginConfig::ranges_disabled());
        let resp = server.handle(&get("/f.bin", Some("bytes=0-0")));
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body().len(), 1000);
        assert_eq!(resp.headers().get("accept-ranges"), None);
    }

    #[test]
    fn egregious_multi_range_is_ignored_by_default() {
        // Apache-style hardening: n overlapping ranges → plain 200.
        let server = server_with("/f.bin", 1000);
        let range = RangeHeader::overlapping(64).to_string();
        let resp = server.handle(&get("/f.bin", Some(&range)));
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body().len(), 1000);
    }

    #[test]
    fn honor_mode_builds_n_overlapping_parts() {
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 1000, "x/y");
        let config = OriginConfig {
            multi_range: MultiRangeBehavior::Honor,
            ..OriginConfig::default()
        };
        let server = OriginServer::with_config(store, config);
        let range = RangeHeader::overlapping(8).to_string();
        let resp = server.handle(&get("/f.bin", Some(&range)));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert!(resp.body().len() > 8 * 1000);
    }

    #[test]
    fn reject_mode_returns_416_for_egregious() {
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 1000, "x/y");
        let config = OriginConfig {
            multi_range: MultiRangeBehavior::RejectEgregious,
            ..OriginConfig::default()
        };
        let server = OriginServer::with_config(store, config);
        let range = RangeHeader::overlapping(64).to_string();
        let resp = server.handle(&get("/f.bin", Some(&range)));
        assert_eq!(resp.status(), StatusCode::RANGE_NOT_SATISFIABLE);
    }

    #[test]
    fn max_ranges_limit_applies() {
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 100_000, "x/y");
        let config = OriginConfig {
            multi_range: MultiRangeBehavior::Honor,
            max_ranges: 4,
            ..OriginConfig::default()
        };
        // Honor mode still enforces MaxRanges? No: limit only consulted in
        // the hardened modes. Honor is the deliberately-vulnerable mode.
        let server = OriginServer::with_config(store, config);
        let specs: Vec<String> = (0..6)
            .map(|i| format!("{}-{}", i * 10, i * 10 + 1))
            .collect();
        let resp = server.handle(&get("/f.bin", Some(&format!("bytes={}", specs.join(",")))));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
    }

    #[test]
    fn non_get_is_rejected() {
        let server = server_with("/f.bin", 10);
        let req = Request::builder(Method::Post, "/f.bin").build();
        assert_eq!(server.handle(&req).status(), StatusCode::BAD_REQUEST);
    }

    #[test]
    fn head_returns_headers_without_body() {
        let server = server_with("/f.bin", 1000);
        let req = Request::builder(Method::Head, "/f.bin").build();
        let resp = server.handle(&req);
        assert_eq!(resp.status(), StatusCode::OK);
        assert!(resp.body().is_empty());
        assert_eq!(resp.headers().get("content-length"), Some("1000"));
        assert_eq!(resp.headers().get("accept-ranges"), Some("bytes"));
    }

    #[test]
    fn head_with_range_reports_partial_length() {
        let server = server_with("/f.bin", 1000);
        let req = Request::builder(Method::Head, "/f.bin")
            .header("Range", "bytes=0-9")
            .build();
        let resp = server.handle(&req);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert!(resp.body().is_empty());
        assert_eq!(resp.headers().get("content-length"), Some("10"));
    }

    #[test]
    fn matching_if_none_match_returns_304() {
        let server = server_with("/f.bin", 1000);
        let etag = server.store().get("/f.bin").unwrap().etag().to_string();
        let req = Request::get("/f.bin")
            .header("If-None-Match", etag.clone())
            .build();
        let resp = server.handle(&req);
        assert_eq!(resp.status(), StatusCode::NOT_MODIFIED);
        assert!(resp.body().is_empty());
        assert_eq!(resp.headers().get("etag"), Some(etag.as_str()));
    }

    #[test]
    fn stale_if_none_match_returns_full_body() {
        let server = server_with("/f.bin", 1000);
        let req = Request::get("/f.bin")
            .header("If-None-Match", "\"other\"")
            .build();
        let resp = server.handle(&req);
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body().len(), 1000);
    }

    #[test]
    fn query_string_is_ignored_for_lookup() {
        let server = server_with("/f.bin", 10);
        let resp = server.handle(&get("/f.bin?cachebust=123", None));
        assert_eq!(resp.status(), StatusCode::OK);
    }

    #[test]
    fn if_range_with_matching_etag_honors_the_range() {
        let server = server_with("/f.bin", 1000);
        let etag = server.store().get("/f.bin").unwrap().etag().to_string();
        let req = Request::get("/f.bin")
            .header("Range", "bytes=0-0")
            .header("If-Range", etag)
            .build();
        let resp = server.handle(&req);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.body().len(), 1);
    }

    #[test]
    fn if_range_with_stale_etag_sends_full_representation() {
        let server = server_with("/f.bin", 1000);
        let req = Request::get("/f.bin")
            .header("Range", "bytes=0-0")
            .header("If-Range", "\"stale-etag\"")
            .build();
        let resp = server.handle(&req);
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body().len(), 1000);
    }

    #[test]
    fn if_range_with_matching_date_honors_the_range() {
        let server = server_with("/f.bin", 1000);
        let date = server.config().date_header.clone();
        let req = Request::get("/f.bin")
            .header("Range", "bytes=5-9")
            .header("If-Range", date)
            .build();
        let resp = server.handle(&req);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.body().len(), 5);
    }

    #[test]
    fn if_range_with_weak_etag_sends_full_representation() {
        let server = server_with("/f.bin", 1000);
        let etag = server.store().get("/f.bin").unwrap().etag().to_string();
        let req = Request::get("/f.bin")
            .header("Range", "bytes=0-0")
            .header("If-Range", format!("W/{etag}"))
            .build();
        let resp = server.handle(&req);
        assert_eq!(resp.status(), StatusCode::OK);
    }

    #[test]
    fn overloaded_origin_sheds_with_retry_after() {
        use crate::{OverloadPolicy, OverloadShedder};
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 1_000_000, "x/y");
        let server =
            OriginServer::new(store).with_overload(OverloadShedder::new(OverloadPolicy::strict(1)));
        assert_eq!(
            server.handle_at(&get("/f.bin", None), 0).status(),
            StatusCode::OK
        );
        // Second request at the same instant: budget of one is occupied.
        let shed = server.handle_at(&get("/f.bin", None), 0);
        assert_eq!(shed.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(shed.headers().get("retry-after"), Some("1"));
        // 1 MB drains in 80 ms at the default rate; afterwards we're
        // admitted again.
        let later = server.handle_at(&get("/f.bin", None), 100);
        assert_eq!(later.status(), StatusCode::OK);
    }

    #[test]
    fn shedding_ignores_bodyless_responses() {
        use crate::{OverloadPolicy, OverloadShedder};
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 1000, "x/y");
        let server =
            OriginServer::new(store).with_overload(OverloadShedder::new(OverloadPolicy::strict(1)));
        let etag = server.store().get("/f.bin").unwrap().etag().to_string();
        let conditional = Request::get("/f.bin").header("If-None-Match", etag).build();
        // 304s carry no payload, so they never occupy a transfer slot.
        for _ in 0..5 {
            assert_eq!(
                server.handle_at(&conditional, 0).status(),
                StatusCode::NOT_MODIFIED
            );
        }
        assert_eq!(server.overload().unwrap().in_flight(0), 0);
    }

    #[test]
    fn suffix_range_served_from_tail() {
        let server = server_with("/f.bin", 1000);
        let resp = server.handle(&get("/f.bin", Some("bytes=-1")));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(
            resp.headers().get("content-range"),
            Some("bytes 999-999/1000")
        );
        assert_eq!(resp.body().len(), 1);
    }
}
