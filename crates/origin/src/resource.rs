use std::collections::HashMap;
use std::fmt;

use bytes::Bytes;
use rangeamp_http::Body;

/// A static web resource served by the origin.
///
/// Content is synthetic but deterministic: byte *i* is a function of the
/// path hash and *i*, so range slices can be verified end-to-end without
/// storing reference copies.
#[derive(Clone)]
pub struct Resource {
    path: String,
    content_type: String,
    content: Bytes,
    etag: String,
}

impl Resource {
    /// Creates a resource with explicit content.
    pub fn new(path: &str, content_type: &str, content: impl Into<Bytes>) -> Resource {
        let content = content.into();
        let etag = Resource::compute_etag(path, &content);
        Resource {
            path: path.to_string(),
            content_type: content_type.to_string(),
            content,
            etag,
        }
    }

    /// Creates a `size`-byte resource with deterministic synthetic
    /// content.
    pub fn synthetic(path: &str, size: u64, content_type: &str) -> Resource {
        let seed = fnv1a(path.as_bytes());
        let mut content = Vec::with_capacity(size as usize);
        // A 256-byte pattern keyed on the path: cheap to generate, and any
        // mis-sliced range is overwhelmingly likely to be detected.
        for i in 0..size {
            content.push((seed ^ i) as u8);
        }
        Resource::new(path, content_type, content)
    }

    /// Absolute path of the resource (no query).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Media type.
    pub fn content_type(&self) -> &str {
        &self.content_type
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.content.len() as u64
    }

    /// Whether the resource is empty.
    pub fn is_empty(&self) -> bool {
        self.content.is_empty()
    }

    /// Entire content as a zero-copy body.
    pub fn full_body(&self) -> Body {
        Body::from_bytes(self.content.clone())
    }

    /// Zero-copy slice of the content covering the inclusive byte range.
    ///
    /// # Panics
    ///
    /// Panics if `last >= len()` or `first > last`.
    pub fn slice(&self, first: u64, last: u64) -> Body {
        assert!(first <= last && last < self.len(), "slice out of bounds");
        Body::from_bytes(self.content.slice(first as usize..=last as usize))
    }

    /// Apache-style strong ETag.
    pub fn etag(&self) -> &str {
        &self.etag
    }

    fn compute_etag(path: &str, content: &Bytes) -> String {
        // Apache derives ETags from inode/mtime/size; we derive from
        // path/size, which is just as stable for a simulated filesystem.
        format!("\"{:x}-{:x}\"", fnv1a(path.as_bytes()), content.len())
    }
}

impl fmt::Debug for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Resource")
            .field("path", &self.path)
            .field("content_type", &self.content_type)
            .field("len", &self.content.len())
            .finish()
    }
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The origin's document root: a path-keyed set of resources.
#[derive(Debug, Clone, Default)]
pub struct ResourceStore {
    resources: HashMap<String, Resource>,
}

impl ResourceStore {
    /// Creates an empty store.
    pub fn new() -> ResourceStore {
        ResourceStore::default()
    }

    /// Inserts a resource, replacing any existing one at the same path.
    pub fn add(&mut self, resource: Resource) {
        self.resources.insert(resource.path().to_string(), resource);
    }

    /// Convenience: inserts a synthetic resource and returns its size.
    pub fn add_synthetic(&mut self, path: &str, size: u64, content_type: &str) -> u64 {
        self.add(Resource::synthetic(path, size, content_type));
        size
    }

    /// Looks up the resource at `path` (query strings must already be
    /// stripped by the caller; origins serve the same file regardless of
    /// query, which is what makes cache-busting free for the attacker).
    pub fn get(&self, path: &str) -> Option<&Resource> {
        self.resources.get(path)
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_content_is_deterministic() {
        let a = Resource::synthetic("/f.bin", 1024, "application/octet-stream");
        let b = Resource::synthetic("/f.bin", 1024, "application/octet-stream");
        assert_eq!(a.full_body().as_bytes(), b.full_body().as_bytes());
        let c = Resource::synthetic("/g.bin", 1024, "application/octet-stream");
        assert_ne!(a.full_body().as_bytes(), c.full_body().as_bytes());
    }

    #[test]
    fn slice_matches_full_content() {
        let r = Resource::synthetic("/f.bin", 4096, "application/octet-stream");
        let full = r.full_body();
        let part = r.slice(100, 199);
        assert_eq!(part.as_bytes(), &full.as_bytes()[100..200]);
        assert_eq!(part.len(), 100);
    }

    #[test]
    fn single_byte_slice() {
        let r = Resource::synthetic("/f.bin", 10, "x/y");
        assert_eq!(r.slice(0, 0).len(), 1);
        assert_eq!(r.slice(9, 9).len(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Resource::synthetic("/f.bin", 10, "x/y").slice(5, 10);
    }

    #[test]
    fn etag_is_stable_and_quoted() {
        let r = Resource::synthetic("/f.bin", 10, "x/y");
        assert!(r.etag().starts_with('"') && r.etag().ends_with('"'));
        assert_eq!(r.etag(), Resource::synthetic("/f.bin", 10, "x/y").etag());
    }

    #[test]
    fn store_lookup() {
        let mut store = ResourceStore::new();
        store.add_synthetic("/a.bin", 100, "application/octet-stream");
        assert!(store.get("/a.bin").is_some());
        assert!(store.get("/missing").is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn store_replaces_same_path() {
        let mut store = ResourceStore::new();
        store.add_synthetic("/a.bin", 100, "x/y");
        store.add_synthetic("/a.bin", 200, "x/y");
        assert_eq!(store.get("/a.bin").unwrap().len(), 200);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn debug_does_not_dump_content() {
        let r = Resource::synthetic("/f.bin", 1 << 20, "x/y");
        let dbg = format!("{r:?}");
        assert!(dbg.len() < 200, "debug output too large: {dbg}");
    }
}
