//! Server-side "local DoS defense" mitigation (paper §VI-C).
//!
//! The paper notes a victim origin can deploy local request filtering or
//! bandwidth limiting for temporary mitigation — and that it is a weak
//! defense because attack requests arrive from many CDN egress nodes and
//! are indistinguishable from benign traffic. [`RateLimiter`] implements
//! the defense so the mitigation benchmarks can quantify both its effect
//! and its collateral damage.

use std::collections::HashMap;

/// Token-bucket rate limiter keyed by requesting peer.
///
/// Time is supplied by the caller (virtual milliseconds), keeping the
/// limiter deterministic under the testbed's virtual clock.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    capacity: f64,
    refill_per_ms: f64,
    buckets: HashMap<String, Bucket>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    updated_ms: u64,
}

impl RateLimiter {
    /// Creates a limiter allowing a sustained `rate_per_sec` requests per
    /// peer with bursts up to `burst`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not finite and positive.
    pub fn new(rate_per_sec: f64, burst: u32) -> RateLimiter {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "rate must be positive"
        );
        RateLimiter {
            capacity: burst.max(1) as f64,
            refill_per_ms: rate_per_sec / 1000.0,
            buckets: HashMap::new(),
        }
    }

    /// Records a request from `peer` at virtual time `now_ms`; returns
    /// whether it is admitted.
    pub fn admit(&mut self, peer: &str, now_ms: u64) -> bool {
        let bucket = self.buckets.entry(peer.to_string()).or_insert(Bucket {
            tokens: self.capacity,
            updated_ms: now_ms,
        });
        let elapsed = now_ms.saturating_sub(bucket.updated_ms) as f64;
        bucket.tokens = (bucket.tokens + elapsed * self.refill_per_ms).min(self.capacity);
        bucket.updated_ms = now_ms;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Number of peers currently tracked.
    pub fn tracked_peers(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_burst_then_throttles() {
        let mut limiter = RateLimiter::new(1.0, 3);
        assert!(limiter.admit("edge-1", 0));
        assert!(limiter.admit("edge-1", 0));
        assert!(limiter.admit("edge-1", 0));
        assert!(!limiter.admit("edge-1", 0));
    }

    #[test]
    fn refills_over_time() {
        let mut limiter = RateLimiter::new(2.0, 1);
        assert!(limiter.admit("edge-1", 0));
        assert!(!limiter.admit("edge-1", 100));
        // 2 req/s → one token back after 500 ms.
        assert!(limiter.admit("edge-1", 600));
    }

    #[test]
    fn peers_are_independent() {
        let mut limiter = RateLimiter::new(1.0, 1);
        assert!(limiter.admit("edge-1", 0));
        assert!(limiter.admit("edge-2", 0));
        assert!(!limiter.admit("edge-1", 0));
        assert_eq!(limiter.tracked_peers(), 2);
    }

    #[test]
    fn distributed_attack_defeats_per_peer_limiting() {
        // The paper's point: requests arrive from many CDN egress nodes,
        // so per-peer limits admit nearly everything.
        let mut limiter = RateLimiter::new(1.0, 1);
        let admitted = (0..100)
            .filter(|i| limiter.admit(&format!("edge-{i}"), 0))
            .count();
        assert_eq!(admitted, 100);
    }

    #[test]
    #[should_panic]
    fn zero_rate_is_rejected() {
        RateLimiter::new(0.0, 1);
    }
}
