//! Regenerates Table IV: SBR amplification factors at 1, 10 and 25 MB
//! for every vendor, printed beside the paper's published values.
//!
//! Accepts the shared harness flags (`--json <path>`, `--threads <n>`);
//! output is byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table4
//! ```

fn main() {
    let cli = rangeamp_bench::BenchCli::parse();
    let points = rangeamp_bench::sbr_points_exec(&[1, 10, 25], &cli.executor());
    println!("{}", rangeamp_bench::render_table4(&points));
    cli.write_json(&points);
}
