//! Regenerates Table IV: SBR amplification factors at 1, 10 and 25 MB
//! for every vendor, printed beside the paper's published values.
//!
//! Pass `--json <path>` to also write the rows as JSON.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table4
//! ```

fn main() {
    let points = rangeamp_bench::sbr_points(&[1, 10, 25]);
    println!("{}", rangeamp_bench::render_table4(&points));
    rangeamp_bench::maybe_write_json(&points);
}
