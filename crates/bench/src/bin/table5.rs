//! Regenerates Table V: the maximum OBR amplification factor for each of
//! the 11 cascaded CDN combinations, with the solver-derived max n.
//!
//! Pass `--json <path>` to also write the rows as JSON.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table5
//! ```

fn main() {
    let measurements = rangeamp_bench::table5_measurements();
    println!("{}", rangeamp_bench::render_table5(&measurements));
    rangeamp_bench::maybe_write_json(&measurements);
}
