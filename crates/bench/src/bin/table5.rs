//! Regenerates Table V: the maximum OBR amplification factor for each of
//! the 11 cascaded CDN combinations, with the solver-derived max n.
//!
//! Accepts the shared harness flags (`--json <path>`, `--threads <n>`);
//! output is byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table5
//! ```

fn main() {
    let cli = rangeamp_bench::BenchCli::parse();
    let measurements = rangeamp_bench::table5_measurements_exec(&cli.executor());
    println!("{}", rangeamp_bench::render_table5(&measurements));
    cli.write_json(&measurements);
}
