//! Amplification flight recorder: runs a seeded set of traced
//! experiments — one cold-cache SBR request, a small SBR chaos
//! campaign, and an OBR cascade — and exports the collected hop spans
//! as Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`) plus an optional metrics JSONL snapshot.
//!
//! The virtual clock, fault schedules and span/trace id streams are all
//! derived from `--seed`, so the same seed produces byte-identical
//! trace and metrics files on every run — the CI determinism gate diffs
//! two runs.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin trace -- \
//!     --seed 7 --out trace.json --metrics metrics.jsonl
//! ```
//!
//! Without `--out` the Chrome trace JSON goes to stdout (the summary
//! then moves to stderr so the JSON stays parseable).

use rangeamp::attack::exploited_range_case;
use rangeamp::chaos::{run_obr_chaos_with, run_sbr_chaos_with, ChaosConfig};
use rangeamp::net::SpanKind;
use rangeamp::{Telemetry, Testbed, TARGET_HOST, TARGET_PATH};
use rangeamp_bench::{arg_value, write_output, MB};
use rangeamp_cdn::Vendor;
use rangeamp_http::Request;

/// One traced cold-cache SBR request; returns the summary lines and
/// asserts that the span byte counts reproduce the reported
/// amplification factor.
fn traced_sbr_request(telemetry: &Telemetry, out: &mut Vec<String>) {
    let vendor = Vendor::Akamai;
    let size = MB;
    let bed = Testbed::builder()
        .vendor(vendor)
        .resource(TARGET_PATH, size)
        .telemetry(telemetry.clone())
        .build();
    let case = exploited_range_case(vendor, size);
    let req = Request::get(TARGET_PATH)
        .header("Host", TARGET_HOST)
        .header("Range", case.ranges[0].to_string())
        .build();
    let resp = bed.request(&req);

    let client_bytes = bed.client_segment().stats().response_bytes;
    let origin_bytes = bed.origin_segment().stats().response_bytes;
    let reported = origin_bytes as f64 / client_bytes.max(1) as f64;

    // Re-derive the same factor purely from the recorded spans: the
    // root client-request span's bytes_out is what the attacker
    // received; the upstream hop spans' bytes_in sum to what the origin
    // shipped over the victim segment.
    let spans = telemetry.tracer().finished_spans();
    let root = spans
        .iter()
        .find(|s| s.kind == SpanKind::Request)
        .expect("traced request recorded a root span");
    let hop_bytes_in: u64 = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Hop | SpanKind::RetryAttempt))
        .map(|s| s.bytes_in)
        .sum();
    let span_factor = hop_bytes_in as f64 / root.bytes_out.max(1) as f64;
    assert_eq!(
        root.bytes_out, client_bytes,
        "root span bytes_out matches the client segment meter"
    );
    assert_eq!(
        hop_bytes_in, origin_bytes,
        "hop span bytes_in sums to the origin segment meter"
    );
    let request_spans = spans.iter().filter(|s| s.kind == SpanKind::Request).count();
    let edge_spans = spans.iter().filter(|s| s.kind == SpanKind::Edge).count();
    let origin_spans = spans.iter().filter(|s| s.kind == SpanKind::Origin).count();
    out.push(format!(
        "sbr vendor={} case=\"{}\" size={} status={} client_bytes={} origin_bytes={} \
         amplification={:.1}x span_amplification={:.1}x spans(client/edge/origin)={}/{}/{}",
        vendor.name(),
        case.description,
        size,
        resp.status().as_u16(),
        client_bytes,
        origin_bytes,
        reported,
        span_factor,
        request_spans,
        edge_spans,
        origin_spans,
    ));
}

fn main() {
    let seed: u64 = arg_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(7);
    let out_path = arg_value("--out");
    let metrics_path = arg_value("--metrics");
    let telemetry = Telemetry::seeded(seed);
    let mut summary = vec![format!("trace seed={seed}")];

    traced_sbr_request(&telemetry, &mut summary);

    // A small SBR chaos campaign: flaky origin, retries, breaker and
    // serve-stale all traced, per-vendor gauges published.
    let config = ChaosConfig {
        seed,
        rounds: 8,
        ..ChaosConfig::default()
    };
    for vendor in [Vendor::Akamai, Vendor::CloudFront] {
        let report = run_sbr_chaos_with(vendor, &config, Some(&telemetry));
        summary.push(format!(
            "chaos vendor={} attempts={} retries/req={:.3} cache_hit={:.1}% availability={:.1}%",
            vendor.name(),
            report.resilience.attempts,
            report.retries_per_request(),
            report.cache_hit_ratio() * 100.0,
            report.availability() * 100.0,
        ));
    }

    // One OBR cascade under the same fault rates: FCDN -> BCDN -> origin
    // hops all appear in the trace.
    let cascade = run_obr_chaos_with(
        Vendor::CloudFront,
        Vendor::Fastly,
        &config,
        Some(&telemetry),
    );
    summary.push(format!(
        "obr fcdn={} bcdn={} middle_bytes={} origin_bytes={} middle_retry_amp={:.3}x",
        cascade.fcdn.name(),
        cascade.bcdn.name(),
        cascade.middle.response_bytes,
        cascade.origin.response_bytes,
        cascade.middle_retry_amplification(),
    ));

    let tracer = telemetry.tracer();
    summary.push(format!(
        "recorder traces={} spans={} dropped={} metrics={}",
        tracer.trace_count(),
        tracer.span_count(),
        tracer.dropped(),
        telemetry.metrics().len(),
    ));

    let trace_json = tracer.chrome_trace_json();
    match &out_path {
        Some(path) => write_output(path, &trace_json),
        None => println!("{trace_json}"),
    }
    if let Some(path) = &metrics_path {
        write_output(path, &telemetry.metrics().snapshot().to_jsonl());
    }

    // With --out the summary goes to stdout; without it, stdout is the
    // JSON itself, so the summary moves to stderr.
    for line in &summary {
        if out_path.is_some() {
            println!("{line}");
        } else {
            eprintln!("{line}");
        }
    }
}
