//! Benchmark harness for the campaign executor: times the
//! representative workloads (table sweep, OBR sweep, chaos campaign,
//! telemetry export) at each requested thread count and writes
//! `BENCH_campaigns.json` in the stable `rangeamp-bench-perf/1` schema
//! (see `rangeamp_bench::timing`).
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin perf -- \
//!     --threads 1,4 --out BENCH_campaigns.json --baseline BENCH_baseline.json
//! ```
//!
//! Flags:
//!
//! * `--threads a,b,c` — thread counts to sweep (default `1,<cores>`);
//! * `--out <path>` — where to write the JSON report (default
//!   `BENCH_campaigns.json`);
//! * `--baseline <path>` — committed baseline to gate against; when the
//!   file is missing the gate is skipped with a warning, when any
//!   workload's best wall time regresses more than the tolerance the
//!   process exits non-zero (that is the CI perf gate);
//! * `--tolerance <pct>` — regression tolerance in percent (default 15);
//! * `--warmup <n>` / `--iters <n>` — iteration counts (default 1 / 3).

use rangeamp::chaos::ChaosConfig;
use rangeamp::executor::Executor;
use rangeamp::Telemetry;
use rangeamp_bench::timing::{check_against_baseline, time_workload, PerfReport};
use rangeamp_bench::{
    arg_value, obr_sweep_points, retry_amp_reports_exec, sbr_points_exec, scanner,
    table5_measurements_exec, write_output,
};

/// Table I–V sweep: scanner tables plus the SBR (1 MB) and OBR
/// amplification measurements.
fn table_sweep(executor: &Executor) -> (u64, u64) {
    let scan = scanner();
    let t1 = scan.scan_table1_exec(executor);
    let t2 = scan.scan_table2_exec(executor);
    let t3 = scan.scan_table3_exec(executor);
    let t4 = sbr_points_exec(&[1], executor);
    let t5 = table5_measurements_exec(executor);
    let units = (t1.len() + t2.len() + t3.len() + t4.len() + t5.len()) as u64;
    let bytes: u64 = t4
        .iter()
        .map(|p| p.client_bytes + p.origin_bytes)
        .sum::<u64>()
        + t5.iter()
            .map(|m| m.server_to_bcdn_bytes + m.bcdn_to_fcdn_bytes + m.attacker_bytes)
            .sum::<u64>();
    (units, bytes)
}

/// §IV-C OBR proportionality sweep (factor vs n).
fn obr_sweep(executor: &Executor) -> (u64, u64) {
    let points = obr_sweep_points(executor);
    let bytes = points
        .iter()
        .map(|p| p.bcdn_to_fcdn_bytes + p.attacker_bytes)
        .sum();
    (points.len() as u64, bytes)
}

/// The chaos workloads run the default campaign configuration — the
/// same 13-vendor, 32-round flaky-origin sweep `retry_amp` ships.
fn perf_chaos_config() -> ChaosConfig {
    ChaosConfig::default()
}

/// SBR chaos campaign across all 13 vendors, untraced.
fn chaos_campaign(executor: &Executor) -> (u64, u64) {
    let reports = retry_amp_reports_exec(&perf_chaos_config(), None, executor);
    let bytes = reports
        .iter()
        .map(|r| r.origin.request_bytes + r.origin.response_bytes)
        .sum();
    (reports.len() as u64, bytes)
}

/// Fully traced chaos campaign plus Chrome-trace and metrics export —
/// the telemetry hot path. "Wire bytes" here are the exported bytes.
fn telemetry_export(executor: &Executor) -> (u64, u64) {
    let telemetry = Telemetry::seeded(7);
    let reports = retry_amp_reports_exec(&perf_chaos_config(), Some(&telemetry), executor);
    let trace = telemetry.tracer().chrome_trace_json();
    let metrics = telemetry.metrics().snapshot().to_jsonl();
    let units = reports.len() as u64 + telemetry.tracer().span_count() as u64;
    (units, (trace.len() + metrics.len()) as u64)
}

/// A workload runs on an executor and reports `(units, wire bytes)`.
type Workload = fn(&Executor) -> (u64, u64);

fn parse_threads(raw: Option<String>) -> Vec<usize> {
    let default = Executor::available_parallelism().threads();
    let spec = raw.unwrap_or_else(|| format!("1,{default}"));
    let mut threads: Vec<usize> = spec
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            let n: usize = part.trim().parse().expect("--threads takes integers");
            if n == 0 {
                default
            } else {
                n
            }
        })
        .collect();
    threads.dedup();
    if threads.is_empty() {
        threads.push(1);
    }
    threads
}

fn main() {
    let threads = parse_threads(arg_value("--threads"));
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_campaigns.json".to_string());
    let baseline_path = arg_value("--baseline");
    let tolerance = arg_value("--tolerance")
        .map(|raw| raw.parse::<f64>().expect("--tolerance takes a percentage") / 100.0)
        .unwrap_or(rangeamp_bench::timing::DEFAULT_TOLERANCE);
    let warmup: u32 = arg_value("--warmup")
        .map(|raw| raw.parse().expect("--warmup takes an integer"))
        .unwrap_or(1);
    let iters: u32 = arg_value("--iters")
        .map(|raw| raw.parse().expect("--iters takes an integer"))
        .unwrap_or(3);

    let workloads: &[(&str, Workload)] = &[
        ("table_sweep", table_sweep),
        ("obr_sweep", obr_sweep),
        ("chaos_campaign", chaos_campaign),
        ("telemetry_export", telemetry_export),
    ];

    let mut report = PerfReport::new(threads.clone());
    for &count in &threads {
        let executor = Executor::new(count);
        for (name, run) in workloads {
            let result = time_workload(name, &executor, warmup, iters, run);
            println!(
                "{:>17} @{}t: {:>12} ns  {:>10.1} units/s  {:>14.0} wire-B/s",
                result.name,
                result.threads,
                result.wall_ns,
                result.units_per_sec,
                result.wire_bytes_per_sec,
            );
            report.workloads.push(result);
        }
    }
    for &count in &threads {
        if count > 1 {
            if let Some(speedup) = report.speedup("chaos_campaign", count) {
                println!("chaos_campaign speedup @{count}t: {speedup:.2}x");
            }
        }
    }

    write_output(
        &out_path,
        &serde_json::to_string_pretty(&report).expect("serializable"),
    );

    if let Some(path) = baseline_path {
        match std::fs::read_to_string(&path) {
            Err(err) => {
                eprintln!("warning: baseline {path} not readable ({err}); perf gate skipped");
            }
            Ok(text) => match check_against_baseline(&report, &text, tolerance) {
                None => {
                    eprintln!("warning: baseline {path} is not a perf report; perf gate skipped");
                }
                Some(check) => {
                    for line in &check.lines {
                        println!("baseline: {line}");
                    }
                    if !check.passed() {
                        for regression in &check.regressions {
                            eprintln!("perf regression: {regression}");
                        }
                        std::process::exit(1);
                    }
                    println!("perf gate: ok (tolerance +{:.0}%)", tolerance * 100.0);
                }
            },
        }
    }
}
