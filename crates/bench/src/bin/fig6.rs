//! Regenerates Fig 6: SBR amplification factor (a), client-side response
//! traffic (b), and origin-side response traffic (c) as the target
//! resource sweeps 1..=25 MB for all 13 vendors. Output is one CSV block
//! per sub-figure, ready for plotting.
//!
//! Accepts the shared harness flags (`--json <path>`, `--threads <n>`);
//! output is byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin fig6
//! ```

use rangeamp_bench::{sbr_points_exec, BenchCli, SbrPoint, MB};
use rangeamp_cdn::Vendor;

fn print_csv(title: &str, points: &[SbrPoint], value: impl Fn(&SbrPoint) -> String) {
    println!("# {title}");
    print!("size_mb");
    for vendor in Vendor::ALL {
        print!(",{}", vendor.name().replace(' ', "_"));
    }
    println!();
    for size_mb in 1..=25u64 {
        print!("{size_mb}");
        for vendor in Vendor::ALL {
            let point = points
                .iter()
                .find(|p| p.vendor == vendor.name() && p.file_size == size_mb * MB)
                .expect("sweep covers every vendor and size");
            print!(",{}", value(point));
        }
        println!();
    }
    println!();
}

fn main() {
    let cli = BenchCli::parse();
    let sizes: Vec<u64> = (1..=25).collect();
    let points = sbr_points_exec(&sizes, &cli.executor());

    print_csv("Fig 6a — amplification factor", &points, |p| {
        format!("{:.0}", p.amplification_factor)
    });
    print_csv(
        "Fig 6b — response traffic CDN→client (bytes)",
        &points,
        |p| p.client_bytes.to_string(),
    );
    print_csv(
        "Fig 6c — response traffic origin→CDN (bytes)",
        &points,
        |p| p.origin_bytes.to_string(),
    );

    // The qualitative checks the paper's text makes about Fig 6.
    let factor_at = |vendor: &str, size_mb: u64| -> f64 {
        points
            .iter()
            .find(|p| p.vendor == vendor && p.file_size == size_mb * MB)
            .map(|p| p.amplification_factor)
            .unwrap_or(0.0)
    };
    println!("# shape checks");
    println!(
        "azure_plateau_16mb: factor(16MB)={:.0} factor(25MB)={:.0}",
        factor_at("Azure", 16),
        factor_at("Azure", 25)
    );
    println!(
        "cloudfront_plateau_10mb: factor(10MB)={:.0} factor(25MB)={:.0}",
        factor_at("CloudFront", 10),
        factor_at("CloudFront", 25)
    );
    println!(
        "akamai_gcore_lead: akamai(25MB)={:.0} gcore(25MB)={:.0} max_others={:.0}",
        factor_at("Akamai", 25),
        factor_at("G-Core Labs", 25),
        Vendor::ALL
            .iter()
            .filter(|v| !matches!(v, Vendor::Akamai | Vendor::GCoreLabs))
            .map(|v| factor_at(v.name(), 25))
            .fold(0.0f64, f64::max)
    );
    cli.write_json(&points);
}
