//! Online defense evaluation (DESIGN.md §12): replays mixed benign +
//! Table IV/V attack workloads against every scenario twice — undefended
//! and with the `rangeamp-defense` layer attached — and prints detection
//! quality, enforcement outcome, and victim-link traffic side by side.
//!
//! Accepts the shared harness flags; output is byte-identical at any
//! `--threads N` (the CI defense-determinism gate diffs 1 vs 8).
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin defense -- \
//!     --json experiments/defense.json --threads 8
//! ```

use rangeamp::defense_eval::DefenseEvalConfig;
use rangeamp_bench::BenchCli;

fn main() {
    let cli = BenchCli::parse();
    let config = DefenseEvalConfig::default();
    let seed = cli.seed.unwrap_or(2020);
    let reports = rangeamp_bench::defense_eval_reports_exec(&config, &cli.executor(), seed);
    println!("{}", rangeamp_bench::render_defense_eval(&reports));

    let detected = reports.iter().filter(|r| r.detected).count();
    let blocked_benign: u64 = reports.iter().map(|r| r.benign_requests_blocked).sum();
    println!(
        "{detected}/{} scenarios detected within the campaign window; \
         {blocked_benign} benign requests blocked across all scenarios.",
        reports.len(),
    );
    cli.write_json(&reports);
}
