//! HTTP/2 applicability check (paper §VI-B): "we find that the RangeAmp
//! threats in HTTP/1.1 are also applicable to HTTP/2". Every segment is
//! metered under both framings; this bin prints the SBR amplification
//! factor side by side.
//!
//! Accepts the shared harness flags (`--json`, `--threads`); output is
//! byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin h2_check
//! ```

use rangeamp::report::TextTable;
use rangeamp_bench::BenchCli;

fn main() {
    let cli = BenchCli::parse();
    let rows = rangeamp_bench::h2_rows_exec(&cli.executor());

    let mut table = TextTable::new(
        "SBR amplification under HTTP/1.1 vs HTTP/2 framing (10 MB resource)",
        &["CDN", "factor (h1)", "factor (h2)", "h2/h1"],
    );
    for row in &rows {
        table.row(vec![
            row.vendor.clone(),
            format!("{:.0}", row.factor_h1),
            format!("{:.0}", row.factor_h2),
            format!("{:.2}", row.factor_h2 / row.factor_h1),
        ]);
    }
    println!("{table}");
    println!(
        "HPACK shrinks the attacker-side response headers while megabyte bodies \
         dominate the origin side, so HTTP/2 amplification factors are equal or \
         slightly *larger* — §VI-B's applicability claim."
    );
    cli.write_json(&rows);
}
