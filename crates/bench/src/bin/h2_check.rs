//! HTTP/2 applicability check (paper §VI-B): "we find that the RangeAmp
//! threats in HTTP/1.1 are also applicable to HTTP/2". Every segment is
//! metered under both framings; this bin prints the SBR amplification
//! factor side by side.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin h2_check
//! ```

use rangeamp::attack::SbrAttack;
use rangeamp::report::TextTable;
use rangeamp_cdn::Vendor;

fn main() {
    const MB: u64 = 1024 * 1024;
    let mut table = TextTable::new(
        "SBR amplification under HTTP/1.1 vs HTTP/2 framing (10 MB resource)",
        &["CDN", "factor (h1)", "factor (h2)", "h2/h1"],
    );
    for vendor in Vendor::ALL {
        let report = SbrAttack::new(vendor, 10 * MB).run();
        let h1 = report.amplification_factor();
        let h2 = report.amplification_factor_h2();
        table.row(vec![
            vendor.name().to_string(),
            format!("{h1:.0}"),
            format!("{h2:.0}"),
            format!("{:.2}", h2 / h1),
        ]);
    }
    println!("{table}");
    println!(
        "HPACK shrinks the attacker-side response headers while megabyte bodies \
         dominate the origin side, so HTTP/2 amplification factors are equal or \
         slightly *larger* — §VI-B's applicability claim."
    );
}
