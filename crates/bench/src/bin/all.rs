//! Runs every experiment (Tables I–V, Fig 6, Fig 7) and writes
//! machine-readable JSON into `experiments/` beside the printed tables.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin all
//! ```

use std::fs;
use std::path::Path;

fn write_json<T: serde::Serialize>(dir: &Path, name: &str, value: &T) {
    let path = dir.join(name);
    let json = serde_json::to_string_pretty(value).expect("serializable");
    fs::write(&path, json).expect("experiments dir is writable");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let dir = Path::new("experiments");
    fs::create_dir_all(dir).expect("can create experiments dir");

    eprintln!("== scanner (Tables I–III) ==");
    let scanner = rangeamp_bench::scanner();
    let t1 = scanner.scan_table1();
    let t2 = scanner.scan_table2();
    let t3 = scanner.scan_table3();
    println!("{}", rangeamp_bench::render_table1(&t1));
    println!("{}", rangeamp_bench::render_table2(&t2));
    println!("{}", rangeamp_bench::render_table3(&t3));
    write_json(dir, "table1.json", &t1);
    write_json(dir, "table2.json", &t2);
    write_json(dir, "table3.json", &t3);

    eprintln!("== SBR (Table IV + Fig 6) ==");
    let sizes: Vec<u64> = (1..=25).collect();
    let points = rangeamp_bench::sbr_points(&sizes);
    println!("{}", rangeamp_bench::render_table4(&points));
    write_json(dir, "fig6_sbr_sweep.json", &points);

    eprintln!("== OBR (Table V) ==");
    let obr = rangeamp_bench::table5_measurements();
    println!("{}", rangeamp_bench::render_table5(&obr));
    write_json(dir, "table5.json", &obr);

    eprintln!("== Flood (Fig 7) ==");
    let fig7 = rangeamp_bench::fig7_reports();
    println!("{}", rangeamp_bench::render_fig7_summary(&fig7));
    write_json(dir, "fig7.json", &fig7);

    eprintln!("== Dropped-GET comparison (§VIII) ==");
    let executor = rangeamp::executor::Executor::sequential();
    let dropped = rangeamp_bench::dropped_get_rows_exec(10 * 1024 * 1024, &executor);
    write_json(dir, "dropped_get.json", &dropped);

    eprintln!("== HTTP/2 applicability (§VI-B) ==");
    let h2 = rangeamp_bench::h2_rows_exec(&executor);
    write_json(dir, "h2_check.json", &h2);

    eprintln!("== Online defense evaluation (DESIGN.md §12) ==");
    let defense = rangeamp_bench::defense_eval_reports_exec(
        &rangeamp::defense_eval::DefenseEvalConfig::default(),
        &executor,
        2020,
    );
    println!("{}", rangeamp_bench::render_defense_eval(&defense));
    write_json(dir, "defense.json", &defense);

    eprintln!("all experiments complete; JSON in {}", dir.display());
}
