//! Regenerates Fig 7: per-second bandwidth consumption of the origin
//! (outgoing) and the client (incoming) under m = 1..=15 concurrent SBR
//! requests per second for 30 seconds (10 MB resource, 1000 Mbps origin
//! uplink). Prints a summary table plus one CSV block per sub-figure.
//!
//! Accepts the shared harness flags (`--json <path>`, `--threads <n>`);
//! output is byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin fig7
//! ```

fn main() {
    let cli = rangeamp_bench::BenchCli::parse();
    let reports = rangeamp_bench::fig7_reports_exec(&cli.executor());
    println!("{}", rangeamp_bench::render_fig7_summary(&reports));

    println!("# Fig 7b — origin outgoing bandwidth (Mbps) per second");
    print!("second");
    for report in &reports {
        print!(",m={}", report.requests_per_sec);
    }
    println!();
    let seconds = reports[0].origin_outgoing_mbps.len();
    for t in 0..seconds {
        print!("{t}");
        for report in &reports {
            print!(
                ",{:.1}",
                report.origin_outgoing_mbps.get(t).copied().unwrap_or(0.0)
            );
        }
        println!();
    }
    println!();
    println!("# Fig 7a — client incoming bandwidth (Kbps) per second");
    print!("second");
    for report in &reports {
        print!(",m={}", report.requests_per_sec);
    }
    println!();
    for t in 0..seconds {
        print!("{t}");
        for report in &reports {
            print!(
                ",{:.1}",
                report.client_incoming_mbps.get(t).copied().unwrap_or(0.0) * 1000.0
            );
        }
        println!();
    }
    println!();
    println!(
        "# paper shape: proportional for m<=10, near line rate from m={}, exhausted from m={}, client < {} Kbps",
        rangeamp_bench::paper::FIG7_SATURATION_M,
        rangeamp_bench::paper::FIG7_EXHAUSTION_M,
        rangeamp_bench::paper::FIG7_CLIENT_KBPS_BOUND,
    );
    cli.write_json(&reports);
}
