//! OBR proportionality sweep (§IV-C): "the greater the number of
//! overlapping ranges, the larger the amplification factor". Sweeps n for
//! one cascade and prints the factor series plus the attacker's fixed
//! cost — the figure the paper describes in prose.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin obr_sweep
//! ```

use rangeamp::attack::ObrAttack;
use rangeamp::report::TextTable;
use rangeamp_cdn::Vendor;

fn main() {
    let fcdn = Vendor::Cloudflare;
    let bcdn = Vendor::Akamai;
    let max_n = ObrAttack::new(fcdn, bcdn).max_n();

    let mut table = TextTable::new(
        "OBR amplification vs number of overlapping ranges (Cloudflare → Akamai, 1 KB resource)",
        &[
            "n",
            "request size (B)",
            "BCDN→FCDN (B)",
            "factor",
            "attacker accepted (B)",
        ],
    );
    let mut n = 16usize;
    let mut points = Vec::new();
    while n < max_n {
        points.push(n);
        n *= 4;
    }
    points.push(max_n);
    for n in points {
        let report = ObrAttack::new(fcdn, bcdn).overlapping_ranges(n).run();
        let request_size = rangeamp_cdn::ObrRangeCase::AllZeroOpen
            .header(n)
            .to_string()
            .len()
            + 64; // request line + Host
        table.row(vec![
            n.to_string(),
            request_size.to_string(),
            report.bcdn_to_fcdn_bytes.to_string(),
            format!("{:.1}", report.amplification_factor()),
            report.attacker_bytes.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "The factor grows linearly in n up to the header-limit ceiling (max n = {max_n}); \
         the attacker's accepted bytes stay constant — §IV-C's proportionality claim."
    );
}
