//! OBR proportionality sweep (§IV-C): "the greater the number of
//! overlapping ranges, the larger the amplification factor". Sweeps n for
//! one cascade and prints the factor series plus the attacker's fixed
//! cost — the figure the paper describes in prose.
//!
//! Accepts the shared harness flags (`--json <path>`, `--threads <n>`);
//! output is byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin obr_sweep
//! ```

use rangeamp::attack::ObrAttack;
use rangeamp_bench::{obr_sweep_points, render_obr_sweep, BenchCli};
use rangeamp_cdn::Vendor;

fn main() {
    let cli = BenchCli::parse();
    let points = obr_sweep_points(&cli.executor());
    println!("{}", render_obr_sweep(&points));
    let max_n = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai).max_n();
    println!(
        "The factor grows linearly in n up to the header-limit ceiling (max n = {max_n}); \
         the attacker's accepted bytes stay constant — §IV-C's proportionality claim."
    );
    cli.write_json(&points);
}
