//! Severity assessment (paper §V-E): projects the monetary cost of a
//! sustained SBR attack for each vendor — victim origin-egress bill, CDN
//! traffic bill where applicable, and the attacker's own traffic.
//!
//! Accepts the shared harness flags (`--json`, `--threads`); output is
//! byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin severity
//! ```

use rangeamp::report::TextTable;
use rangeamp::severity::CostModel;
use rangeamp_bench::BenchCli;

fn main() {
    let cli = BenchCli::parse();
    let model = CostModel::default();
    let rate = 10; // requests per second
    let hours = 1.0;
    let rows = rangeamp_bench::severity_rows_exec(rate, hours, &model, &cli.executor());

    let mut table = TextTable::new(
        "Projected cost of 1 hour of SBR at 10 req/s against a 25 MB resource (illustrative list prices)",
        &[
            "CDN",
            "billing",
            "origin egress (GB)",
            "origin egress ($)",
            "CDN traffic ($)",
            "victim total ($)",
            "attacker (GB)",
            "$ per attacker GB",
        ],
    );
    for row in &rows {
        table.row(vec![
            row.cost.vendor.clone(),
            row.billing.clone(),
            format!("{:.1}", row.cost.origin_gb),
            format!("{:.2}", row.cost.origin_egress_usd),
            format!("{:.2}", row.cost.cdn_traffic_usd),
            format!("{:.2}", row.cost.victim_usd()),
            format!("{:.4}", row.cost.attacker_gb),
            format!("{:.0}", row.cost.cost_asymmetry()),
        ]);
    }
    println!("{table}");
    println!(
        "§V-E: \"A great monetary loss to the victims\" — one laptop-scale request \
         stream translates into hundreds of GB of billed victim traffic per hour."
    );
    cli.write_json(&rows);
}
