//! Severity assessment (paper §V-E): projects the monetary cost of a
//! sustained SBR attack for each vendor — victim origin-egress bill, CDN
//! traffic bill where applicable, and the attacker's own traffic.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin severity
//! ```

use rangeamp::attack::SbrAttack;
use rangeamp::report::TextTable;
use rangeamp::severity::{project_cost, BillingModel, CostModel};
use rangeamp_cdn::Vendor;

fn main() {
    const MB: u64 = 1024 * 1024;
    let model = CostModel::default();
    let rate = 10; // requests per second
    let hours = 1.0;

    let mut table = TextTable::new(
        "Projected cost of 1 hour of SBR at 10 req/s against a 25 MB resource (illustrative list prices)",
        &[
            "CDN",
            "billing",
            "origin egress (GB)",
            "origin egress ($)",
            "CDN traffic ($)",
            "victim total ($)",
            "attacker (GB)",
            "$ per attacker GB",
        ],
    );
    for vendor in Vendor::ALL {
        let measurement = SbrAttack::new(vendor, 25 * MB).run();
        let cost = project_cost(vendor, &measurement, rate, hours, &model);
        let billing = match BillingModel::for_vendor(vendor) {
            BillingModel::PerGb(price) => format!("${price:.3}/GB"),
            BillingModel::FlatRate => "flat-rate".to_string(),
        };
        table.row(vec![
            vendor.name().to_string(),
            billing,
            format!("{:.1}", cost.origin_gb),
            format!("{:.2}", cost.origin_egress_usd),
            format!("{:.2}", cost.cdn_traffic_usd),
            format!("{:.2}", cost.victim_usd()),
            format!("{:.4}", cost.attacker_gb),
            format!("{:.0}", cost.cost_asymmetry()),
        ]);
    }
    println!("{table}");
    println!(
        "§V-E: \"A great monetary loss to the victims\" — one laptop-scale request \
         stream translates into hundreds of GB of billed victim traffic per hour."
    );
}
