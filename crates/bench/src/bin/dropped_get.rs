//! The §VIII comparison with Triukose et al.'s dropped-connection attack:
//! which vendors defeat it by breaking back-end connections, and how the
//! SBR attack bypasses that defense entirely.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin dropped_get
//! ```

use rangeamp::attack::{compare_with_sbr, DroppedGetAttack};
use rangeamp::report::TextTable;
use rangeamp_cdn::Vendor;

fn main() {
    const MB: u64 = 1024 * 1024;
    let size = 10 * MB;

    let mut table = TextTable::new(
        "Dropped-GET (Triukose et al.) vs SBR — origin response bytes per attack round (10 MB resource)",
        &[
            "CDN",
            "keeps backend alive",
            "dropped-GET origin bytes",
            "defense works",
            "SBR origin bytes",
        ],
    );
    let comparison = compare_with_sbr(size);
    for (vendor, row) in Vendor::ALL.iter().zip(&comparison) {
        let dropped = DroppedGetAttack::new(*vendor, size).run();
        table.row(vec![
            row.vendor.clone(),
            dropped.keeps_backend_alive.to_string(),
            row.dropped_get_origin_bytes.to_string(),
            dropped.defense_effective(size).to_string(),
            row.sbr_origin_bytes.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "§VIII: most CDNs break the back-end connection when the front-end is cut \
         (defense works; CDN77/CDNsun do not), but the SBR column shows the defense \
         is invalid under RangeAmp — the attacker never aborts."
    );
}
