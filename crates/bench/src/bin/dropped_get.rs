//! The §VIII comparison with Triukose et al.'s dropped-connection attack:
//! which vendors defeat it by breaking back-end connections, and how the
//! SBR attack bypasses that defense entirely.
//!
//! Accepts the shared harness flags (`--json`, `--threads`); output is
//! byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin dropped_get
//! ```

use rangeamp::report::TextTable;
use rangeamp_bench::BenchCli;

fn main() {
    let cli = BenchCli::parse();
    const MB: u64 = 1024 * 1024;
    let rows = rangeamp_bench::dropped_get_rows_exec(10 * MB, &cli.executor());

    let mut table = TextTable::new(
        "Dropped-GET (Triukose et al.) vs SBR — origin response bytes per attack round (10 MB resource)",
        &[
            "CDN",
            "keeps backend alive",
            "dropped-GET origin bytes",
            "defense works",
            "SBR origin bytes",
        ],
    );
    for row in &rows {
        table.row(vec![
            row.vendor.clone(),
            row.keeps_backend_alive.to_string(),
            row.dropped_get_origin_bytes.to_string(),
            row.defense_works.to_string(),
            row.sbr_origin_bytes.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "§VIII: most CDNs break the back-end connection when the front-end is cut \
         (defense works; CDN77/CDNsun do not), but the SBR column shows the defense \
         is invalid under RangeAmp — the attacker never aborts."
    );
    cli.write_json(&rows);
}
