//! Regenerates Table III: multi-range replying behaviours vulnerable to
//! the OBR attack (BCDN eligibility), derived by the scanner.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table3
//! ```

fn main() {
    let rows = rangeamp_bench::scanner().scan_table3();
    println!("{}", rangeamp_bench::render_table3(&rows));
    println!(
        "{} BCDN-eligible vendors — the paper finds 3 (Akamai, Azure, StackPath).",
        rows.len()
    );
}
