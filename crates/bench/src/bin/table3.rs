//! Regenerates Table III: multi-range replying behaviours vulnerable to
//! the OBR attack (BCDN eligibility), derived by the scanner.
//!
//! Pass `--json <path>` to also write the rows as JSON.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table3
//! ```

fn main() {
    let rows = rangeamp_bench::scanner().scan_table3();
    println!("{}", rangeamp_bench::render_table3(&rows));
    println!(
        "{} BCDN-eligible vendors — the paper finds 3 (Akamai, Azure, StackPath).",
        rows.len()
    );
    rangeamp_bench::maybe_write_json(&rows);
}
