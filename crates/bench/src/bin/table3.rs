//! Regenerates Table III: multi-range replying behaviours vulnerable to
//! the OBR attack (BCDN eligibility), derived by the scanner.
//!
//! Accepts the shared harness flags (`--json <path>`, `--threads <n>`);
//! output is byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table3
//! ```

fn main() {
    let cli = rangeamp_bench::BenchCli::parse();
    let rows = rangeamp_bench::scanner().scan_table3_exec(&cli.executor());
    println!("{}", rangeamp_bench::render_table3(&rows));
    println!(
        "{} BCDN-eligible vendors — the paper finds 3 (Akamai, Azure, StackPath).",
        rows.len()
    );
    cli.write_json(&rows);
}
