//! Differential conformance fuzzer for the range-rewrite pipeline.
//!
//! Generates structure-aware `Range`/`If-Range` request cases (plus raw
//! wire mutations), replays each through all 13 vendor edges, and
//! cross-checks nine oracles against the independent forwarding model
//! (DESIGN.md §9). Findings are shrunk to minimal reproducers and written
//! into the regression corpus.
//!
//! Accepts the shared harness flags plus `--cases <n>` (default 1000) and
//! `--corpus-dir <path>` (default `tests/corpus`, used only when findings
//! need to be written). Output — including the run digest over every
//! per-case outcome — is byte-identical at any `--threads` value:
//!
//! ```text
//! cargo run --release -p rangeamp-bench --bin fuzz -- --seed 42 --cases 10000
//! ```
//!
//! Exits non-zero when any oracle fired.

use std::path::Path;

use rangeamp::conformance::{corpus, run_fuzz, CorpusEntry, FuzzConfig};
use rangeamp_bench::{arg_value, BenchCli};

fn main() {
    let cli = BenchCli::parse();
    let config = FuzzConfig {
        seed: cli.seed.unwrap_or(42),
        cases: arg_value("--cases")
            .map(|raw| raw.parse().expect("--cases takes an integer"))
            .unwrap_or(1000),
        ..FuzzConfig::default()
    };
    let corpus_dir = arg_value("--corpus-dir").unwrap_or_else(|| "tests/corpus".to_string());

    let report = run_fuzz(&config, &cli.executor());

    println!(
        "conformance fuzz: seed {}, {} cases ({} pipeline, {} wire)",
        report.seed, report.cases, report.pipeline_cases, report.wire_cases
    );
    println!(
        "probes: {}, violations: {}",
        report.probes, report.violations
    );
    println!("digest: {:016x}", report.digest);

    let mut written = Vec::new();
    for (seq, finding) in report.findings.iter().enumerate() {
        println!(
            "finding #{seq}: case {} oracle {} vendor {}",
            finding.index,
            finding.violation.oracle,
            finding
                .violation
                .vendor
                .map(|v| format!("{v:?}"))
                .unwrap_or_else(|| "-".to_string()),
        );
        println!("  {}", finding.violation.detail);
        println!(
            "  minimized: {}",
            finding.minimized.to_text().replace('\n', " | ")
        );
        match corpus::write_finding(
            Path::new(&corpus_dir),
            &finding.violation,
            seq,
            &finding.minimized,
        ) {
            Ok(path) => {
                eprintln!("wrote {}", path.display());
                written.push(path.display().to_string());
            }
            Err(e) => eprintln!("could not write finding to {corpus_dir}: {e}"),
        }
    }
    if report.violations == 0 {
        println!("all oracles passed");
    }

    cli.write_json(&report_json(&report, &written));
    if report.violations > 0 {
        std::process::exit(1);
    }
}

/// JSON shape deliberately excludes the thread count and corpus paths'
/// host specifics beyond what was written, so `--threads 1` and
/// `--threads 8` runs serialize identically.
fn report_json(
    report: &rangeamp::conformance::FuzzReport,
    written: &[String],
) -> serde_json::Value {
    serde_json::json!({
        "seed": report.seed,
        "cases": report.cases,
        "pipeline_cases": report.pipeline_cases,
        "wire_cases": report.wire_cases,
        "probes": report.probes,
        "violations": report.violations,
        "digest": format!("{:016x}", report.digest),
        "findings": report.findings.iter().map(|f| {
            serde_json::json!({
                "index": f.index,
                "oracle": f.violation.oracle,
                "vendor": f.violation.vendor.map(|v| format!("{v:?}")),
                "detail": f.violation.detail,
                "entry": entry_json(&f.entry),
                "minimized": entry_json(&f.minimized),
            })
        }).collect::<Vec<_>>(),
        "corpus_files": written,
    })
}

fn entry_json(entry: &CorpusEntry) -> serde_json::Value {
    serde_json::to_value(&entry.to_text())
}
