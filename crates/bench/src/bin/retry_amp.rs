//! Prints the per-vendor retry-amplification table: the SBR campaign
//! re-run under a deterministic flaky-origin fault schedule, reporting
//! how much extra back-to-origin traffic each vendor's retry policy
//! generates on top of the range amplification itself.
//!
//! The fault schedule, backoff clock and vendor order are all
//! deterministic — the same build prints byte-identical output on every
//! run.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin retry_amp
//! ```

fn main() {
    let reports = rangeamp_bench::retry_amp_reports();
    println!("{}", rangeamp_bench::render_retry_amp(&reports));
}
