//! Prints the per-vendor retry-amplification table: the SBR campaign
//! re-run under a deterministic flaky-origin fault schedule, reporting
//! how much extra back-to-origin traffic each vendor's retry policy
//! generates on top of the range amplification itself — plus the
//! resilience-layer counters (stale serves, breaker opens) and the
//! edge-cache hit/miss split behind each row.
//!
//! The fault schedule, backoff clock and vendor order are all
//! deterministic — the same build prints byte-identical output on every
//! run.
//!
//! Optional flags:
//!
//! * `--trace <path>` — record every round's hop spans and write them as
//!   Chrome trace-event JSON (Perfetto-loadable); also writes the
//!   campaign metrics snapshot as `<path>.metrics.jsonl`.
//! * `--json <path>` — write the per-vendor reports as JSON.
//! * `--seed <n>` — override the campaign seed (default is the built-in
//!   deterministic seed).
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin retry_amp -- \
//!     --trace retry_amp.trace.json --json retry_amp.json
//! ```

use rangeamp::chaos::{run_sbr_campaign_with, ChaosConfig};
use rangeamp::Telemetry;
use rangeamp_bench::{arg_value, maybe_write_json, retry_amp_json, write_output};

fn main() {
    let mut config = ChaosConfig::default();
    if let Some(seed) = arg_value("--seed") {
        config.seed = seed.parse().expect("--seed takes an integer");
    }
    let trace_path = arg_value("--trace");
    let telemetry = trace_path.as_ref().map(|_| Telemetry::seeded(config.seed));

    let reports = run_sbr_campaign_with(&config, telemetry.as_ref());
    println!("{}", rangeamp_bench::render_retry_amp(&reports));

    if let (Some(path), Some(tel)) = (&trace_path, &telemetry) {
        write_output(path, &tel.tracer().chrome_trace_json());
        write_output(
            &format!("{path}.metrics.jsonl"),
            &tel.metrics().snapshot().to_jsonl(),
        );
    }
    maybe_write_json(&retry_amp_json(&reports));
}
