//! Prints the per-vendor retry-amplification table: the SBR campaign
//! re-run under a deterministic flaky-origin fault schedule, reporting
//! how much extra back-to-origin traffic each vendor's retry policy
//! generates on top of the range amplification itself — plus the
//! resilience-layer counters (stale serves, breaker opens) and the
//! edge-cache hit/miss split behind each row.
//!
//! The fault schedule, backoff clock, vendor order and shard merge are
//! all deterministic — the same build prints byte-identical output on
//! every run at any `--threads N`.
//!
//! Flags (shared harness set plus `--trace`):
//!
//! * `--trace <path>` — record every round's hop spans and write them as
//!   Chrome trace-event JSON (Perfetto-loadable); also writes the
//!   campaign metrics snapshot as `<path>.metrics.jsonl`.
//! * `--json <path>` — write the per-vendor reports as JSON.
//! * `--seed <n>` — override the campaign seed (default is the built-in
//!   deterministic seed).
//! * `--threads <n>` — shard the campaign over `n` executor threads
//!   (0 = one per core).
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin retry_amp -- \
//!     --trace retry_amp.trace.json --json retry_amp.json --threads 8
//! ```

use rangeamp::chaos::ChaosConfig;
use rangeamp::Telemetry;
use rangeamp_bench::{arg_value, retry_amp_json, retry_amp_reports_exec, write_output, BenchCli};

fn main() {
    let cli = BenchCli::parse();
    let mut config = ChaosConfig::default();
    if let Some(seed) = cli.seed {
        config.seed = seed;
    }
    let trace_path = arg_value("--trace");
    let telemetry = trace_path.as_ref().map(|_| Telemetry::seeded(config.seed));

    let reports = retry_amp_reports_exec(&config, telemetry.as_ref(), &cli.executor());
    println!("{}", rangeamp_bench::render_retry_amp(&reports));

    if let (Some(path), Some(tel)) = (&trace_path, &telemetry) {
        write_output(path, &tel.tracer().chrome_trace_json());
        write_output(
            &format!("{path}.metrics.jsonl"),
            &tel.metrics().snapshot().to_jsonl(),
        );
    }
    cli.write_json(&retry_amp_json(&reports));
}
