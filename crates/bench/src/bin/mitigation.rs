//! Mitigation ablation (paper §VI-C): re-runs the SBR and OBR attacks
//! under each proposed defense and prints the residual amplification.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin mitigation
//! ```

use rangeamp::mitigation::{
    evaluate_obr_defenses, evaluate_sbr_defenses, origin_rate_limit_admission,
};
use rangeamp::report::TextTable;
use rangeamp_cdn::Vendor;

fn main() {
    let mb = 1024 * 1024;

    let mut sbr = TextTable::new(
        "SBR mitigations (10 MB resource) — amplification factor under each defense",
        &["CDN", "defense", "factor", "residual vs vulnerable"],
    );
    for vendor in [Vendor::Akamai, Vendor::Cloudflare, Vendor::CloudFront] {
        for outcome in evaluate_sbr_defenses(vendor, 10 * mb) {
            sbr.row(vec![
                vendor.name().to_string(),
                outcome.defense.name().to_string(),
                format!("{:.1}", outcome.amplification_factor),
                format!("{:.4}", outcome.residual_fraction),
            ]);
        }
    }
    println!("{sbr}");

    let mut obr = TextTable::new(
        "OBR mitigations (Cloudflare → Akamai, n = 256) — BCDN-side defenses",
        &["defense", "factor", "residual vs vulnerable"],
    );
    for outcome in evaluate_obr_defenses(Vendor::Cloudflare, Vendor::Akamai, 256) {
        obr.row(vec![
            outcome.defense.name().to_string(),
            format!("{:.1}", outcome.amplification_factor),
            format!("{:.4}", outcome.residual_fraction),
        ]);
    }
    println!("{obr}");

    let mut origin = TextTable::new(
        "Origin-side rate limiting (\"local DoS defense\") — admission fraction",
        &["egress nodes", "req/s per node", "admitted fraction"],
    );
    for (edges, rate) in [(1usize, 10u32), (10, 1), (100, 1), (1000, 1)] {
        let admitted = origin_rate_limit_admission(1.0, edges, rate, 10);
        origin.row(vec![
            edges.to_string(),
            rate.to_string(),
            format!("{admitted:.3}"),
        ]);
    }
    println!("{origin}");
    println!("The paper's conclusion holds: per-peer limits are defeated once the attack spreads across CDN egress nodes (§VI-C).");
}
