//! Mitigation ablation (paper §VI-C): re-runs the SBR and OBR attacks
//! under each proposed defense and prints the residual amplification.
//!
//! Accepts the shared harness flags (`--json`, `--threads`); output is
//! byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin mitigation
//! ```

use rangeamp::mitigation::origin_rate_limit_admission;
use rangeamp::report::TextTable;
use rangeamp_bench::BenchCli;
use rangeamp_cdn::Vendor;
use serde_json::json;

fn main() {
    let cli = BenchCli::parse();
    let mb = 1024 * 1024;
    let vendors = [Vendor::Akamai, Vendor::Cloudflare, Vendor::CloudFront];
    let sbr_rows = rangeamp_bench::sbr_mitigation_rows_exec(&vendors, 10 * mb, &cli.executor());

    let mut sbr = TextTable::new(
        "SBR mitigations (10 MB resource) — amplification factor under each defense",
        &["CDN", "defense", "factor", "residual vs vulnerable"],
    );
    for row in &sbr_rows {
        for outcome in &row.outcomes {
            sbr.row(vec![
                row.vendor.clone(),
                outcome.defense.name().to_string(),
                format!("{:.1}", outcome.amplification_factor),
                format!("{:.4}", outcome.residual_fraction),
            ]);
        }
    }
    println!("{sbr}");

    let obr_outcomes =
        rangeamp_bench::obr_mitigation_outcomes(Vendor::Cloudflare, Vendor::Akamai, 256);
    let mut obr = TextTable::new(
        "OBR mitigations (Cloudflare → Akamai, n = 256) — BCDN-side defenses",
        &["defense", "factor", "residual vs vulnerable"],
    );
    for outcome in &obr_outcomes {
        obr.row(vec![
            outcome.defense.name().to_string(),
            format!("{:.1}", outcome.amplification_factor),
            format!("{:.4}", outcome.residual_fraction),
        ]);
    }
    println!("{obr}");

    let mut admissions = Vec::new();
    let mut origin = TextTable::new(
        "Origin-side rate limiting (\"local DoS defense\") — admission fraction",
        &["egress nodes", "req/s per node", "admitted fraction"],
    );
    for (edges, rate) in [(1usize, 10u32), (10, 1), (100, 1), (1000, 1)] {
        let admitted = origin_rate_limit_admission(1.0, edges, rate, 10);
        admissions.push(json!({
            "egress_nodes": edges,
            "rate_per_node": rate,
            "admitted_fraction": admitted,
        }));
        origin.row(vec![
            edges.to_string(),
            rate.to_string(),
            format!("{admitted:.3}"),
        ]);
    }
    println!("{origin}");
    println!("The paper's conclusion holds: per-peer limits are defeated once the attack spreads across CDN egress nodes (§VI-C).");
    cli.write_json(&json!({
        "sbr": sbr_rows,
        "obr": obr_outcomes,
        "origin_rate_limit": admissions,
    }));
}
