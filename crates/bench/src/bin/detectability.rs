//! Detectability analysis (paper §VI-C, server side): sweeps a naive
//! tiny-range detector's threshold over a mixed benign + SBR stream and
//! prints the true/false positive trade-off — quantifying why "it is
//! difficult for the origin server to defend against it effectively
//! without affecting normal services".
//!
//! Accepts the shared harness flags (`--json`, `--threads`, `--seed`);
//! output is byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin detectability
//! ```

use rangeamp::report::TextTable;
use rangeamp_bench::BenchCli;

fn main() {
    let cli = BenchCli::parse();
    let seed = cli.seed.unwrap_or(2020);
    let points = rangeamp_bench::detectability_points_exec(seed, &cli.executor());

    let mut table = TextTable::new(
        "Tiny-range detector at the origin — mixed stream of 2000 benign + 2000 SBR requests (10 MB resource)",
        &["threshold (bytes)", "attack detection rate", "benign false-positive rate"],
    );
    for point in &points {
        table.row(vec![
            point.threshold.to_string(),
            format!("{:.1}%", point.true_positive_rate * 100.0),
            format!("{:.1}%", point.false_positive_rate * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "Catching the attack (tiny thresholds) also flags media-player probe \
         requests; raising the threshold to spare them lets the attacker simply \
         request larger-but-still-small ranges. The distributed egress sources \
         (see `mitigation` bin) close the remaining avenue — §VI-C's conclusion. \
         The `defense` bin shows what a stateful per-client layer adds."
    );
    cli.write_json(&points);
}
