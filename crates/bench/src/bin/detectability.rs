//! Detectability analysis (paper §VI-C, server side): sweeps a naive
//! tiny-range detector's threshold over a mixed benign + SBR stream and
//! prints the true/false positive trade-off — quantifying why "it is
//! difficult for the origin server to defend against it effectively
//! without affecting normal services".
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin detectability
//! ```

use rangeamp::report::TextTable;
use rangeamp::workload::{evaluate_detector, TinyRangeDetector, WorkloadGenerator};

fn main() {
    const MB: u64 = 1024 * 1024;
    let size = 10 * MB;
    let mut generator = WorkloadGenerator::new(2020, size);
    let stream = generator.mixed_stream(2_000, 2_000);

    let mut table = TextTable::new(
        "Tiny-range detector at the origin — mixed stream of 2000 benign + 2000 SBR requests (10 MB resource)",
        &["threshold (bytes)", "attack detection rate", "benign false-positive rate"],
    );
    for threshold in [1u64, 16, 64, 256, 1024, 65_536] {
        let report = evaluate_detector(
            TinyRangeDetector {
                tiny_threshold: threshold,
            },
            &stream,
            size,
        );
        table.row(vec![
            threshold.to_string(),
            format!("{:.1}%", report.true_positive_rate * 100.0),
            format!("{:.1}%", report.false_positive_rate * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "Catching the attack (tiny thresholds) also flags media-player probe \
         requests; raising the threshold to spare them lets the attacker simply \
         request larger-but-still-small ranges. The distributed egress sources \
         (see `mitigation` bin) close the remaining avenue — §VI-C's conclusion."
    );
}
