//! Regenerates Table I: range forwarding behaviours vulnerable to the
//! SBR attack, derived by the vulnerability scanner.
//!
//! Accepts the shared harness flags (`--json <path>`, `--threads <n>`);
//! output is byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table1
//! ```

fn main() {
    let cli = rangeamp_bench::BenchCli::parse();
    let rows = rangeamp_bench::scanner().scan_table1_exec(&cli.executor());
    println!("{}", rangeamp_bench::render_table1(&rows));
    println!(
        "{} vulnerable (vendor, format) rows across {} vendors — the paper finds all 13 CDNs vulnerable.",
        rows.len(),
        rows.iter().map(|r| r.vendor.clone()).collect::<std::collections::BTreeSet<_>>().len(),
    );
    cli.write_json(&rows);
}
