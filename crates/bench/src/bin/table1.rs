//! Regenerates Table I: range forwarding behaviours vulnerable to the
//! SBR attack, derived by the vulnerability scanner.
//!
//! Pass `--json <path>` to also write the rows as JSON.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table1
//! ```

fn main() {
    let rows = rangeamp_bench::scanner().scan_table1();
    println!("{}", rangeamp_bench::render_table1(&rows));
    println!(
        "{} vulnerable (vendor, format) rows across {} vendors — the paper finds all 13 CDNs vulnerable.",
        rows.len(),
        rows.iter().map(|r| r.vendor.clone()).collect::<std::collections::BTreeSet<_>>().len(),
    );
    rangeamp_bench::maybe_write_json(&rows);
}
