//! Regenerates Table II: multi-range forwarding behaviours vulnerable to
//! the OBR attack (FCDN eligibility), derived by the scanner.
//!
//! Pass `--json <path>` to also write the rows as JSON.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table2
//! ```

fn main() {
    let rows = rangeamp_bench::scanner().scan_table2();
    println!("{}", rangeamp_bench::render_table2(&rows));
    println!(
        "{} FCDN-eligible vendors — the paper finds 4 (CDN77, CDNsun, Cloudflare, StackPath).",
        rows.len()
    );
    rangeamp_bench::maybe_write_json(&rows);
}
