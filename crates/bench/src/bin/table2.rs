//! Regenerates Table II: multi-range forwarding behaviours vulnerable to
//! the OBR attack (FCDN eligibility), derived by the scanner.
//!
//! Accepts the shared harness flags (`--json <path>`, `--threads <n>`);
//! output is byte-identical at any thread count.
//!
//! ```text
//! cargo run -p rangeamp-bench --release --bin table2
//! ```

fn main() {
    let cli = rangeamp_bench::BenchCli::parse();
    let rows = rangeamp_bench::scanner().scan_table2_exec(&cli.executor());
    println!("{}", rangeamp_bench::render_table2(&rows));
    println!(
        "{} FCDN-eligible vendors — the paper finds 4 (CDN77, CDNsun, Cloudflare, StackPath).",
        rows.len()
    );
    cli.write_json(&rows);
}
