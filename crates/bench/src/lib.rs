//! Experiment drivers for the RangeAmp benchmark harness.
//!
//! Each paper table/figure has a driver function here and a binary under
//! `src/bin/` that prints it (`cargo run -p rangeamp-bench --release
//! --bin table4`, etc.). The drivers are also reused by the Criterion
//! benches and by the `all` binary, which writes machine-readable JSON
//! into `experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod timing;

use rangeamp::attack::{
    obr_combos, DroppedGetAttack, FloodExperiment, FloodReport, ObrAttack, ObrMeasurement,
    SbrAttack,
};
use rangeamp::chaos::{run_sbr_campaign, run_sbr_campaign_exec, ChaosConfig, VendorChaosReport};
use rangeamp::defense_eval::{run_defense_eval, DefenseEvalConfig, DefenseScenarioReport};
use rangeamp::executor::Executor;
use rangeamp::mitigation::{evaluate_obr_defenses, evaluate_sbr_defenses, DefenseOutcome};
use rangeamp::report::{group_digits, TextTable};
use rangeamp::scanner::{Scanner, Table1Row, Table2Row, Table3Row};
use rangeamp::severity::{project_cost, AttackCost, BillingModel, CostModel};
use rangeamp::workload::{evaluate_detector, TinyRangeDetector, WorkloadGenerator};
use rangeamp::{Telemetry, Testbed, TARGET_PATH};
use rangeamp_cdn::Vendor;
use rangeamp_origin::ResourceStore;
use serde::Serialize;

/// One MiB.
pub const MB: u64 = 1024 * 1024;

/// One Table IV / Fig 6 data point.
#[derive(Debug, Clone, Serialize)]
pub struct SbrPoint {
    /// Vendor name.
    pub vendor: String,
    /// Exploited range case description.
    pub exploited_case: String,
    /// Target resource size in bytes.
    pub file_size: u64,
    /// Response bytes the attacker received (Fig 6b).
    pub client_bytes: u64,
    /// Response bytes the origin sent (Fig 6c).
    pub origin_bytes: u64,
    /// Amplification factor (Fig 6a / Table IV).
    pub amplification_factor: f64,
}

/// Runs the SBR attack for every vendor at the given sizes (Table IV
/// uses {1, 10, 25} MB; Fig 6 sweeps 1..=25 MB).
pub fn sbr_points(sizes_mb: &[u64]) -> Vec<SbrPoint> {
    sbr_points_exec(sizes_mb, &Executor::sequential())
}

/// [`sbr_points`] sharded over a deterministic executor. Each size is
/// one unit (the 13 vendor testbeds of a size share one synthetic
/// resource store), and points concatenate in input-size order — output
/// is byte-identical at any thread count.
pub fn sbr_points_exec(sizes_mb: &[u64], executor: &Executor) -> Vec<SbrPoint> {
    executor
        .map(0, sizes_mb.to_vec(), |_, size_mb| {
            let size = size_mb * MB;
            // Share the synthetic resource across the 13 vendor testbeds.
            let mut store = ResourceStore::new();
            store.add_synthetic(TARGET_PATH, size, "application/octet-stream");
            let mut points = Vec::with_capacity(Vendor::ALL.len());
            for vendor in Vendor::ALL {
                let attack = SbrAttack::new(vendor, size);
                let bed = Testbed::builder()
                    .vendor(vendor)
                    .store(store.clone())
                    .build();
                let report = attack.run_on(&bed, size_mb);
                points.push(SbrPoint {
                    vendor: vendor.name().to_string(),
                    exploited_case: report.exploited_case.clone(),
                    file_size: size,
                    client_bytes: report.traffic.attacker_response_bytes,
                    origin_bytes: report.traffic.victim_response_bytes,
                    amplification_factor: report.amplification_factor(),
                });
            }
            points
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Renders Table IV (amplification factors at 1/10/25 MB) with the
/// paper's values alongside.
pub fn render_table4(points: &[SbrPoint]) -> TextTable {
    let mut table = TextTable::new(
        "Table IV — SBR amplification factor by target resource size (measured vs paper)",
        &[
            "CDN",
            "Exploited Range Case",
            "1MB",
            "paper",
            "10MB",
            "paper",
            "25MB",
            "paper",
        ],
    );
    for vendor in Vendor::ALL {
        let factor = |size_mb: u64| -> (String, String) {
            let point = points
                .iter()
                .find(|p| p.vendor == vendor.name() && p.file_size == size_mb * MB);
            let measured = point
                .map(|p| format!("{:.0}", p.amplification_factor))
                .unwrap_or_else(|| "-".to_string());
            let paper = paper::table4_factor(vendor, size_mb)
                .map(|f| f.to_string())
                .unwrap_or_else(|| "-".to_string());
            (measured, paper)
        };
        let mut cases: Vec<String> = points
            .iter()
            .filter(|p| p.vendor == vendor.name())
            .map(|p| p.exploited_case.clone())
            .collect();
        cases.dedup();
        let case = cases.join(" / ");
        let (m1, p1) = factor(1);
        let (m10, p10) = factor(10);
        let (m25, p25) = factor(25);
        table.row(vec![
            vendor.name().to_string(),
            case,
            m1,
            p1,
            m10,
            p10,
            m25,
            p25,
        ]);
    }
    table
}

/// Runs the Table V experiment: OBR with max n over all 11 combos.
pub fn table5_measurements() -> Vec<ObrMeasurement> {
    table5_measurements_exec(&Executor::sequential())
}

/// [`table5_measurements`] with each FCDN → BCDN cascade as one
/// executor unit, merged back in [`obr_combos`] order.
pub fn table5_measurements_exec(executor: &Executor) -> Vec<ObrMeasurement> {
    executor.map(0, obr_combos(), |_, (fcdn, bcdn)| {
        ObrAttack::new(fcdn, bcdn).run()
    })
}

/// One point of the §IV-C OBR proportionality sweep (factor vs n).
#[derive(Debug, Clone, Serialize)]
pub struct ObrSweepPoint {
    /// Number of overlapping ranges.
    pub n: usize,
    /// Attacker request size in bytes (range header + request line).
    pub request_size: usize,
    /// Victim-link (`fcdn-bcdn`) response bytes.
    pub bcdn_to_fcdn_bytes: u64,
    /// OBR amplification factor at this n.
    pub factor: f64,
    /// Response bytes the attacker actually accepted.
    pub attacker_bytes: u64,
}

/// Runs the OBR proportionality sweep (Cloudflare → Akamai, 1 KB
/// resource): n = 16, 64, 256, … up to the cascade's header-limit max.
/// Each n is one executor unit.
pub fn obr_sweep_points(executor: &Executor) -> Vec<ObrSweepPoint> {
    let fcdn = Vendor::Cloudflare;
    let bcdn = Vendor::Akamai;
    let max_n = ObrAttack::new(fcdn, bcdn).max_n();
    let mut ns = Vec::new();
    let mut n = 16usize;
    while n < max_n {
        ns.push(n);
        n *= 4;
    }
    ns.push(max_n);
    executor.map(0, ns, |_, n| {
        let report = ObrAttack::new(fcdn, bcdn).overlapping_ranges(n).run();
        let request_size = rangeamp_cdn::ObrRangeCase::AllZeroOpen
            .header(n)
            .to_string()
            .len()
            + 64; // request line + Host
        ObrSweepPoint {
            n,
            request_size,
            bcdn_to_fcdn_bytes: report.bcdn_to_fcdn_bytes,
            factor: report.amplification_factor(),
            attacker_bytes: report.attacker_bytes,
        }
    })
}

/// Renders the OBR proportionality sweep table.
pub fn render_obr_sweep(points: &[ObrSweepPoint]) -> TextTable {
    let mut table = TextTable::new(
        "OBR amplification vs number of overlapping ranges (Cloudflare → Akamai, 1 KB resource)",
        &[
            "n",
            "request size (B)",
            "BCDN→FCDN (B)",
            "factor",
            "attacker accepted (B)",
        ],
    );
    for point in points {
        table.row(vec![
            point.n.to_string(),
            point.request_size.to_string(),
            point.bcdn_to_fcdn_bytes.to_string(),
            format!("{:.1}", point.factor),
            point.attacker_bytes.to_string(),
        ]);
    }
    table
}

/// Renders Table V with the paper's values alongside.
pub fn render_table5(measurements: &[ObrMeasurement]) -> TextTable {
    let mut table = TextTable::new(
        "Table V — OBR max amplification per cascaded combination (1 KB resource)",
        &[
            "FCDN",
            "BCDN",
            "Exploited Range Case",
            "Max n",
            "n paper",
            "Server→BCDN",
            "BCDN→FCDN",
            "Factor",
            "Factor paper",
        ],
    );
    for m in measurements {
        let (paper_n, paper_factor) = paper::table5_reference(&m.fcdn, &m.bcdn)
            .map(|(n, f)| (n.to_string(), format!("{f:.2}")))
            .unwrap_or_else(|| ("-".to_string(), "-".to_string()));
        table.row(vec![
            m.fcdn.clone(),
            m.bcdn.clone(),
            m.exploited_case.clone(),
            m.n.to_string(),
            paper_n,
            format!("{}B", m.server_to_bcdn_bytes),
            format!("{}B", m.bcdn_to_fcdn_bytes),
            format!("{:.2}", m.amplification_factor()),
            paper_factor,
        ]);
    }
    table
}

/// Runs Fig 7 for m = 1..=15.
pub fn fig7_reports() -> Vec<FloodReport> {
    fig7_reports_exec(&Executor::sequential())
}

/// [`fig7_reports`] with each attack rate m as one executor unit,
/// merged back in ascending-m order.
pub fn fig7_reports_exec(executor: &Executor) -> Vec<FloodReport> {
    executor.map(0, (1..=15).collect(), |_, m| {
        FloodExperiment::paper_config(m).run()
    })
}

/// Renders the Fig 7 summary (steady origin outgoing bandwidth per m).
pub fn render_fig7_summary(reports: &[FloodReport]) -> TextTable {
    let mut table = TextTable::new(
        "Fig 7 — bandwidth consumption vs attack rate m (10 MB resource, 1000 Mbps uplink, 30 s)",
        &[
            "m (req/s)",
            "origin outgoing (steady, Mbps)",
            "client incoming peak (Kbps)",
        ],
    );
    for report in reports {
        table.row(vec![
            report.requests_per_sec.to_string(),
            format!("{:.1}", report.steady_origin_mbps()),
            format!("{:.1}", report.peak_client_kbps()),
        ]);
    }
    table
}

/// Renders scanner Table I.
pub fn render_table1(rows: &[Table1Row]) -> TextTable {
    let mut table = TextTable::new(
        "Table I — range forwarding behaviours vulnerable to the SBR attack (scanner output)",
        &["CDN", "Vulnerable Range Format", "Forwarded Range Format"],
    );
    for row in rows {
        table.row(vec![
            row.vendor.clone(),
            row.vulnerable_format.clone(),
            row.forwarded_format.clone(),
        ]);
    }
    table
}

/// Renders scanner Table II.
pub fn render_table2(rows: &[Table2Row]) -> TextTable {
    let mut table = TextTable::new(
        "Table II — range forwarding behaviours vulnerable to the OBR attack (FCDN eligibility)",
        &["CDN", "Vulnerable Range Format", "Forwarded Range Format"],
    );
    for row in rows {
        table.row(vec![
            row.vendor.clone(),
            row.vulnerable_format.clone(),
            row.forwarded_format.clone(),
        ]);
    }
    table
}

/// Renders scanner Table III.
pub fn render_table3(rows: &[Table3Row]) -> TextTable {
    let mut table = TextTable::new(
        "Table III — range replying behaviours vulnerable to the OBR attack (BCDN eligibility)",
        &["CDN", "Vulnerable Ranges Format", "Response Format"],
    );
    for row in rows {
        table.row(vec![
            row.vendor.clone(),
            row.vulnerable_format.clone(),
            row.response_format.clone(),
        ]);
    }
    table
}

/// The default scanner used by the harness binaries.
pub fn scanner() -> Scanner {
    Scanner::default()
}

/// Runs the default SBR chaos campaign (flaky origin, every vendor).
pub fn retry_amp_reports() -> Vec<VendorChaosReport> {
    run_sbr_campaign(&ChaosConfig::default())
}

/// [`retry_amp_reports`] with an optional telemetry bundle: every round
/// of every vendor's run is traced, and the campaign publishes its
/// per-vendor gauges/counters into the bundle's metrics registry.
pub fn retry_amp_reports_with(telemetry: Option<&Telemetry>) -> Vec<VendorChaosReport> {
    retry_amp_reports_exec(&ChaosConfig::default(), telemetry, &Executor::sequential())
}

/// [`retry_amp_reports_with`] sharded over a deterministic executor
/// with an explicit campaign configuration.
pub fn retry_amp_reports_exec(
    config: &ChaosConfig,
    telemetry: Option<&Telemetry>,
    executor: &Executor,
) -> Vec<VendorChaosReport> {
    run_sbr_campaign_exec(config, telemetry, executor)
}

/// Renders the per-vendor retry-amplification table: how much extra
/// origin-side traffic each vendor's retry policy generates when the
/// exploited SBR fetches fail and get retried.
pub fn render_retry_amp(reports: &[VendorChaosReport]) -> TextTable {
    let mut table = TextTable::new(
        "Retry amplification — SBR campaign under a flaky origin (deterministic fault schedule)",
        &[
            "CDN",
            "Attempts",
            "Retries",
            "Breaker opens",
            "Stale serves",
            "5xx to client",
            "Origin bytes",
            "Retry bytes",
            "Retry-amp",
            "Retries/req",
            "Cache h/m",
            "Cache hit",
            "Availability",
        ],
    );
    for report in reports {
        table.row(vec![
            report.vendor.name().to_string(),
            report.resilience.attempts.to_string(),
            report.resilience.retries.to_string(),
            report.breaker_opens.to_string(),
            report.resilience.stale_serves.to_string(),
            report.client_errors.to_string(),
            group_digits(report.origin.response_bytes),
            group_digits(report.resilience.retry_response_bytes),
            format!("{:.3}x", report.retry_amplification()),
            format!("{:.3}", report.retries_per_request()),
            format!("{}/{}", report.cache_hits, report.cache_misses),
            format!("{:.1}%", report.cache_hit_ratio() * 100.0),
            format!("{:.1}%", report.availability() * 100.0),
        ]);
    }
    table
}

/// Serialises retry-amplification reports as a JSON array (the report
/// structs live in crates that deliberately stay serde-free, so the
/// shape is assembled here).
pub fn retry_amp_json(reports: &[VendorChaosReport]) -> serde_json::Value {
    serde_json::Value::Array(
        reports
            .iter()
            .map(|r| {
                serde_json::json!({
                    "vendor": r.vendor.name(),
                    "rounds": r.rounds,
                    "attempts": r.resilience.attempts,
                    "retries": r.resilience.retries,
                    "breaker_opens": r.breaker_opens,
                    "stale_serves": r.resilience.stale_serves,
                    "client_errors": r.client_errors,
                    "origin_response_bytes": r.origin.response_bytes,
                    "retry_response_bytes": r.resilience.retry_response_bytes,
                    "retry_amplification": r.retry_amplification(),
                    "retries_per_request": r.retries_per_request(),
                    "cache_hits": r.cache_hits,
                    "cache_misses": r.cache_misses,
                    "cache_hit_ratio": r.cache_hit_ratio(),
                    "availability": r.availability(),
                })
            })
            .collect(),
    )
}

/// Runs the online-defense evaluation campaign (DESIGN.md §12): all 24
/// scenarios (13 Table IV SBR vendors + 11 Table V OBR cascades), each
/// replayed undefended and defended as one executor unit.
pub fn defense_eval_reports_exec(
    config: &DefenseEvalConfig,
    executor: &Executor,
    seed: u64,
) -> Vec<DefenseScenarioReport> {
    run_defense_eval(config, executor, seed)
}

/// Renders the defense evaluation table: detection quality, enforcement
/// ladder outcome, and victim-link traffic with/without the layer.
pub fn render_defense_eval(reports: &[DefenseScenarioReport]) -> TextTable {
    let mut table = TextTable::new(
        "Online defense evaluation — mixed benign + attack workloads, defended vs undefended (DESIGN.md §12)",
        &[
            "scenario",
            "case",
            "detected",
            "latency (ms)",
            "precision",
            "recall",
            "benign blocked",
            "peak action",
            "victim bytes (raw)",
            "victim bytes (defended)",
            "residual amp",
        ],
    );
    for report in reports {
        table.row(vec![
            report.scenario.clone(),
            report.exploited_case.clone(),
            report.detected.to_string(),
            report
                .detection_latency_ms
                .map(|ms| ms.to_string())
                .unwrap_or_else(|| "-".to_string()),
            format!("{:.3}", report.precision),
            format!("{:.3}", report.recall),
            report.benign_requests_blocked.to_string(),
            report.peak_action.clone(),
            group_digits(report.undefended_victim_bytes),
            group_digits(report.defended_victim_bytes),
            format!("{:.2}x", report.residual_amplification),
        ]);
    }
    table
}

/// One threshold point of the §VI-C naive-detector sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DetectabilityPoint {
    /// Tiny-range threshold in bytes.
    pub threshold: u64,
    /// Attack requests flagged / total attack requests.
    pub true_positive_rate: f64,
    /// Benign requests flagged / total benign requests.
    pub false_positive_rate: f64,
}

/// Sweeps the naive tiny-range detector over a mixed 2000 + 2000 stream
/// (10 MB resource). Each threshold is one executor unit regenerating
/// the same seeded stream, so points are thread-count invariant.
pub fn detectability_points_exec(seed: u64, executor: &Executor) -> Vec<DetectabilityPoint> {
    const SIZE: u64 = 10 * MB;
    let thresholds: Vec<u64> = vec![1, 16, 64, 256, 1024, 65_536];
    executor.map(seed, thresholds, |_, threshold| {
        let mut generator = WorkloadGenerator::new(seed, SIZE);
        let stream = generator.mixed_stream(2_000, 2_000);
        let report = evaluate_detector(
            TinyRangeDetector {
                tiny_threshold: threshold,
            },
            &stream,
            SIZE,
        );
        DetectabilityPoint {
            threshold,
            true_positive_rate: report.true_positive_rate,
            false_positive_rate: report.false_positive_rate,
        }
    })
}

/// Per-vendor static-mitigation outcomes (§VI-C ablations).
#[derive(Debug, Clone, Serialize)]
pub struct MitigationRow {
    /// Vendor under attack.
    pub vendor: String,
    /// Outcomes for each defense, in evaluation order.
    pub outcomes: Vec<DefenseOutcome>,
}

/// Runs the SBR mitigation ablation for `vendors`; one vendor per
/// executor unit.
pub fn sbr_mitigation_rows_exec(
    vendors: &[Vendor],
    resource_size: u64,
    executor: &Executor,
) -> Vec<MitigationRow> {
    executor.map(0, vendors.to_vec(), |_, vendor| MitigationRow {
        vendor: vendor.name().to_string(),
        outcomes: evaluate_sbr_defenses(vendor, resource_size),
    })
}

/// The OBR mitigation ablation (single cascade, one unit).
pub fn obr_mitigation_outcomes(fcdn: Vendor, bcdn: Vendor, n: usize) -> Vec<DefenseOutcome> {
    evaluate_obr_defenses(fcdn, bcdn, n)
}

/// One row of the §V-E severity table.
#[derive(Debug, Clone, Serialize)]
pub struct SeverityRow {
    /// Billing model description (`$x/GB` or `flat-rate`).
    pub billing: String,
    /// Projected attack cost.
    pub cost: AttackCost,
}

/// Projects §V-E costs for every vendor (25 MB resource, one vendor per
/// executor unit).
pub fn severity_rows_exec(
    rate: u32,
    hours: f64,
    model: &CostModel,
    executor: &Executor,
) -> Vec<SeverityRow> {
    let model = *model;
    executor.map(0, Vendor::ALL.to_vec(), |_, vendor| {
        let measurement = SbrAttack::new(vendor, 25 * MB).run();
        let billing = match BillingModel::for_vendor(vendor) {
            BillingModel::PerGb(price) => format!("${price:.3}/GB"),
            BillingModel::FlatRate => "flat-rate".to_string(),
        };
        SeverityRow {
            billing,
            cost: project_cost(vendor, &measurement, rate, hours, &model),
        }
    })
}

/// One row of the §VIII dropped-GET vs SBR comparison.
#[derive(Debug, Clone, Serialize)]
pub struct DroppedGetRow {
    /// Vendor.
    pub vendor: String,
    /// Whether the vendor keeps the back-end connection alive on abort.
    pub keeps_backend_alive: bool,
    /// Origin traffic for one dropped GET (defense in play).
    pub dropped_get_origin_bytes: u64,
    /// Whether the break-backend defense stopped the dropped GET.
    pub defense_works: bool,
    /// Origin traffic for one SBR round (defense irrelevant).
    pub sbr_origin_bytes: u64,
}

/// Runs the §VIII comparison for every vendor; one vendor per unit.
pub fn dropped_get_rows_exec(resource_size: u64, executor: &Executor) -> Vec<DroppedGetRow> {
    executor.map(0, Vendor::ALL.to_vec(), |_, vendor| {
        let dropped = DroppedGetAttack::new(vendor, resource_size).run();
        let sbr = SbrAttack::new(vendor, resource_size).run();
        DroppedGetRow {
            vendor: vendor.name().to_string(),
            keeps_backend_alive: dropped.keeps_backend_alive,
            dropped_get_origin_bytes: dropped.origin_bytes,
            defense_works: dropped.defense_effective(resource_size),
            sbr_origin_bytes: sbr.traffic.victim_response_bytes,
        }
    })
}

/// One row of the §VI-B HTTP/2 applicability check.
#[derive(Debug, Clone, Serialize)]
pub struct H2Row {
    /// Vendor.
    pub vendor: String,
    /// SBR amplification factor under HTTP/1.1 framing.
    pub factor_h1: f64,
    /// SBR amplification factor under HTTP/2 framing.
    pub factor_h2: f64,
}

/// Runs the HTTP/2 framing comparison (10 MB resource); one vendor per
/// executor unit.
pub fn h2_rows_exec(executor: &Executor) -> Vec<H2Row> {
    executor.map(0, Vendor::ALL.to_vec(), |_, vendor| {
        let report = SbrAttack::new(vendor, 10 * MB).run();
        H2Row {
            vendor: vendor.name().to_string(),
            factor_h1: report.amplification_factor(),
            factor_h2: report.amplification_factor_h2(),
        }
    })
}

/// The flag set shared by every table/figure binary, parsed once.
///
/// All harness binaries accept:
///
/// * `--json <path>` — also write the experiment's rows as pretty JSON;
/// * `--threads <n>` — shard the experiment over `n` executor threads
///   (`0` means "one per core"; output bytes are identical for any
///   value — see DESIGN.md §8);
/// * `--seed <n>` — override the campaign seed where the experiment is
///   seeded (ignored by the purely deterministic table sweeps).
#[derive(Debug, Clone)]
pub struct BenchCli {
    /// `--json <path>`: JSON sidecar output path.
    pub json: Option<String>,
    /// `--threads <n>` (default 1; 0 = one per core).
    pub threads: usize,
    /// `--seed <n>`: campaign seed override.
    pub seed: Option<u64>,
}

impl BenchCli {
    /// Parses the shared flags from `std::env::args`.
    pub fn parse() -> BenchCli {
        let threads = arg_value("--threads")
            .map(|raw| raw.parse().expect("--threads takes an integer"))
            .unwrap_or(1);
        BenchCli {
            json: arg_value("--json"),
            threads,
            seed: arg_value("--seed").map(|raw| raw.parse().expect("--seed takes an integer")),
        }
    }

    /// The executor the flags select: `--threads 0` sizes it to the
    /// machine, anything else is an explicit shard count.
    pub fn executor(&self) -> Executor {
        if self.threads == 0 {
            Executor::available_parallelism()
        } else {
            Executor::new(self.threads)
        }
    }

    /// Writes `value` as pretty JSON to the `--json` path, when given.
    /// The printed text output is unaffected, so golden outputs stay
    /// byte-identical.
    pub fn write_json<T: Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(value).expect("serializable");
            write_output(path, &json);
        }
    }
}

/// Returns the value following `flag` on the command line, accepting
/// both `--flag value` and `--flag=value` spellings.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            return args.next();
        }
        if let Some(rest) = arg.strip_prefix(flag) {
            if let Some(value) = rest.strip_prefix('=') {
                return Some(value.to_string());
            }
        }
    }
    None
}

/// Writes `contents` to `path` verbatim, creating parent directories as
/// needed, and notes the write on stderr (stdout stays reserved for the
/// deterministic experiment text).
pub fn write_output(path: &str, contents: &str) {
    let path = std::path::Path::new(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("can create output dir");
        }
    }
    std::fs::write(path, contents).expect("output path is writable");
    eprintln!("wrote {}", path.display());
}

/// If the command line carries `--json <path>`, serialises `value` as
/// pretty-printed JSON to that path. The printed text output is
/// unaffected, so existing golden outputs stay byte-identical.
pub fn maybe_write_json<T: Serialize>(value: &T) {
    if let Some(path) = arg_value("--json") {
        let json = serde_json::to_string_pretty(value).expect("serializable");
        write_output(&path, &json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbr_points_cover_all_vendors() {
        let points = sbr_points(&[1]);
        assert_eq!(points.len(), 13);
        for point in &points {
            assert!(point.amplification_factor > 100.0, "{point:?}");
        }
    }

    #[test]
    fn table4_renders_13_rows() {
        let points = sbr_points(&[1]);
        let table = render_table4(&points);
        assert_eq!(table.len(), 13);
    }

    #[test]
    fn table5_has_11_rows() {
        let measurements = table5_measurements();
        assert_eq!(measurements.len(), 11);
        let table = render_table5(&measurements);
        assert_eq!(table.len(), 11);
    }
}
