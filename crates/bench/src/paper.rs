//! The paper's published numbers, embedded for side-by-side comparison.
//!
//! These constants are *reference data only* — nothing in the library or
//! the experiments reads them to produce results; they exist so the
//! harness binaries and EXPERIMENTS.md can print measured-vs-paper
//! deltas.

use rangeamp_cdn::Vendor;

/// Table IV amplification factors (rows: vendor; columns: 1/10/25 MB).
pub const TABLE4: [(&str, [u64; 3]); 13] = [
    ("Akamai", [1707, 16991, 43093]),
    ("Alibaba Cloud", [1056, 10498, 26241]),
    ("Azure", [1401, 15016, 23481]),
    ("CDN77", [1612, 15915, 40390]),
    ("CDNsun", [1578, 15705, 38730]),
    ("Cloudflare", [1282, 12791, 31836]),
    ("CloudFront", [1356, 9214, 9281]),
    ("Fastly", [1286, 12836, 31820]),
    ("G-Core Labs", [1763, 17197, 43330]),
    ("Huawei Cloud", [1465, 14631, 36335]),
    ("KeyCDN", [724, 7117, 17744]),
    ("StackPath", [1297, 13007, 32491]),
    ("Tencent Cloud", [1308, 12997, 32438]),
];

/// Looks up the paper's Table IV factor for a vendor/size.
pub fn table4_factor(vendor: Vendor, size_mb: u64) -> Option<u64> {
    let column = match size_mb {
        1 => 0,
        10 => 1,
        25 => 2,
        _ => return None,
    };
    TABLE4
        .iter()
        .find(|(name, _)| *name == vendor.name())
        .map(|(_, factors)| factors[column])
}

/// Table V reference values: (FCDN, BCDN, max n, amplification factor).
pub const TABLE5: [(&str, &str, usize, f64); 11] = [
    ("CDN77", "Akamai", 5455, 3789.35),
    ("CDN77", "Azure", 64, 53.55),
    ("CDN77", "StackPath", 5455, 3547.07),
    ("CDNsun", "Akamai", 5456, 3781.51),
    ("CDNsun", "Azure", 64, 52.15),
    ("CDNsun", "StackPath", 5456, 3547.57),
    ("Cloudflare", "Akamai", 10750, 7432.53),
    ("Cloudflare", "Azure", 64, 52.71),
    ("Cloudflare", "StackPath", 10750, 6513.69),
    ("StackPath", "Akamai", 10801, 7471.41),
    ("StackPath", "Azure", 64, 50.74),
];

/// Looks up the paper's Table V row for a cascade.
pub fn table5_reference(fcdn: &str, bcdn: &str) -> Option<(usize, f64)> {
    TABLE5
        .iter()
        .find(|(f, b, _, _)| *f == fcdn && *b == bcdn)
        .map(|(_, _, n, factor)| (*n, *factor))
}

/// Fig 7 qualitative reference points (origin outgoing bandwidth is
/// proportional to m below saturation, near line rate from m = 11, and
/// fully exhausted from m = 14; client incoming stays under 500 Kbps).
pub const FIG7_SATURATION_M: u32 = 11;
/// The m at which the paper reports complete exhaustion.
pub const FIG7_EXHAUSTION_M: u32 = 14;
/// The paper's bound on attacker-side incoming bandwidth (Kbps).
pub const FIG7_CLIENT_KBPS_BOUND: f64 = 500.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_lookup() {
        assert_eq!(table4_factor(Vendor::Akamai, 25), Some(43093));
        assert_eq!(table4_factor(Vendor::KeyCdn, 1), Some(724));
        assert_eq!(table4_factor(Vendor::Akamai, 5), None);
    }

    #[test]
    fn table4_covers_all_vendors() {
        for vendor in Vendor::ALL {
            assert!(table4_factor(vendor, 1).is_some(), "{vendor}");
        }
    }

    #[test]
    fn table5_lookup() {
        assert_eq!(
            table5_reference("Cloudflare", "Akamai"),
            Some((10750, 7432.53))
        );
        assert_eq!(table5_reference("StackPath", "StackPath"), None);
    }

    #[test]
    fn table5_has_eleven_rows() {
        assert_eq!(TABLE5.len(), 11);
    }
}
