//! Shared timing harness for the `perf` benchmark binary: workload
//! timing over warmup + measured iterations, the stable
//! `BENCH_campaigns.json` schema, and the committed-baseline regression
//! check used by CI.
//!
//! # `BENCH_*.json` schema (`rangeamp-bench-perf/1`)
//!
//! ```json
//! {
//!   "schema": "rangeamp-bench-perf/1",
//!   "threads": [1, 4],
//!   "workloads": [
//!     {
//!       "name": "chaos_campaign",
//!       "threads": 4,
//!       "warmup_iters": 1,
//!       "measured_iters": 3,
//!       "wall_ns": 123456789,
//!       "mean_wall_ns": 130000000,
//!       "units": 13,
//!       "units_per_sec": 105.3,
//!       "simulated_wire_bytes": 987654321,
//!       "wire_bytes_per_sec": 8.0e9
//!     }
//!   ]
//! }
//! ```
//!
//! * `wall_ns` is the **minimum** measured-iteration wall time (the
//!   least-noise estimator; it is what the regression gate compares);
//!   `mean_wall_ns` is the arithmetic mean over measured iterations.
//! * `units` counts the executor units the workload processed in one
//!   iteration (vendors, cascades, sweep sizes …); `units_per_sec`
//!   divides by the best wall time.
//! * `simulated_wire_bytes` sums the bytes that crossed the testbed's
//!   metered segments in one iteration — the throughput the simulation
//!   achieved, not bytes on any real NIC.
//!
//! Workload entries are keyed `(name, threads)`; the baseline check
//! compares `wall_ns` for matching keys and ignores keys present on
//! only one side (so adding a workload or running a different thread
//! list never fails the gate spuriously).
//!
//! The committed baseline (`BENCH_baseline.json`) is read back with the
//! minimal JSON parser below — the workspace's vendored `serde_json`
//! serialises only, by design.

use std::time::Instant;

use rangeamp::executor::Executor;
use serde::Serialize;

/// Schema identifier written into every perf report.
pub const PERF_SCHEMA: &str = "rangeamp-bench-perf/1";

/// Default regression tolerance: fail when a workload's best wall time
/// grows by more than 15% over the committed baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One timed workload at one thread count.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadResult {
    /// Workload name (stable across versions: the gate joins on it).
    pub name: String,
    /// Executor threads the workload ran with.
    pub threads: usize,
    /// Untimed warmup iterations executed first.
    pub warmup_iters: u32,
    /// Timed iterations behind the numbers below.
    pub measured_iters: u32,
    /// Best (minimum) wall time of one iteration, in nanoseconds.
    pub wall_ns: u64,
    /// Mean wall time of one iteration, in nanoseconds.
    pub mean_wall_ns: u64,
    /// Executor units processed per iteration.
    pub units: u64,
    /// `units / (wall_ns / 1e9)`.
    pub units_per_sec: f64,
    /// Simulated wire bytes moved per iteration (all metered segments).
    pub simulated_wire_bytes: u64,
    /// `simulated_wire_bytes / (wall_ns / 1e9)`.
    pub wire_bytes_per_sec: f64,
}

/// The full perf report (`BENCH_campaigns.json`).
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// Always [`PERF_SCHEMA`].
    pub schema: String,
    /// The thread counts the harness swept.
    pub threads: Vec<usize>,
    /// One entry per `(workload, thread count)`.
    pub workloads: Vec<WorkloadResult>,
}

impl PerfReport {
    /// An empty report for the given thread sweep.
    pub fn new(threads: Vec<usize>) -> PerfReport {
        PerfReport {
            schema: PERF_SCHEMA.to_string(),
            threads,
            workloads: Vec::new(),
        }
    }

    /// Looks up a workload entry by `(name, threads)`.
    pub fn entry(&self, name: &str, threads: usize) -> Option<&WorkloadResult> {
        self.workloads
            .iter()
            .find(|w| w.name == name && w.threads == threads)
    }

    /// The speedup of `name` at `threads` relative to its 1-thread
    /// entry (best wall times), when both are present.
    pub fn speedup(&self, name: &str, threads: usize) -> Option<f64> {
        let base = self.entry(name, 1)?;
        let multi = self.entry(name, threads)?;
        Some(base.wall_ns as f64 / multi.wall_ns.max(1) as f64)
    }
}

/// Times one workload: `run` is called `warmup` times untimed, then
/// `iters` times timed; it must return `(units processed, simulated
/// wire bytes)` for the iteration.
pub fn time_workload(
    name: &str,
    executor: &Executor,
    warmup: u32,
    iters: u32,
    run: impl Fn(&Executor) -> (u64, u64),
) -> WorkloadResult {
    for _ in 0..warmup {
        run(executor);
    }
    let mut walls = Vec::with_capacity(iters.max(1) as usize);
    let mut units = 0u64;
    let mut bytes = 0u64;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let (u, b) = run(executor);
        walls.push(start.elapsed().as_nanos() as u64);
        units = u;
        bytes = b;
    }
    let wall_ns = *walls.iter().min().expect("at least one iteration");
    let mean_wall_ns = walls.iter().sum::<u64>() / walls.len() as u64;
    let secs = (wall_ns.max(1)) as f64 / 1e9;
    WorkloadResult {
        name: name.to_string(),
        threads: executor.threads(),
        warmup_iters: warmup,
        measured_iters: iters.max(1),
        wall_ns,
        mean_wall_ns,
        units,
        units_per_sec: units as f64 / secs,
        simulated_wire_bytes: bytes,
        wire_bytes_per_sec: bytes as f64 / secs,
    }
}

/// Outcome of checking a fresh report against a committed baseline.
#[derive(Debug, Clone)]
pub struct BaselineCheck {
    /// Per-workload comparison lines (for the CI log).
    pub lines: Vec<String>,
    /// Workloads whose best wall time regressed beyond tolerance.
    pub regressions: Vec<String>,
}

impl BaselineCheck {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `current` against the JSON text of a committed baseline.
/// Joins entries on `(name, threads)`; a workload regresses when its
/// best wall time exceeds the baseline's by more than `tolerance`
/// (0.15 = +15%). Returns `None` when the baseline cannot be parsed as
/// a perf report (the caller should warn and skip the gate).
pub fn check_against_baseline(
    current: &PerfReport,
    baseline_json: &str,
    tolerance: f64,
) -> Option<BaselineCheck> {
    let baseline = parse_perf_report(baseline_json)?;
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for entry in &current.workloads {
        let Some(base) = baseline
            .iter()
            .find(|b| b.name == entry.name && b.threads == entry.threads)
        else {
            lines.push(format!(
                "{} @{}t: no baseline entry (skipped)",
                entry.name, entry.threads
            ));
            continue;
        };
        let ratio = entry.wall_ns as f64 / base.wall_ns.max(1) as f64;
        let delta_pct = (ratio - 1.0) * 100.0;
        let verdict = if ratio > 1.0 + tolerance {
            regressions.push(format!(
                "{} @{}t regressed {:+.1}% ({} ns -> {} ns, tolerance +{:.0}%)",
                entry.name,
                entry.threads,
                delta_pct,
                base.wall_ns,
                entry.wall_ns,
                tolerance * 100.0
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        lines.push(format!(
            "{} @{}t: {} ns vs baseline {} ns ({:+.1}%) {}",
            entry.name, entry.threads, entry.wall_ns, base.wall_ns, delta_pct, verdict
        ));
    }
    Some(BaselineCheck { lines, regressions })
}

/// A baseline workload entry as read back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Workload name.
    pub name: String,
    /// Thread count of the entry.
    pub threads: usize,
    /// Best wall time recorded in the baseline.
    pub wall_ns: u64,
}

/// Parses the `workloads` array out of a perf-report JSON document.
pub fn parse_perf_report(text: &str) -> Option<Vec<BaselineEntry>> {
    let value = json::parse(text)?;
    let workloads = value.get("workloads")?.as_array()?;
    let mut entries = Vec::with_capacity(workloads.len());
    for workload in workloads {
        entries.push(BaselineEntry {
            name: workload.get("name")?.as_str()?.to_string(),
            threads: workload.get("threads")?.as_u64()? as usize,
            wall_ns: workload.get("wall_ns")?.as_u64()?,
        });
    }
    Some(entries)
}

/// A minimal recursive-descent JSON reader.
///
/// The workspace's vendored `serde_json` is serialise-only, so the
/// baseline gate brings its own reader: the full value grammar
/// (objects, arrays, strings with escapes, numbers, booleans, null),
/// no trailing-comma leniency, and `f64` number semantics — exactly
/// enough to read files this harness wrote.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, as `f64`.
        Number(f64),
        /// A string literal, unescaped.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object (sorted map — key order is irrelevant here).
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// Member lookup on an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(map) => map.get(key),
                _ => None,
            }
        }

        /// The value as an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a non-negative integer (rounds through `f64`,
        /// exact for the magnitudes the perf schema stores).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The value as a float.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Parses one JSON document; `None` on any syntax error or
    /// trailing garbage.
    pub fn parse(text: &str) -> Option<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn eat(bytes: &[u8], pos: &mut usize, byte: u8) -> Option<()> {
        skip_ws(bytes, pos);
        if *pos < bytes.len() && bytes[*pos] == byte {
            *pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b'{' => parse_object(bytes, pos),
            b'[' => parse_array(bytes, pos),
            b'"' => parse_string(bytes, pos).map(Value::String),
            b't' => parse_literal(bytes, pos, b"true", Value::Bool(true)),
            b'f' => parse_literal(bytes, pos, b"false", Value::Bool(false)),
            b'n' => parse_literal(bytes, pos, b"null", Value::Null),
            _ => parse_number(bytes, pos),
        }
    }

    fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8], value: Value) -> Option<Value> {
        if bytes[*pos..].starts_with(word) {
            *pos += word.len();
            Some(value)
        } else {
            None
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        eat(bytes, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Some(Value::Object(map));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            eat(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            map.insert(key, value);
            skip_ws(bytes, pos);
            match bytes.get(*pos)? {
                b',' => *pos += 1,
                b'}' => {
                    *pos += 1;
                    return Some(Value::Object(map));
                }
                _ => return None,
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        eat(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Some(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos)? {
                b',' => *pos += 1,
                b']' => {
                    *pos += 1;
                    return Some(Value::Array(items));
                }
                _ => return None,
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
        if bytes.get(*pos) != Some(&b'"') {
            return None;
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match bytes.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = bytes.get(*pos + 1..*pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return None,
                    }
                    *pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Value::Number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, threads: usize, wall_ns: u64) -> WorkloadResult {
        WorkloadResult {
            name: name.to_string(),
            threads,
            warmup_iters: 1,
            measured_iters: 3,
            wall_ns,
            mean_wall_ns: wall_ns,
            units: 13,
            units_per_sec: 13.0 / (wall_ns as f64 / 1e9),
            simulated_wire_bytes: 1000,
            wire_bytes_per_sec: 1000.0 / (wall_ns as f64 / 1e9),
        }
    }

    #[test]
    fn report_roundtrips_through_own_parser() {
        let mut report = PerfReport::new(vec![1, 4]);
        report
            .workloads
            .push(result("chaos_campaign", 1, 4_000_000));
        report
            .workloads
            .push(result("chaos_campaign", 4, 1_000_000));
        let text = serde_json::to_string_pretty(&report).expect("serializable");
        let parsed = parse_perf_report(&text).expect("own output parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "chaos_campaign");
        assert_eq!(parsed[0].threads, 1);
        assert_eq!(parsed[0].wall_ns, 4_000_000);
    }

    #[test]
    fn speedup_compares_against_single_thread() {
        let mut report = PerfReport::new(vec![1, 4]);
        report
            .workloads
            .push(result("chaos_campaign", 1, 4_000_000));
        report
            .workloads
            .push(result("chaos_campaign", 4, 1_000_000));
        assert_eq!(report.speedup("chaos_campaign", 4), Some(4.0));
        assert_eq!(report.speedup("missing", 4), None);
    }

    #[test]
    fn regression_gate_fires_beyond_tolerance() {
        let mut baseline = PerfReport::new(vec![1]);
        baseline.workloads.push(result("w", 1, 1_000_000));
        let baseline_json = serde_json::to_string_pretty(&baseline).expect("serializable");

        let mut ok = PerfReport::new(vec![1]);
        ok.workloads.push(result("w", 1, 1_100_000)); // +10% < 15%
        let check = check_against_baseline(&ok, &baseline_json, DEFAULT_TOLERANCE)
            .expect("baseline parses");
        assert!(check.passed(), "{:?}", check.regressions);

        let mut bad = PerfReport::new(vec![1]);
        bad.workloads.push(result("w", 1, 1_200_000)); // +20% > 15%
        let check = check_against_baseline(&bad, &baseline_json, DEFAULT_TOLERANCE)
            .expect("baseline parses");
        assert!(!check.passed());
        assert_eq!(check.regressions.len(), 1);
    }

    #[test]
    fn missing_baseline_entries_are_skipped_not_failed() {
        let baseline = PerfReport::new(vec![1]);
        let baseline_json = serde_json::to_string_pretty(&baseline).expect("serializable");
        let mut current = PerfReport::new(vec![1]);
        current.workloads.push(result("brand_new", 1, 5));
        let check = check_against_baseline(&current, &baseline_json, DEFAULT_TOLERANCE)
            .expect("baseline parses");
        assert!(check.passed());
        assert!(check.lines[0].contains("no baseline entry"));
    }

    #[test]
    fn unparseable_baseline_returns_none() {
        let current = PerfReport::new(vec![1]);
        assert!(check_against_baseline(&current, "not json", DEFAULT_TOLERANCE).is_none());
        assert!(check_against_baseline(&current, "{\"schema\":1}", DEFAULT_TOLERANCE).is_none());
    }

    #[test]
    fn json_parser_covers_the_value_grammar() {
        let value = json::parse(
            r#"{"a": [1, -2.5, 1e3], "s": "x\n\"yA", "t": true, "f": false, "n": null}"#,
        )
        .expect("parses");
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(value.get("s").unwrap().as_str(), Some("x\n\"yA"));
        assert_eq!(value.get("t"), Some(&json::Value::Bool(true)));
        assert_eq!(value.get("n"), Some(&json::Value::Null));
        assert!(json::parse("{").is_none());
        assert!(json::parse("[1,]").is_none());
        assert!(json::parse("{} trailing").is_none());
    }

    #[test]
    fn time_workload_records_units_and_bytes() {
        let executor = Executor::new(2);
        let result = time_workload("demo", &executor, 1, 2, |exec| {
            let out = exec.map(0, vec![1u64, 2, 3], |_, x| x);
            (out.len() as u64, out.iter().sum())
        });
        assert_eq!(result.name, "demo");
        assert_eq!(result.threads, 2);
        assert_eq!(result.units, 3);
        assert_eq!(result.simulated_wire_bytes, 6);
        assert!(result.wall_ns > 0);
        assert!(result.units_per_sec > 0.0);
    }
}
