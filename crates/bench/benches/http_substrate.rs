//! Micro-benchmarks for the HTTP substrate: `Range` grammar parsing,
//! multipart/byteranges assembly, and wire-format round-trips. These are
//! the hot paths of every experiment (each SBR run serializes multi-MB
//! responses; each OBR run parses 30 KB `Range` headers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rangeamp_http::multipart::MultipartBuilder;
use rangeamp_http::range::{coalesce, RangeHeader, ResolvedRange};
use rangeamp_http::{wire, Body, Request, Response, StatusCode};

fn bench_range_parsing(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_parse");
    for n in [1usize, 64, 1024, 10_750] {
        let header = RangeHeader::overlapping(n).to_string();
        group.throughput(Throughput::Bytes(header.len() as u64));
        group.bench_with_input(BenchmarkId::new("overlapping", n), &header, |b, header| {
            b.iter(|| RangeHeader::parse(black_box(header)).expect("valid"));
        });
    }
    group.bench_function("single_small", |b| {
        b.iter(|| RangeHeader::parse(black_box("bytes=0-0")).expect("valid"));
    });
    group.finish();
}

fn bench_coalesce(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalesce");
    for n in [64usize, 1024, 10_750] {
        let ranges: Vec<ResolvedRange> = vec![
            ResolvedRange {
                first: 0,
                last: 1023
            };
            n
        ];
        group.bench_with_input(BenchmarkId::from_parameter(n), &ranges, |b, ranges| {
            b.iter(|| coalesce(black_box(ranges)));
        });
    }
    group.finish();
}

fn bench_multipart_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("multipart_build");
    let body = Body::from(vec![0u8; 1024]);
    for n in [4usize, 64, 1024] {
        group.throughput(Throughput::Bytes((n * 1024) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut builder = MultipartBuilder::new("application/octet-stream", 1024);
                for _ in 0..n {
                    builder = builder.part(
                        ResolvedRange {
                            first: 0,
                            last: 1023,
                        },
                        black_box(body.clone()),
                    );
                }
                builder.build()
            });
        });
    }
    group.finish();
}

fn bench_wire_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let req = Request::get("/10MB.bin?rnd=0123456789abcdef")
        .header("Host", "victim.example")
        .header("Range", "bytes=0-0")
        .build();
    let req_bytes = req.to_wire_bytes();
    group.bench_function("encode_request", |b| {
        b.iter(|| black_box(&req).to_wire_bytes());
    });
    group.bench_function("decode_request", |b| {
        b.iter(|| wire::decode_request(black_box(&req_bytes)).expect("valid"));
    });

    let resp = Response::builder(StatusCode::OK)
        .header("Content-Type", "application/octet-stream")
        .sized_body(vec![0u8; 1024 * 1024])
        .build();
    group.throughput(Throughput::Bytes(resp.wire_len()));
    group.bench_function("encode_response_1mb", |b| {
        b.iter(|| black_box(&resp).to_wire_bytes());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_range_parsing,
    bench_coalesce,
    bench_multipart_build,
    bench_wire_round_trip
);
criterion_main!(benches);
