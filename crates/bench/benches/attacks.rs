//! End-to-end attack benchmarks: one full SBR round per vendor (Table IV
//! cell) and one full OBR round per cascade (Table V row), plus the
//! max-n solver. Wall-clock here is simulation cost, not attack cost —
//! but the relative weight across vendors mirrors how much traffic each
//! behaviour moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rangeamp::attack::{ObrAttack, SbrAttack};
use rangeamp::{Testbed, TARGET_PATH};
use rangeamp_cdn::Vendor;

const MB: u64 = 1024 * 1024;

fn bench_sbr_per_vendor(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbr_round_1mb");
    group.sample_size(20);
    for vendor in Vendor::ALL {
        let bed = Testbed::builder()
            .vendor(vendor)
            .resource(TARGET_PATH, MB)
            .build();
        let attack = SbrAttack::new(vendor, MB);
        group.throughput(Throughput::Bytes(MB));
        group.bench_with_input(
            BenchmarkId::from_parameter(vendor.name()),
            &attack,
            |b, attack| {
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    black_box(attack.run_on(&bed, round))
                });
            },
        );
    }
    group.finish();
}

fn bench_sbr_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbr_size_sweep_akamai");
    group.sample_size(10);
    for size_mb in [1u64, 5, 10, 25] {
        let bed = Testbed::builder()
            .vendor(Vendor::Akamai)
            .resource(TARGET_PATH, size_mb * MB)
            .build();
        let attack = SbrAttack::new(Vendor::Akamai, size_mb * MB);
        group.throughput(Throughput::Bytes(size_mb * MB));
        group.bench_with_input(
            BenchmarkId::from_parameter(size_mb),
            &attack,
            |b, attack| {
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    black_box(attack.run_on(&bed, round))
                });
            },
        );
    }
    group.finish();
}

fn bench_obr_n_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("obr_cloudflare_akamai");
    group.sample_size(10);
    for n in [64usize, 1024, 10_750] {
        let attack = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai).overlapping_ranges(n);
        group.throughput(Throughput::Bytes((n as u64) * 1024));
        group.bench_with_input(BenchmarkId::from_parameter(n), &attack, |b, attack| {
            b.iter(|| black_box(attack.run()));
        });
    }
    group.finish();
}

fn bench_max_n_solver(c: &mut Criterion) {
    c.bench_function("max_n_solver", |b| {
        let attack = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai);
        b.iter(|| black_box(attack.max_n()));
    });
}

criterion_group!(
    benches,
    bench_sbr_per_vendor,
    bench_sbr_size_sweep,
    bench_obr_n_sweep,
    bench_max_n_solver
);
criterion_main!(benches);
