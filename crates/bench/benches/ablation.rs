//! Ablation benches for the design choices DESIGN.md calls out: how much
//! origin traffic each mitigation removes (the §VI-C options), and the
//! cost of cache-busting versus cache hits. Criterion measures the work
//! the simulation performs, which is dominated by the bytes moved — so
//! lower time = less amplified traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rangeamp::attack::SbrAttack;
use rangeamp::mitigation::Defense;
use rangeamp::{Testbed, TARGET_PATH};
use rangeamp_cdn::Vendor;
use rangeamp_http::Request;

const MB: u64 = 1024 * 1024;

fn bench_sbr_under_defenses(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbr_defense_ablation");
    group.sample_size(20);
    for defense in Defense::ALL {
        let profile = Vendor::Akamai.profile().with_mitigation(defense.config());
        let bed = Testbed::builder()
            .profile(profile.clone())
            .resource(TARGET_PATH, 5 * MB)
            .build();
        let attack = SbrAttack::new(Vendor::Akamai, 5 * MB).with_profile(profile);
        group.bench_with_input(
            BenchmarkId::from_parameter(defense.name().replace(' ', "_")),
            &attack,
            |b, attack| {
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    black_box(attack.run_on(&bed, round))
                });
            },
        );
    }
    group.finish();
}

fn bench_cache_hit_vs_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_bust_ablation");
    group.sample_size(20);
    let bed = Testbed::builder()
        .vendor(Vendor::Akamai)
        .resource(TARGET_PATH, MB)
        .build();
    // Warm the cache once with a fixed URL.
    let warm = Request::get(&format!("{TARGET_PATH}?fixed=1"))
        .header("Host", "victim.example")
        .header("Range", "bytes=0-0")
        .build();
    bed.request(&warm);

    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(bed.request(&warm)));
    });
    group.bench_function("cache_miss_busted", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let req = Request::get(&format!("{TARGET_PATH}?rnd={round}"))
                .header("Host", "victim.example")
                .header("Range", "bytes=0-0")
                .build();
            black_box(bed.request(&req))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sbr_under_defenses, bench_cache_hit_vs_miss);
criterion_main!(benches);
