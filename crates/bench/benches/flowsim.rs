//! Benchmarks for the flow-level bandwidth simulator (the Fig 7
//! substrate): scaling in the number of concurrent flows and in the
//! simulated horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rangeamp::attack::FloodExperiment;
use rangeamp_net::FlowSim;

fn bench_max_min_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("flowsim_flows");
    group.sample_size(10);
    for flows in [10usize, 100, 450] {
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            b.iter(|| {
                let mut sim = FlowSim::new(20);
                let link = sim.add_link("uplink", 1000.0);
                for i in 0..flows {
                    sim.schedule_flow((i as u64 % 30) * 1000, 10 * 1024 * 1024, &[link]);
                }
                sim.run_until_millis(black_box(40_000));
                sim.link_throughput_mbps(link)
            });
        });
    }
    group.finish();
}

fn bench_fig7_single_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for m in [1u32, 8, 15] {
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, &m| {
            b.iter(|| black_box(FloodExperiment::paper_config(m).run()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_min_scaling, bench_fig7_single_run);
criterion_main!(benches);
