use std::sync::Arc;

use rangeamp_http::range::{coalesce, ByteRangeSpec, RangeHeader};
use rangeamp_http::{Request, Response, StatusCode};
use rangeamp_net::{Segment, SharedClock, SpanKind, Telemetry};

use crate::assemble;
use crate::defense::{client_key, DefenseAction, DefenseHook, RequestOutcome};
use crate::vendor::{self, MissCtx, MissReply, MissResult, VendorProfile};
use crate::{
    BreakerConfig, Cache, MitigationConfig, MultiReplyPolicy, Resilience, UpstreamError,
    UpstreamService,
};

/// A CDN edge node: cache + vendor behaviour profile + metered upstream
/// connection.
///
/// The node is the ingress/egress pair of the paper's Fig 1 collapsed into
/// one hop: requests arrive from the client (metered by the caller on the
/// `client-cdn` segment), are served from cache or forwarded upstream
/// (metered here on the node's origin-side segment), and responses are
/// assembled according to the vendor profile.
#[derive(Debug)]
pub struct EdgeNode {
    profile: VendorProfile,
    cache: Cache,
    upstream: Arc<dyn UpstreamService>,
    segment: Segment,
    resilience: Resilience,
    telemetry: Option<Telemetry>,
    defense: Option<Arc<dyn DefenseHook>>,
}

impl EdgeNode {
    /// Creates an edge node fronting `upstream`, metering back-to-origin
    /// traffic on `segment`. Resilience (retry/backoff + circuit
    /// breaker) defaults to the vendor's [`RetryPolicy`] on a fresh
    /// virtual clock.
    ///
    /// [`RetryPolicy`]: crate::RetryPolicy
    pub fn new(
        profile: VendorProfile,
        upstream: Arc<dyn UpstreamService>,
        segment: Segment,
    ) -> EdgeNode {
        let resilience =
            Resilience::new(profile.retry, BreakerConfig::default(), SharedClock::new());
        EdgeNode {
            profile,
            cache: Cache::new(),
            upstream,
            segment,
            resilience,
            telemetry: None,
            defense: None,
        }
    }

    /// Replaces the resilience layer (retry policy, breaker config,
    /// shared virtual clock) — used by chaos campaigns that drive many
    /// edges off one clock.
    pub fn with_resilience(mut self, resilience: Resilience) -> EdgeNode {
        self.resilience = resilience;
        self
    }

    /// Replaces the edge cache — used to install a TTL'd cache so that
    /// serve-stale has expired entries to fall back on.
    pub fn with_cache(mut self, cache: Cache) -> EdgeNode {
        self.cache = cache;
        self
    }

    /// Attaches a telemetry bundle. Every request handled afterwards
    /// records hop spans (edge handling, cache lookup, upstream fetch
    /// attempts, breaker transitions, serve-stale) and metrics. Tracing
    /// never touches the HTTP messages themselves, so byte counts on the
    /// metered segments are identical with and without telemetry.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> EdgeNode {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches an online defense hook (DESIGN.md §12). Every request
    /// handled afterwards is routed through
    /// [`DefenseHook::decide`] / [`DefenseHook::observe`]: the chosen
    /// [`DefenseAction`] hardens (never relaxes) the profile's
    /// mitigation config for that one request, and the hook sees the
    /// origin-side byte cost of each decision.
    pub fn with_defense(mut self, defense: Arc<dyn DefenseHook>) -> EdgeNode {
        self.defense = Some(defense);
        self
    }

    /// The attached telemetry bundle, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// The vendor profile in force.
    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    /// The resilience layer (retry/breaker state and statistics).
    pub fn resilience(&self) -> &Resilience {
        &self.resilience
    }

    /// The back-to-origin segment (for traffic inspection).
    pub fn origin_segment(&self) -> &Segment {
        &self.segment
    }

    /// The edge cache (for inspection in tests and experiments).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Handles one client request end to end.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_inner(req, None)
    }

    /// Handles a request whose client connection was aborted after
    /// `client_received` response bytes. Vendors that do not keep their
    /// back-end connection alive on abort (§IV-C) stop the upstream
    /// transfer shortly after that point; CDNsun and CDN77 let it finish.
    pub fn handle_with_client_abort(&self, req: &Request, client_received: u64) -> Response {
        const ABORT_BUFFER: u64 = 128 * 1024; // in-flight data at abort time
        let backend_truncate = if self.profile.keeps_backend_alive_on_abort {
            None
        } else {
            Some(client_received + ABORT_BUFFER)
        };
        self.handle_inner(req, backend_truncate)
    }

    /// Telemetry wrapper around the pipeline: opens the per-tier edge
    /// span, runs [`handle_core`](EdgeNode::handle_core), then records
    /// the outcome. Observation only — the request and response are the
    /// ones the untraced path would produce, byte for byte.
    fn handle_inner(&self, req: &Request, backend_truncate: Option<u64>) -> Response {
        let Some(tel) = &self.telemetry else {
            return self.handle_core(req, backend_truncate);
        };
        let vendor = self.profile.vendor.to_string();
        let clock = self.resilience.clock().clone();
        let mut span = tel
            .tracer()
            .start_span("edge-handle", SpanKind::Edge, clock.now_millis());
        span.attr("vendor", vendor.clone());
        span.attr("uri", req.uri().to_string());
        if let Some(range) = req.headers().get("range") {
            span.attr("range", range);
        }
        span.add_bytes_in(req.wire_len());

        let resp = self.handle_core(req, backend_truncate);

        span.add_bytes_out(resp.wire_len());
        span.attr("status", resp.status().as_u16().to_string());
        // finish() appended this edge's X-Cache last; earlier values (if
        // any) belong to upstream tiers of a cascade.
        let cache_state = resp
            .headers()
            .get_all("x-cache")
            .last()
            .and_then(|v| v.split(' ').next())
            .unwrap_or("-")
            .to_string();
        span.attr("cache", cache_state);
        span.finish(clock.now_millis());
        tel.metrics()
            .counter_add("edge_requests_total", &[("vendor", &vendor)], 1);
        resp
    }

    fn handle_core(&self, req: &Request, backend_truncate: Option<u64>) -> Response {
        // 0. Forwarding-loop detection (RFC 7230 §5.7.1 Via; cf. the
        //    forwarding-loop attacks discussed in the paper's §VIII).
        let via_token = self.profile.via_token();
        let looped = req
            .headers()
            .get_all("via")
            .iter()
            .any(|v| v.contains(via_token.as_str()));
        if looped {
            return self.finish(
                Response::builder(StatusCode::BAD_GATEWAY)
                    .header("Date", assemble::CDN_DATE)
                    .sized_body("forwarding loop detected")
                    .build(),
                &[],
                "DENY",
            );
        }

        // 1. Request-header size limits (§V-C).
        if !self.profile.limits.admits(req) {
            return self.finish(
                Response::builder(StatusCode::REQUEST_HEADER_FIELDS_TOO_LARGE)
                    .header("Date", assemble::CDN_DATE)
                    .sized_body("request header fields too large")
                    .build(),
                &[],
                "DENY",
            );
        }

        // 1b. Online defense (DESIGN.md §12): ask the hook for an action,
        //     run the pipeline under the (possibly hardened) mitigation
        //     config it implies, then report the byte-level outcome back.
        let Some(hook) = self.defense.clone() else {
            return self.handle_admitted(req, backend_truncate, self.profile.mitigation);
        };
        let client = client_key(req).to_string();
        let now_ms = self.resilience.clock().now_millis();
        let action = hook.decide(&client, req, now_ms);
        let origin_before = self.segment.stats().response_bytes;
        let resp = if action == DefenseAction::Block {
            self.finish(
                Response::builder(StatusCode::TOO_MANY_REQUESTS)
                    .header("Date", assemble::CDN_DATE)
                    .header("X-Defense", action.as_str())
                    .sized_body("request blocked by range-abuse defense")
                    .build(),
                &[],
                "DENY",
            )
        } else {
            let mitigation = action.effective_mitigation(self.profile.mitigation);
            self.handle_admitted(req, backend_truncate, mitigation)
        };
        if let Some(tel) = &self.telemetry {
            let vendor = self.profile.vendor.to_string();
            if action.is_enforcing() {
                let mut span = tel
                    .tracer()
                    .start_span("defense-action", SpanKind::Defense, now_ms);
                span.attr("client", client.clone());
                span.attr("action", action.as_str());
                span.finish(now_ms);
            }
            tel.metrics().counter_add(
                "defense_actions_total",
                &[("vendor", &vendor), ("action", action.as_str())],
                1,
            );
        }
        let outcome = RequestOutcome {
            origin_bytes: self.segment.stats().response_bytes - origin_before,
            client_bytes: resp.wire_len(),
            status: resp.status().as_u16(),
        };
        hook.observe(&client, req, action, &outcome, now_ms);
        resp
    }

    /// Steps 2–5 of the pipeline, run under an explicit mitigation
    /// config: the vendor profile's own config on the plain path, or the
    /// defense-hardened one when a [`DefenseHook`] chose an enforcing
    /// action.
    fn handle_admitted(
        &self,
        req: &Request,
        backend_truncate: Option<u64>,
        mitigation: MitigationConfig,
    ) -> Response {
        let via_token = self.profile.via_token();
        let mut range = req
            .headers()
            .get("range")
            .and_then(|v| RangeHeader::parse(v).ok());
        let size_hint = self.upstream.resource_size(req.uri().path());

        // 2. Mitigation pre-checks (§VI-C).
        if mitigation.reject_overlapping {
            if let Some(header) = &range {
                if header.is_multi() && header.overlapping_pairs(size_hint.unwrap_or(u64::MAX)) > 0
                {
                    return self.finish(
                        assemble::not_satisfiable(size_hint.unwrap_or(0)),
                        &[],
                        "DENY",
                    );
                }
            }
        }
        if mitigation.coalesce_multi {
            if let (Some(header), Some(size)) = (&range, size_hint) {
                if header.is_multi() {
                    range = Some(coalesce_header(header, size));
                }
            }
        }

        // 3. Cache lookup: path+query keying, so the attacker's random
        //    query string always misses (§II-A).
        let host = req.headers().get("host").unwrap_or("-").to_string();
        let cache_key = Cache::key(&host, &req.uri().to_string());
        if self.profile.cache_enabled {
            let now_ms = self.resilience.clock().now_millis();
            let looked_up = self.cache.get_at(&cache_key, now_ms);
            if let Some(tel) = &self.telemetry {
                let result = if looked_up.is_some() { "hit" } else { "miss" };
                let vendor = self.profile.vendor.to_string();
                let mut span =
                    tel.tracer()
                        .start_span("cache-lookup", SpanKind::CacheLookup, now_ms);
                span.attr("result", result);
                span.finish(now_ms);
                tel.metrics().counter_add(
                    "cache_lookups_total",
                    &[("vendor", &vendor), ("result", result)],
                    1,
                );
            }
            if let Some(entry) = looked_up {
                let resp = assemble::serve_from_full(
                    range.as_ref(),
                    &entry.response,
                    self.effective_multi_reply(mitigation),
                );
                return self.finish(resp, &[], "HIT");
            }
        }

        // 4. Cache miss: mitigation overrides, then the vendor mechanics.
        let mut ctx = MissCtx {
            req,
            range: range.clone(),
            resource_size: size_hint,
            upstream: self.upstream.as_ref(),
            segment: &self.segment,
            cache: &self.cache,
            cache_key: cache_key.clone(),
            backend_truncate,
            via_token: &via_token,
            resilience: &self.resilience,
            telemetry: self.telemetry.as_ref(),
        };
        let outcome = self.handle_miss_with_mitigation(&mut ctx, mitigation);

        // 5. Assemble the client-facing response. An upstream failure
        //    that survived the retry policy becomes a 502/504.
        let (resp, extra) = match outcome {
            Ok(result) => {
                let extra = result.extra_headers.clone();
                let resp = match result.reply {
                    MissReply::Passthrough(upstream_resp) => {
                        if result.cacheable && upstream_resp.status() == StatusCode::OK {
                            self.store(&cache_key, &upstream_resp);
                        }
                        if upstream_resp.status() == StatusCode::OK && range.is_some() {
                            // RFC 2616 (quoted in the paper's §VI-B): a proxy that
                            // forwarded a range request and "receives an entire
                            // entity ... should only return the requested range to
                            // its client". This is why all 13 CDNs answer 206 even
                            // when the origin ignores ranges (§III-B).
                            assemble::serve_from_full(
                                range.as_ref(),
                                &upstream_resp,
                                self.effective_multi_reply(mitigation),
                            )
                        } else {
                            upstream_resp
                        }
                    }
                    MissReply::ServeFromFull(full) => {
                        if result.cacheable && full.status() == StatusCode::OK {
                            self.store(&cache_key, &full);
                        }
                        if full.status().is_success() {
                            assemble::serve_from_full(
                                range.as_ref(),
                                &full,
                                self.effective_multi_reply(mitigation),
                            )
                        } else {
                            full // propagate origin errors (404 etc.)
                        }
                    }
                    MissReply::Direct(resp) => resp,
                    MissReply::Reject(status) => Response::builder(status)
                        .header("Date", assemble::CDN_DATE)
                        .sized_body("rejected by edge policy")
                        .build(),
                };
                (resp, extra)
            }
            Err(err) => (upstream_error_response(&err), Vec::new()),
        };

        // 5b. Serve-stale: a 5xx outcome falls back to an expired cached
        //     copy when one exists (RFC 5861 stale-if-error behaviour).
        if resp.status().as_u16() >= 500 && self.profile.cache_enabled {
            if let Some(entry) = self.cache.get_stale(&cache_key) {
                self.resilience.with_stats(|s| s.stale_serves += 1);
                if let Some(tel) = &self.telemetry {
                    let now_ms = self.resilience.clock().now_millis();
                    let vendor = self.profile.vendor.to_string();
                    let mut span =
                        tel.tracer()
                            .start_span("serve-stale", SpanKind::ServeStale, now_ms);
                    span.attr("upstream_status", resp.status().as_u16().to_string());
                    span.finish(now_ms);
                    tel.metrics()
                        .counter_add("stale_serves_total", &[("vendor", &vendor)], 1);
                }
                let mut stale = assemble::serve_from_full(
                    range.as_ref(),
                    &entry.response,
                    self.effective_multi_reply(mitigation),
                );
                stale
                    .headers_mut()
                    .append("Warning", "110 - \"Response is Stale\"");
                return self.finish(stale, &[], "STALE");
            }
        }
        self.finish(resp, &extra, "MISS")
    }

    fn handle_miss_with_mitigation(
        &self,
        ctx: &mut MissCtx<'_>,
        mitigation: MitigationConfig,
    ) -> Result<MissResult, UpstreamError> {
        if mitigation.force_laziness {
            return vendor::laziness(ctx);
        }
        if let (Some(cap), Some(header)) = (mitigation.expansion_cap, ctx.range.clone()) {
            if !header.is_multi() {
                return self.capped_expansion(ctx, &header, cap);
            }
            // Multi-range under a capped-expansion regime: never hand the
            // set to the vendor's (unbounded) expansion logic; coalesce
            // and forward the merged ranges instead.
            return vendor::coalesced_forward(&self.profile, ctx);
        }
        vendor::handle_miss(&self.profile, ctx)
    }

    /// The paper's "better way" (§VI-C): expand the requested range by at
    /// most `cap` bytes, so back-to-origin traffic can never exceed the
    /// client's request by more than the cap.
    fn capped_expansion(
        &self,
        ctx: &MissCtx<'_>,
        header: &RangeHeader,
        cap: u64,
    ) -> Result<MissResult, UpstreamError> {
        let spec = header.specs()[0];
        let expanded = match spec {
            ByteRangeSpec::FromTo { first, last } => {
                let last = match ctx.resource_size {
                    Some(size) if size > 0 => last.saturating_add(cap).min(size - 1),
                    _ => last.saturating_add(cap),
                };
                ByteRangeSpec::FromTo { first, last }
            }
            // Open-ended and suffix specs already reach the representation
            // edge; expanding them buys no cacheable context.
            other => other,
        };
        let expanded_header = RangeHeader::new(vec![expanded]).expect("expanded spec is valid");
        let upstream_resp = ctx.fetch(Some(&expanded_header))?;
        if upstream_resp.status() != StatusCode::PARTIAL_CONTENT {
            // Origin ignored the range: fall back to a full-copy serve.
            return Ok(MissResult::new(
                MissReply::ServeFromFull(upstream_resp),
                true,
            ));
        }
        let complete = match ctx.resource_size {
            Some(size) => size,
            None => {
                return Ok(MissResult::new(
                    MissReply::Passthrough(upstream_resp),
                    false,
                ))
            }
        };
        Ok(
            match spec.resolve(complete).and_then(|requested| {
                assemble::slice_single_from_partial(requested, &upstream_resp)
            }) {
                Some(resp) => MissResult::new(MissReply::Direct(resp), false),
                None => MissResult::new(MissReply::Passthrough(upstream_resp), false),
            },
        )
    }

    fn effective_multi_reply(&self, mitigation: MitigationConfig) -> MultiReplyPolicy {
        if mitigation.coalesce_multi {
            MultiReplyPolicy::Coalesce
        } else {
            self.profile.multi_reply
        }
    }

    fn store(&self, key: &str, resp: &Response) {
        if self.profile.cache_enabled {
            self.cache
                .put_at(key, resp.clone(), self.resilience.clock().now_millis());
        }
    }

    /// Appends the vendor's standing headers, per-request extras, and the
    /// cache-status header every CDN exposes.
    fn finish(
        &self,
        mut resp: Response,
        extra: &[(String, String)],
        cache_status: &str,
    ) -> Response {
        for (name, value) in &self.profile.extra_headers {
            resp.headers_mut().append(name, value.clone());
        }
        for (name, value) in extra {
            resp.headers_mut().append(name, value.clone());
        }
        resp.headers_mut().append(
            "X-Cache",
            format!("{cache_status} from {}", self.profile.vendor),
        );
        resp
    }
}

impl UpstreamService for EdgeNode {
    fn handle(&self, req: &Request) -> Result<Response, UpstreamError> {
        // An edge never *fails* as an upstream: its own failures have
        // already been converted to 502/504 client responses.
        Ok(EdgeNode::handle(self, req))
    }

    fn resource_size(&self, path: &str) -> Option<u64> {
        self.upstream.resource_size(path)
    }
}

/// Maps a post-retry upstream failure to the client-facing error status:
/// timeouts become 504, everything else (reset, truncation, malformed
/// response, open breaker) becomes 502.
fn upstream_error_response(err: &UpstreamError) -> Response {
    let status = match err {
        UpstreamError::Timeout => StatusCode::GATEWAY_TIMEOUT,
        _ => StatusCode::BAD_GATEWAY,
    };
    Response::builder(status)
        .header("Date", assemble::CDN_DATE)
        .sized_body(format!("upstream fetch failed: {err}").into_bytes())
        .build()
}

/// Coalesces a multi-range header against a known representation size,
/// producing concrete `first-last` specs.
fn coalesce_header(header: &RangeHeader, complete_length: u64) -> RangeHeader {
    let merged = coalesce(&header.resolve(complete_length));
    if merged.is_empty() {
        return header.clone();
    }
    let specs = merged
        .iter()
        .map(|r| {
            if r.last + 1 == complete_length {
                ByteRangeSpec::From { first: r.first }
            } else {
                ByteRangeSpec::FromTo {
                    first: r.first,
                    last: r.last,
                }
            }
        })
        .collect();
    RangeHeader::new(specs).expect("coalesced specs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::Vendor;
    use crate::MitigationConfig;
    use rangeamp_net::SegmentName;
    use rangeamp_origin::{OriginServer, ResourceStore};

    const MB: u64 = 1024 * 1024;

    fn testbed(vendor: Vendor, size: u64) -> (EdgeNode, Segment) {
        testbed_with_profile(vendor.profile(), size)
    }

    fn testbed_with_profile(profile: VendorProfile, size: u64) -> (EdgeNode, Segment) {
        let mut store = ResourceStore::new();
        store.add_synthetic("/target.bin", size, "application/octet-stream");
        let origin = Arc::new(OriginServer::new(store));
        let segment = Segment::new(SegmentName::CdnOrigin);
        (EdgeNode::new(profile, origin, segment.clone()), segment)
    }

    fn sbr_request(range: &str, rnd: u32) -> Request {
        Request::get(&format!("/target.bin?rnd={rnd}"))
            .header("Host", "victim.example")
            .header("Range", range)
            .build()
    }

    #[test]
    fn deletion_vendor_amplifies_sbr() {
        let (edge, segment) = testbed(Vendor::Akamai, MB);
        let resp = edge.handle(&sbr_request("bytes=0-0", 1));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.body().len(), 1);
        // Origin shipped the whole 1 MB because the Range was deleted.
        assert!(segment.stats().response_bytes > MB);
        assert_eq!(
            segment.capture().forwarded_ranges(),
            vec![None],
            "Akamai deletes the Range header"
        );
    }

    #[test]
    fn cache_hit_stops_amplification() {
        let (edge, segment) = testbed(Vendor::Akamai, MB);
        let req = sbr_request("bytes=0-0", 7);
        edge.handle(&req);
        let after_first = segment.stats().response_bytes;
        let resp = edge.handle(&req); // same query string → cache hit
        assert_eq!(segment.stats().response_bytes, after_first);
        assert_eq!(resp.body().len(), 1);
        assert!(resp
            .headers()
            .get_all("x-cache")
            .iter()
            .any(|v| v.starts_with("HIT")));
    }

    #[test]
    fn cache_busting_defeats_the_cache() {
        let (edge, segment) = testbed(Vendor::Akamai, MB);
        edge.handle(&sbr_request("bytes=0-0", 1));
        edge.handle(&sbr_request("bytes=0-0", 2));
        assert_eq!(
            segment.stats().requests,
            2,
            "both requests reached the origin"
        );
    }

    #[test]
    fn limits_reject_oversized_requests() {
        let (edge, segment) = testbed(Vendor::Akamai, MB);
        let huge = crate::ObrRangeCase::AllZeroOpen.header(20_000).to_string();
        let resp = edge.handle(&sbr_request(&huge, 1));
        assert_eq!(resp.status(), StatusCode::REQUEST_HEADER_FIELDS_TOO_LARGE);
        assert_eq!(segment.stats().requests, 0, "rejected before forwarding");
    }

    #[test]
    fn vendor_headers_and_cache_status_are_appended() {
        let (edge, _) = testbed(Vendor::Cloudflare, MB);
        let resp = edge.handle(&sbr_request("bytes=0-0", 1));
        assert!(
            resp.headers().contains("cf-ray"),
            "Cloudflare brands responses"
        );
        assert!(resp
            .headers()
            .get_all("x-cache")
            .iter()
            .any(|v| v.contains("MISS")));
    }

    #[test]
    fn force_laziness_mitigation_kills_sbr() {
        let profile = Vendor::Akamai.profile().with_mitigation(MitigationConfig {
            force_laziness: true,
            ..MitigationConfig::none()
        });
        let (edge, segment) = testbed_with_profile(profile, MB);
        let resp = edge.handle(&sbr_request("bytes=0-0", 1));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        // Origin only shipped the one requested byte (plus headers).
        assert!(segment.stats().response_bytes < 1024);
        assert_eq!(
            segment.capture().forwarded_ranges(),
            vec![Some("bytes=0-0".to_string())]
        );
    }

    #[test]
    fn capped_expansion_bounds_origin_traffic() {
        let profile = Vendor::Akamai
            .profile()
            .with_mitigation(MitigationConfig::capped_expansion_8k());
        let (edge, segment) = testbed_with_profile(profile, MB);
        let resp = edge.handle(&sbr_request("bytes=0-0", 1));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.body().len(), 1);
        let origin_bytes = segment.stats().response_bytes;
        assert!(
            origin_bytes < 10 * 1024,
            "8 KB cap exceeded: {origin_bytes} bytes from origin"
        );
        assert_eq!(
            segment.capture().forwarded_ranges(),
            vec![Some("bytes=0-8192".to_string())]
        );
    }

    #[test]
    fn reject_overlapping_mitigation_416s_obr_shape() {
        let profile = Vendor::Akamai.profile().with_mitigation(MitigationConfig {
            reject_overlapping: true,
            ..MitigationConfig::none()
        });
        let (edge, segment) = testbed_with_profile(profile, MB);
        let resp = edge.handle(&sbr_request("bytes=0-,0-,0-", 1));
        assert_eq!(resp.status(), StatusCode::RANGE_NOT_SATISFIABLE);
        assert_eq!(segment.stats().requests, 0);
    }

    #[test]
    fn coalesce_mitigation_merges_before_reply() {
        let profile = Vendor::Akamai.profile().with_mitigation(MitigationConfig {
            coalesce_multi: true,
            ..MitigationConfig::none()
        });
        let (edge, _) = testbed_with_profile(profile, 1000);
        let resp = edge.handle(&sbr_request("bytes=0-,0-,0-", 1));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        // Merged to one range → plain 206, body exactly once.
        assert_eq!(resp.body().len(), 1000);
        assert_eq!(
            resp.headers().get("content-range"),
            Some("bytes 0-999/1000")
        );
    }

    #[test]
    fn origin_errors_propagate() {
        let (edge, _) = testbed(Vendor::Akamai, MB);
        let req = Request::get("/missing.bin")
            .header("Host", "victim.example")
            .header("Range", "bytes=0-0")
            .build();
        let resp = edge.handle(&req);
        assert_eq!(resp.status(), StatusCode::NOT_FOUND);
    }

    #[test]
    fn client_abort_truncates_backend_for_most_vendors() {
        // §IV-C/§VIII: most CDNs break the back-end connection when the
        // front-end connection is abnormally cut off.
        let (edge, segment) = testbed(Vendor::Akamai, 10 * MB);
        let req = Request::get("/target.bin?a=1")
            .header("Host", "victim.example")
            .build();
        edge.handle_with_client_abort(&req, 0);
        let origin = segment.stats().response_bytes;
        assert!(
            origin < MB,
            "backend transfer should stop shortly after abort, got {origin}"
        );
    }

    #[test]
    fn cdn77_keeps_backend_alive_on_abort() {
        // §IV-C: "some CDNs will maintain the connection between itself
        // and the upstream server when the client-cdn connection is
        // abnormally aborted, such as CDNsun and CDN77".
        let (edge, segment) = testbed(Vendor::Cdn77, 10 * MB);
        let req = Request::get("/target.bin?a=1")
            .header("Host", "victim.example")
            .build();
        edge.handle_with_client_abort(&req, 0);
        assert!(
            segment.stats().response_bytes > 10 * MB,
            "CDN77 finishes the upstream transfer"
        );
    }

    #[test]
    fn forwarding_loops_are_detected_via_via() {
        let (edge, segment) = testbed(Vendor::StackPath, MB);
        // A request that already passed through a StackPath edge.
        let req = Request::get("/target.bin?a=1")
            .header("Host", "victim.example")
            .header("Via", "1.1 stackpath-edge")
            .build();
        let resp = edge.handle(&req);
        assert_eq!(resp.status(), StatusCode::BAD_GATEWAY);
        assert_eq!(
            segment.stats().requests,
            0,
            "loop rejected before forwarding"
        );
    }

    #[test]
    fn upstream_requests_carry_via() {
        let (edge, segment) = testbed(Vendor::Fastly, MB);
        let req = Request::get("/target.bin?a=1")
            .header("Host", "victim.example")
            .build();
        edge.handle(&req);
        let capture = segment.capture();
        let upstream = capture.in_direction(rangeamp_net::Direction::Upstream);
        assert_eq!(upstream.len(), 1);
        // The captured summary doesn't carry Via, but a second edge of the
        // same vendor downstream would reject it — covered by the cascade
        // integration tests; here we check the request grew by the header.
        assert!(upstream[0].wire_len > req.wire_len());
    }

    #[test]
    fn coalesce_header_produces_open_spec_at_eof() {
        let header = RangeHeader::parse("bytes=0-,0-").unwrap();
        let merged = coalesce_header(&header, 1000);
        assert_eq!(merged.to_string(), "bytes=0-");
        let header = RangeHeader::parse("bytes=0-10,5-20").unwrap();
        let merged = coalesce_header(&header, 1000);
        assert_eq!(merged.to_string(), "bytes=0-20");
    }

    #[test]
    fn capped_expansion_adds_exactly_8k() {
        // §VI-C pin: the "better way" expands the requested range by
        // *exactly* the 8 KB cap (mid-file, so EOF clamping is out of
        // play) — never more, never less.
        let profile = Vendor::Akamai
            .profile()
            .with_mitigation(MitigationConfig::capped_expansion_8k());
        let (edge, segment) = testbed_with_profile(profile, MB);
        let resp = edge.handle(&sbr_request("bytes=4096-5119", 1));
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.body().len(), 1024, "client gets what they asked");
        assert_eq!(
            segment.capture().forwarded_ranges(),
            vec![Some("bytes=4096-13311".to_string())],
            "5119 + 8192 = 13311: requested span + exactly 8 KB"
        );
        let requested = 5119 - 4096 + 1;
        let expanded = 13311 - 4096 + 1;
        assert_eq!(expanded - requested, 8 * 1024);
    }

    #[test]
    fn coalesce_header_is_idempotent() {
        // §VI-C pin: coalescing is a projection —
        // coalesce(coalesce(r)) == coalesce(r) for every range shape.
        for text in [
            "bytes=0-,0-,0-",
            "bytes=0-10,5-20,40-50",
            "bytes=0-0,2-2,4-4",
            "bytes=-500,0-100",
            "bytes=999-,0-10",
            "bytes=0-999",
        ] {
            let header = RangeHeader::parse(text).unwrap();
            let once = coalesce_header(&header, 1000);
            let twice = coalesce_header(&once, 1000);
            assert_eq!(twice, once, "{text}");
        }
    }
}
