//! Edge resilience: retry with capped exponential backoff, a per-upstream
//! circuit breaker, and the bookkeeping that turns both into the paper's
//! amplification language.
//!
//! The RangeAmp attacks measure how many origin-side bytes one client
//! request provokes. Retries multiply that number: an edge configured for
//! `n` attempts can fetch the same (deleted-Range, i.e. full-body)
//! response up to `n` times when the origin is flaky, so the SBR
//! amplification factor grows by up to `n` *on top of* the range-rewrite
//! amplification. [`ResilienceStats`] meters exactly that surplus
//! (`retry_request_bytes` / `retry_response_bytes`), and the circuit
//! breaker + serve-stale pair is the countervailing mechanism that caps
//! it.
//!
//! All timing is virtual: backoff advances a [`SharedClock`] by the
//! computed delay, and the breaker's open window is compared against the
//! same clock, so chaos campaigns are exactly reproducible.
//!
//! [`SharedClock`]: rangeamp_net::SharedClock

use parking_lot::Mutex;
use rangeamp_net::SharedClock;

/// Retry budget for back-to-origin fetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first included (`1` ⇒ never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, in virtual milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 200,
            max_backoff_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
        }
    }

    /// Convenience constructor.
    pub fn new(max_attempts: u32, base_backoff_ms: u64, max_backoff_ms: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff_ms,
            max_backoff_ms,
        }
    }

    /// Backoff before retry number `retry_index` (0-based): capped
    /// exponential, `base × 2^index`, never above `max_backoff_ms`.
    pub fn backoff_ms(&self, retry_index: u32) -> u64 {
        let doubled = self
            .base_backoff_ms
            .saturating_mul(1u64 << retry_index.min(32));
        doubled.min(self.max_backoff_ms)
    }
}

/// Sizing of the circuit breaker's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive upstream failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open, in virtual milliseconds.
    pub open_ms: u64,
    /// Probe requests allowed through once the open window elapses.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            open_ms: 30_000,
            half_open_probes: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { until_ms: u64 },
    HalfOpen { probes_left: u32 },
}

/// A closed → open → half-open circuit breaker on virtual time.
///
/// While open, the edge refuses to contact the upstream at all — the
/// request either fails fast (502) or is served stale from an expired
/// cache entry. After [`BreakerConfig::open_ms`] the breaker lets
/// [`BreakerConfig::half_open_probes`] requests through: one success
/// recloses it, one failure reopens it for another window.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given sizing.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
            opens: 0,
        }
    }

    /// Whether a request may go upstream at `now_ms`. Consumes a probe
    /// slot when half-open.
    pub fn allow_request(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until_ms } => {
                if now_ms < until_ms {
                    return false;
                }
                // Open window elapsed: move to half-open and admit this
                // request as the first probe.
                let probes = self.config.half_open_probes.max(1);
                self.state = BreakerState::HalfOpen {
                    probes_left: probes - 1,
                };
                true
            }
            BreakerState::HalfOpen { probes_left } => {
                if probes_left == 0 {
                    return false;
                }
                self.state = BreakerState::HalfOpen {
                    probes_left: probes_left - 1,
                };
                true
            }
        }
    }

    /// Records a successful upstream exchange.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed {
            consecutive_failures: 0,
        };
    }

    /// Records a failed upstream exchange, possibly tripping the breaker.
    pub fn record_failure(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open {
                        until_ms: now_ms + self.config.open_ms,
                    };
                    self.opens += 1;
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_failures: failures,
                    };
                }
            }
            BreakerState::HalfOpen { .. } => {
                self.state = BreakerState::Open {
                    until_ms: now_ms + self.config.open_ms,
                };
                self.opens += 1;
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// How many times the breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// The state's name (`"closed"`, `"open"`, `"half-open"`), for tests
    /// and reports.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half-open",
        }
    }

    /// The sizing in force.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }
}

/// Counters the resilience layer accumulates per edge node.
///
/// `retry_*_bytes` meter only the surplus traffic of attempts after the
/// first — the quantity that inflates the paper's amplification factors
/// when the origin is flaky.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Upstream fetch attempts, first tries included.
    pub attempts: u64,
    /// Attempts beyond the first (the retries themselves).
    pub retries: u64,
    /// Request bytes spent on retry attempts.
    pub retry_request_bytes: u64,
    /// Response bytes received on retry attempts.
    pub retry_response_bytes: u64,
    /// Attempts that ended in failure (error or upstream 5xx).
    pub upstream_failures: u64,
    /// Fetches refused outright because the breaker was open.
    pub breaker_short_circuits: u64,
    /// Responses served stale from an expired cache entry.
    pub stale_serves: u64,
}

/// One edge node's resilience machinery: retry policy, circuit breaker,
/// the virtual clock that paces both, and the accumulated counters.
#[derive(Debug)]
pub struct Resilience {
    retry: RetryPolicy,
    breaker: Mutex<CircuitBreaker>,
    clock: SharedClock,
    stats: Mutex<ResilienceStats>,
}

impl Resilience {
    /// Builds the machinery around a shared virtual clock.
    pub fn new(retry: RetryPolicy, breaker: BreakerConfig, clock: SharedClock) -> Resilience {
        Resilience {
            retry,
            breaker: Mutex::new(CircuitBreaker::new(breaker)),
            clock,
            stats: Mutex::new(ResilienceStats::default()),
        }
    }

    /// The retry policy in force.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// The virtual clock backoffs advance.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> ResilienceStats {
        *self.stats.lock()
    }

    /// The breaker state's name, for tests and reports.
    pub fn breaker_state(&self) -> &'static str {
        self.breaker.lock().state_name()
    }

    /// How many times the breaker has tripped open.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker.lock().opens()
    }

    pub(crate) fn allow_request(&self) -> bool {
        self.breaker.lock().allow_request(self.clock.now_millis())
    }

    pub(crate) fn record_success(&self) {
        self.breaker.lock().record_success();
    }

    pub(crate) fn record_failure(&self) {
        self.breaker.lock().record_failure(self.clock.now_millis());
    }

    pub(crate) fn with_stats(&self, f: impl FnOnce(&mut ResilienceStats)) {
        f(&mut self.stats.lock());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy::new(4, 100, 350);
        assert_eq!(policy.backoff_ms(0), 100);
        assert_eq!(policy.backoff_ms(1), 200);
        assert_eq!(policy.backoff_ms(2), 350, "capped");
        assert_eq!(policy.backoff_ms(40), 350, "no shift overflow");
    }

    #[test]
    fn no_retry_policy_has_one_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::new(0, 1, 1).max_attempts, 1, "clamped up");
    }

    #[test]
    fn breaker_trips_after_threshold_failures() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_ms: 1_000,
            half_open_probes: 1,
        });
        for _ in 0..2 {
            breaker.record_failure(0);
            assert_eq!(breaker.state_name(), "closed");
        }
        breaker.record_failure(0);
        assert_eq!(breaker.state_name(), "open");
        assert_eq!(breaker.opens(), 1);
        assert!(!breaker.allow_request(999));
    }

    #[test]
    fn breaker_half_opens_then_recloses_on_success() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_ms: 1_000,
            half_open_probes: 1,
        });
        breaker.record_failure(0);
        assert!(
            breaker.allow_request(1_000),
            "window elapsed: probe allowed"
        );
        assert_eq!(breaker.state_name(), "half-open");
        assert!(!breaker.allow_request(1_000), "only one probe");
        breaker.record_success();
        assert_eq!(breaker.state_name(), "closed");
        assert!(breaker.allow_request(1_000));
    }

    #[test]
    fn failed_probe_reopens_for_another_window() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_ms: 1_000,
            half_open_probes: 1,
        });
        breaker.record_failure(0);
        assert!(breaker.allow_request(1_000));
        breaker.record_failure(1_000);
        assert_eq!(breaker.state_name(), "open");
        assert_eq!(breaker.opens(), 2);
        assert!(!breaker.allow_request(1_999));
        assert!(breaker.allow_request(2_000));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            open_ms: 1_000,
            half_open_probes: 1,
        });
        breaker.record_failure(0);
        breaker.record_success();
        breaker.record_failure(0);
        assert_eq!(breaker.state_name(), "closed", "streak was broken");
    }

    #[test]
    fn resilience_snapshot_is_independent() {
        let res = Resilience::new(
            RetryPolicy::default(),
            BreakerConfig::default(),
            SharedClock::new(),
        );
        res.with_stats(|s| s.retries += 3);
        let snap = res.stats();
        assert_eq!(snap.retries, 3);
        res.with_stats(|s| s.retries += 1);
        assert_eq!(snap.retries, 3, "snapshot unaffected");
        assert_eq!(res.stats().retries, 4);
    }
}
