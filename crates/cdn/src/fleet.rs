//! A fleet of edge nodes of one vendor — the CDN's geographically
//! distributed ingress layer.
//!
//! The paper leans on ingress-node multiplicity twice:
//!
//! * §IV-C — the OBR attacker "can send all multi-range requests to the
//!   *same* ingress node of the FCDN ... to perform the OBR attack
//!   against these specific nodes" ([`IngressStrategy::Pinned`]);
//! * §V-D / §V-E — the SBR attacker spreads requests over "completely
//!   different ingress nodes", whose worldwide distribution forms "a
//!   natural distributed 'botnet'" that per-peer origin defenses cannot
//!   filter ([`IngressStrategy::RoundRobin`]).
//!
//! Each node has its own cache, so spreading requests across `k` nodes
//! multiplies back-to-origin traffic for the *same* URL by up to `k`
//! even before query-string cache busting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rangeamp_http::{Request, Response};
use rangeamp_net::{Segment, SegmentName, SegmentStats};

use crate::{EdgeNode, UpstreamService, VendorProfile};

/// How the attacker (or the CDN's request routing) picks an ingress node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressStrategy {
    /// Rotate across all nodes (the §V-D spreading pattern).
    RoundRobin,
    /// Always the same node (the §IV-C OBR targeting pattern).
    Pinned(usize),
    /// Stable hash of path+query (normal CDN anycast-ish affinity).
    HashByUri,
}

/// A same-vendor edge fleet sharing one upstream.
///
/// # Example
///
/// ```
/// use rangeamp_cdn::{CdnFleet, IngressStrategy, Vendor};
/// use rangeamp_origin::{OriginServer, ResourceStore};
/// use rangeamp_http::Request;
/// use std::sync::Arc;
///
/// let mut store = ResourceStore::new();
/// store.add_synthetic("/f.bin", 1 << 20, "application/octet-stream");
/// let origin = Arc::new(OriginServer::new(store));
/// let fleet = CdnFleet::new(Vendor::Akamai.profile(), 4, origin, IngressStrategy::RoundRobin);
///
/// // The same URL through different cold ingress nodes misses each time.
/// let req = Request::get("/f.bin").header("Host", "victim").header("Range", "bytes=0-0").build();
/// for _ in 0..4 {
///     fleet.handle(&req);
/// }
/// assert_eq!(fleet.total_origin_stats().requests, 4);
/// ```
#[derive(Debug)]
pub struct CdnFleet {
    nodes: Vec<EdgeNode>,
    strategy: IngressStrategy,
    round_robin: AtomicUsize,
}

impl CdnFleet {
    /// Builds `node_count` edges with the given profile over a shared
    /// upstream.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn new(
        profile: VendorProfile,
        node_count: usize,
        upstream: Arc<dyn UpstreamService>,
        strategy: IngressStrategy,
    ) -> CdnFleet {
        assert!(node_count > 0, "a fleet needs at least one node");
        let nodes = (0..node_count)
            .map(|_| {
                EdgeNode::new(
                    profile.clone(),
                    upstream.clone(),
                    Segment::new(SegmentName::CdnOrigin),
                )
            })
            .collect();
        CdnFleet {
            nodes,
            strategy,
            round_robin: AtomicUsize::new(0),
        }
    }

    /// Number of ingress nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node a request would be routed to.
    pub fn route(&self, req: &Request) -> usize {
        match self.strategy {
            IngressStrategy::RoundRobin => {
                self.round_robin.fetch_add(1, Ordering::Relaxed) % self.nodes.len()
            }
            IngressStrategy::Pinned(index) => index % self.nodes.len(),
            IngressStrategy::HashByUri => {
                let uri = req.uri().to_string();
                let mut hash = 0xcbf2_9ce4_8422_2325u64;
                for b in uri.bytes() {
                    hash ^= b as u64;
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
                (hash % self.nodes.len() as u64) as usize
            }
        }
    }

    /// Routes and handles one request, returning the chosen node index
    /// and the response.
    pub fn handle(&self, req: &Request) -> (usize, Response) {
        let index = self.route(req);
        (index, self.nodes[index].handle(req))
    }

    /// A specific node (for per-node inspection).
    pub fn node(&self, index: usize) -> &EdgeNode {
        &self.nodes[index]
    }

    /// Per-node back-to-origin statistics.
    pub fn per_node_stats(&self) -> Vec<SegmentStats> {
        self.nodes
            .iter()
            .map(|n| n.origin_segment().stats())
            .collect()
    }

    /// Aggregate back-to-origin statistics across the fleet.
    pub fn total_origin_stats(&self) -> SegmentStats {
        let mut total = SegmentStats::default();
        for stats in self.per_node_stats() {
            total.requests += stats.requests;
            total.request_bytes += stats.request_bytes;
            total.responses += stats.responses;
            total.response_bytes += stats.response_bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vendor;
    use rangeamp_origin::{OriginServer, ResourceStore};

    fn fleet(vendor: Vendor, nodes: usize, strategy: IngressStrategy) -> CdnFleet {
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 1 << 20, "application/octet-stream");
        let origin = Arc::new(OriginServer::new(store));
        CdnFleet::new(vendor.profile(), nodes, origin, strategy)
    }

    fn attack_request(rnd: Option<u32>) -> Request {
        let uri = match rnd {
            Some(r) => format!("/f.bin?rnd={r}"),
            None => "/f.bin".to_string(),
        };
        Request::get(&uri)
            .header("Host", "victim.example")
            .header("Range", "bytes=0-0")
            .build()
    }

    #[test]
    fn round_robin_spreads_across_all_nodes() {
        let fleet = fleet(Vendor::Akamai, 4, IngressStrategy::RoundRobin);
        for i in 0..8 {
            fleet.handle(&attack_request(Some(i)));
        }
        for (index, stats) in fleet.per_node_stats().iter().enumerate() {
            assert_eq!(stats.requests, 2, "node {index}");
        }
    }

    #[test]
    fn pinned_strategy_targets_one_node() {
        let fleet = fleet(Vendor::Akamai, 4, IngressStrategy::Pinned(2));
        for i in 0..4 {
            fleet.handle(&attack_request(Some(i)));
        }
        let stats = fleet.per_node_stats();
        assert_eq!(stats[2].requests, 4);
        assert_eq!(stats[0].requests + stats[1].requests + stats[3].requests, 0);
    }

    #[test]
    fn hash_routing_is_stable_per_uri() {
        let fleet = fleet(Vendor::Akamai, 5, IngressStrategy::HashByUri);
        let req = attack_request(Some(7));
        let first = fleet.route(&req);
        for _ in 0..10 {
            assert_eq!(fleet.route(&req), first);
        }
    }

    #[test]
    fn cold_caches_multiply_origin_traffic_without_busting() {
        // The same URL through k ingress nodes misses k times — the
        // "natural distributed botnet" effect.
        let k = 4;
        let fleet = fleet(Vendor::Akamai, k, IngressStrategy::RoundRobin);
        for _ in 0..k {
            fleet.handle(&attack_request(None));
        }
        let total = fleet.total_origin_stats();
        assert_eq!(total.requests, k as u64, "every node fetched once");
        assert!(total.response_bytes > (k as u64) * (1 << 20));
        // A second lap is fully cached.
        for _ in 0..k {
            fleet.handle(&attack_request(None));
        }
        assert_eq!(fleet.total_origin_stats().requests, k as u64);
    }

    #[test]
    #[should_panic]
    fn empty_fleet_is_rejected() {
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 1024, "x/y");
        let origin = Arc::new(OriginServer::new(store));
        CdnFleet::new(
            Vendor::Akamai.profile(),
            0,
            origin,
            IngressStrategy::RoundRobin,
        );
    }
}
