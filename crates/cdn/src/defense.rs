//! Pluggable online-defense hook for the edge pipeline (DESIGN.md §12).
//!
//! The RangeAmp mitigations of §VI-C are *static* policy switches: a
//! vendor either caps expansion for everyone or for no one. A production
//! edge instead watches traffic and reacts per client. This module
//! defines the contract between the forwarding pipeline and such an
//! online defense: [`EdgeNode`] consults a [`DefenseHook`] before the
//! mitigation pre-checks and reports byte-level outcomes back after the
//! response is assembled. The reference implementation lives in the
//! `rangeamp-defense` crate; the edge only knows this trait.
//!
//! The graduated actions form the **enforcement ladder**:
//!
//! 1. [`Allow`](DefenseAction::Allow) — the vendor profile's own
//!    mitigation config applies unchanged.
//! 2. [`Deflate`](DefenseAction::Deflate) — the request is handled under
//!    the profile's config *hardened* with `force_laziness` +
//!    `coalesce_multi`: ranges are forwarded verbatim (no deletion or
//!    expansion) and overlapping multi-ranges are merged first, so the
//!    origin ships at most the bytes the client asked for, once.
//! 3. [`Throttle`](DefenseAction::Throttle) — same transforms as
//!    Deflate; in addition the hook's token bucket on origin-fetched
//!    bytes is charging for this client, and an empty bucket resolves to
//!    [`Block`](DefenseAction::Block) at decide time.
//! 4. [`Block`](DefenseAction::Block) — the edge answers `429 Too Many
//!    Requests` without touching cache or origin.
//!
//! [`EdgeNode`]: crate::EdgeNode

use std::fmt;

use rangeamp_http::Request;

use crate::MitigationConfig;

/// The request header carrying the client identity the defense keys on.
///
/// The emulated testbed has no TCP peer addresses, so workload and
/// attack generators stamp each request with this header instead; edges
/// forward it unchanged through cascades (headers are cloned onto the
/// upstream request), which is how a BCDN-side defense still sees the
/// originating client of an OBR chain.
pub const CLIENT_ID_HEADER: &str = "X-Client-Id";

/// Extracts the defense client key from a request: the
/// [`CLIENT_ID_HEADER`] value, or `"-"` for unattributed traffic.
pub fn client_key(req: &Request) -> &str {
    req.headers().get(CLIENT_ID_HEADER).unwrap_or("-")
}

/// One rung of the enforcement ladder, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DefenseAction {
    /// Forward under the profile's own mitigation config.
    Allow,
    /// Harden the profile config with laziness + coalescing transforms.
    Deflate,
    /// Deflate transforms plus token-bucket accounting on origin bytes.
    Throttle,
    /// Reject with `429` before cache or origin are touched.
    Block,
}

impl DefenseAction {
    /// Stable lowercase label (metrics, verdict fixtures, JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            DefenseAction::Allow => "allow",
            DefenseAction::Deflate => "deflate",
            DefenseAction::Throttle => "throttle",
            DefenseAction::Block => "block",
        }
    }

    /// The mitigation config the pipeline should run under for this
    /// action, given the vendor profile's own `base` config.
    ///
    /// Deflate/Throttle *add* `force_laziness` and `coalesce_multi` on
    /// top of whatever the profile already mandates; they never remove a
    /// static mitigation. Laziness (not capped expansion) is the
    /// actuator because a +8 KB expansion would *grow* origin traffic
    /// for a tiny-range client — the defended run must never amplify
    /// more than the undefended one.
    pub fn effective_mitigation(&self, base: MitigationConfig) -> MitigationConfig {
        match self {
            DefenseAction::Allow => base,
            DefenseAction::Deflate | DefenseAction::Throttle | DefenseAction::Block => {
                MitigationConfig {
                    force_laziness: true,
                    coalesce_multi: true,
                    ..base
                }
            }
        }
    }

    /// Whether the action alters the pipeline at all.
    pub fn is_enforcing(&self) -> bool {
        !matches!(self, DefenseAction::Allow)
    }
}

impl fmt::Display for DefenseAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Byte-level outcome of one handled request, reported to the hook
/// after response assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestOutcome {
    /// Response bytes fetched from upstream *for this request* (delta on
    /// the edge's origin-side segment meter). Zero on cache hits and
    /// blocks.
    pub origin_bytes: u64,
    /// Wire bytes of the client-facing response.
    pub client_bytes: u64,
    /// Client-facing status code.
    pub status: u16,
}

/// The pluggable online defense consulted by [`EdgeNode`].
///
/// Determinism contract: implementations must be pure functions of the
/// observed request stream and virtual timestamps — no wall-clock, no
/// ambient randomness — so campaigns stay byte-identical at any thread
/// count (each campaign unit owns its own hook instance).
///
/// [`EdgeNode`]: crate::EdgeNode
pub trait DefenseHook: fmt::Debug + Send + Sync {
    /// Picks the enforcement action for `client`'s request at virtual
    /// time `now_ms`, *before* cache lookup or upstream fetch.
    fn decide(&self, client: &str, req: &Request, now_ms: u64) -> DefenseAction;

    /// Feeds the byte-level outcome of the request back into the
    /// detector state. Called exactly once per `decide`, including for
    /// blocked requests (with `origin_bytes == 0`).
    fn observe(
        &self,
        client: &str,
        req: &Request,
        action: DefenseAction,
        outcome: &RequestOutcome,
        now_ms: u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_key_reads_header_case_insensitively() {
        let req = Request::get("/f.bin")
            .header("Host", "victim")
            .header("X-Client-Id", "attacker-1")
            .build();
        assert_eq!(client_key(&req), "attacker-1");
        let bare = Request::get("/f.bin").header("Host", "victim").build();
        assert_eq!(client_key(&bare), "-");
    }

    #[test]
    fn ladder_is_ordered_by_severity() {
        assert!(DefenseAction::Allow < DefenseAction::Deflate);
        assert!(DefenseAction::Deflate < DefenseAction::Throttle);
        assert!(DefenseAction::Throttle < DefenseAction::Block);
    }

    #[test]
    fn enforcing_actions_harden_but_never_relax_mitigation() {
        let base = MitigationConfig {
            reject_overlapping: true,
            ..MitigationConfig::none()
        };
        let hardened = DefenseAction::Deflate.effective_mitigation(base);
        assert!(hardened.force_laziness && hardened.coalesce_multi);
        assert!(hardened.reject_overlapping, "static mitigation preserved");
        assert_eq!(DefenseAction::Allow.effective_mitigation(base), base);
    }
}
