//! Request-header size limits and the OBR max-n solver (paper §V-C).
//!
//! The OBR amplification factor is proportional to the number of
//! overlapping ranges `n`, and `n` is bounded by the request-header limits
//! of both cascaded CDNs: "the maximum length of the Range header finally
//! determines the upperbound of the amplification factor" (§IV-C). The
//! paper measured:
//!
//! * Akamai: ≤ 32 KB total request header block,
//! * StackPath: ≈ 81 KB total,
//! * CDN77 / CDNsun: ≤ 16 KB for a single header,
//! * Cloudflare: `RL + 2·HHL + RHL ≤ 32411` (request line, Host line,
//!   Range line),
//! * Azure: at most 64 ranges in a `Range` header.

use rangeamp_http::range::{ByteRangeSpec, RangeHeader};
use rangeamp_http::Request;

/// A CDN's request-header size limits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeaderLimits {
    /// Maximum total size of the request header block in bytes.
    pub total_header_bytes: Option<u64>,
    /// Maximum size of any single header line (name + `": "` + value +
    /// CRLF) in bytes.
    pub single_header_bytes: Option<u64>,
    /// Cloudflare's measured budget: request line + 2 × Host line +
    /// Range line must not exceed this many bytes.
    pub cloudflare_budget: Option<u64>,
    /// Maximum number of ranges in a `Range` header (Azure: 64).
    pub max_ranges: Option<usize>,
}

impl HeaderLimits {
    /// No limits (for synthetic baselines).
    pub fn unlimited() -> HeaderLimits {
        HeaderLimits::default()
    }

    /// Whether `req` passes these limits.
    pub fn admits(&self, req: &Request) -> bool {
        if let Some(max) = self.total_header_bytes {
            if req.headers().wire_len() > max {
                return false;
            }
        }
        if let Some(max) = self.single_header_bytes {
            for (name, value) in req.headers().iter() {
                let line = name.as_str().len() as u64 + 2 + value.len() as u64 + 2;
                if line > max {
                    return false;
                }
            }
        }
        if let Some(budget) = self.cloudflare_budget {
            let request_line = req.request_line_len();
            let host_line = header_line_len(req, "host");
            let range_line = header_line_len(req, "range");
            if request_line + 2 * host_line + range_line > budget {
                return false;
            }
        }
        if let Some(max) = self.max_ranges {
            if let Some(value) = req.headers().get("range") {
                if let Ok(header) = RangeHeader::parse(value) {
                    if header.specs().len() > max {
                        return false;
                    }
                }
            }
        }
        true
    }
}

fn header_line_len(req: &Request, name: &str) -> u64 {
    req.headers()
        .get(name)
        .map(|v| name.len() as u64 + 2 + v.len() as u64 + 2)
        .unwrap_or(0)
}

/// The exploited multi-range shapes of Table V, column 3.
///
/// Which shape works against a given FCDN follows from Table II: CDN77
/// requires a leading suffix range, CDNsun requires the first range to
/// start at ≥ 1, Cloudflare and StackPath accept all-zero open ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObrRangeCase {
    /// `bytes=0-,0-,...,0-` (Cloudflare, StackPath as FCDN).
    AllZeroOpen,
    /// `bytes=-1024,0-,...,0-` (CDN77 as FCDN).
    SuffixThenZero,
    /// `bytes=1-,0-,...,0-` (CDNsun as FCDN).
    OneThenZero,
}

impl ObrRangeCase {
    /// Builds the exploited header with `n` total ranges.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (or `n < 2` for the mixed shapes, which need a
    /// leading element plus at least one `0-`).
    pub fn header(&self, n: usize) -> RangeHeader {
        assert!(n > 0, "need at least one range");
        let specs = match self {
            ObrRangeCase::AllZeroOpen => vec![ByteRangeSpec::From { first: 0 }; n],
            ObrRangeCase::SuffixThenZero => {
                assert!(n >= 2, "shape needs a leading element");
                let mut specs = vec![ByteRangeSpec::Suffix { len: 1024 }];
                specs.extend(vec![ByteRangeSpec::From { first: 0 }; n - 1]);
                specs
            }
            ObrRangeCase::OneThenZero => {
                assert!(n >= 2, "shape needs a leading element");
                let mut specs = vec![ByteRangeSpec::From { first: 1 }];
                specs.extend(vec![ByteRangeSpec::From { first: 0 }; n - 1]);
                specs
            }
        };
        RangeHeader::new(specs).expect("exploited shapes are valid")
    }

    /// Human-readable form used in reports (Table V column 3).
    pub fn describe(&self) -> &'static str {
        match self {
            ObrRangeCase::AllZeroOpen => "bytes=0-,0-,...,0-",
            ObrRangeCase::SuffixThenZero => "bytes=-1024,0-,...,0-",
            ObrRangeCase::OneThenZero => "bytes=1-,0-,...,0-",
        }
    }
}

/// Finds the largest `n` for which the exploited request passes both the
/// FCDN's and the BCDN's limits — the "max n" column of Table V.
///
/// `path` and `host` are the attack request's target and Host header
/// (their lengths participate in Cloudflare's budget).
/// `forwarded_extra_headers` are the headers the FCDN adds on the
/// forwarded hop (at least its `Via` line), which consume part of the
/// BCDN's budget.
pub fn max_overlapping_ranges_with_hop(
    case: ObrRangeCase,
    path: &str,
    host: &str,
    fcdn: &HeaderLimits,
    bcdn: &HeaderLimits,
    forwarded_extra_headers: &[(&str, &str)],
) -> usize {
    let admits = |n: usize| -> bool {
        let req = Request::get(path)
            .header("Host", host)
            .header("Range", case.header(n).to_string())
            .build();
        if !fcdn.admits(&req) {
            return false;
        }
        let mut forwarded = req.clone();
        for (name, value) in forwarded_extra_headers {
            forwarded.headers_mut().append(name, value.to_string());
        }
        bcdn.admits(&forwarded)
    };
    if !admits(2) {
        return 0;
    }
    // Exponential probe, then binary search the boundary.
    let mut lo = 2usize;
    let mut hi = 4usize;
    while admits(hi) {
        lo = hi;
        hi *= 2;
        if hi > 1 << 22 {
            break; // unlimited profiles: cap the search
        }
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if admits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// [`max_overlapping_ranges_with_hop`] without forwarded-hop headers.
pub fn max_overlapping_ranges(
    case: ObrRangeCase,
    path: &str,
    host: &str,
    fcdn: &HeaderLimits,
    bcdn: &HeaderLimits,
) -> usize {
    max_overlapping_ranges_with_hop(case, path, host, fcdn, bcdn, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_with_range(range: &str) -> Request {
        Request::get("/1KB.bin")
            .header("Host", "victim.example")
            .header("Range", range)
            .build()
    }

    #[test]
    fn unlimited_admits_everything() {
        let limits = HeaderLimits::unlimited();
        let huge = ObrRangeCase::AllZeroOpen.header(100_000).to_string();
        assert!(limits.admits(&req_with_range(&huge)));
    }

    #[test]
    fn total_limit_rejects_oversized_blocks() {
        let limits = HeaderLimits {
            total_header_bytes: Some(200),
            ..HeaderLimits::default()
        };
        assert!(limits.admits(&req_with_range("bytes=0-0")));
        let big = ObrRangeCase::AllZeroOpen.header(100).to_string();
        assert!(!limits.admits(&req_with_range(&big)));
    }

    #[test]
    fn single_header_limit_meters_each_line() {
        let limits = HeaderLimits {
            single_header_bytes: Some(64),
            ..HeaderLimits::default()
        };
        assert!(limits.admits(&req_with_range("bytes=0-0")));
        let big = ObrRangeCase::AllZeroOpen.header(32).to_string();
        assert!(!limits.admits(&req_with_range(&big)));
    }

    #[test]
    fn max_ranges_counts_specs() {
        let limits = HeaderLimits {
            max_ranges: Some(64),
            ..HeaderLimits::default()
        };
        assert!(limits.admits(&req_with_range(
            &ObrRangeCase::AllZeroOpen.header(64).to_string()
        )));
        assert!(!limits.admits(&req_with_range(
            &ObrRangeCase::AllZeroOpen.header(65).to_string()
        )));
    }

    #[test]
    fn cloudflare_budget_formula() {
        let limits = HeaderLimits {
            cloudflare_budget: Some(32_411),
            ..HeaderLimits::default()
        };
        // RL("GET /1KB.bin HTTP/1.1\r\n")=23, HHL("Host: victim.example\r\n")=22.
        // Range line = 7 + (3n+5) + 2 = 3n+14.
        // 23 + 44 + 3n + 14 <= 32411  →  n <= 10776.
        let ok = ObrRangeCase::AllZeroOpen.header(10_776).to_string();
        let too_big = ObrRangeCase::AllZeroOpen.header(10_777).to_string();
        assert!(limits.admits(&req_with_range(&ok)));
        assert!(!limits.admits(&req_with_range(&too_big)));
    }

    #[test]
    fn case_shapes_render_like_table_v() {
        assert_eq!(
            ObrRangeCase::AllZeroOpen.header(3).to_string(),
            "bytes=0-,0-,0-"
        );
        assert_eq!(
            ObrRangeCase::SuffixThenZero.header(3).to_string(),
            "bytes=-1024,0-,0-"
        );
        assert_eq!(
            ObrRangeCase::OneThenZero.header(3).to_string(),
            "bytes=1-,0-,0-"
        );
    }

    #[test]
    fn solver_matches_manual_boundaries() {
        // CDN77-as-FCDN (16 KB single header) against an unlimited BCDN,
        // suffix-then-zero shape: line = 7 + (3n+8) + 2 = 3n+17 <= 16384
        // → n = 5455, the paper's Table V value.
        let cdn77 = HeaderLimits {
            single_header_bytes: Some(16 * 1024),
            ..HeaderLimits::default()
        };
        let n = max_overlapping_ranges(
            ObrRangeCase::SuffixThenZero,
            "/1KB.bin",
            "victim.example",
            &cdn77,
            &HeaderLimits::unlimited(),
        );
        assert_eq!(n, 5455);
    }

    #[test]
    fn solver_respects_the_tighter_side() {
        let azure = HeaderLimits {
            max_ranges: Some(64),
            ..HeaderLimits::default()
        };
        let loose = HeaderLimits {
            total_header_bytes: Some(1 << 20),
            ..HeaderLimits::default()
        };
        let n = max_overlapping_ranges(
            ObrRangeCase::AllZeroOpen,
            "/1KB.bin",
            "victim.example",
            &loose,
            &azure,
        );
        assert_eq!(n, 64);
    }

    #[test]
    fn solver_returns_zero_when_nothing_fits() {
        let tiny = HeaderLimits {
            total_header_bytes: Some(8),
            ..HeaderLimits::default()
        };
        let n = max_overlapping_ranges(
            ObrRangeCase::AllZeroOpen,
            "/1KB.bin",
            "victim.example",
            &tiny,
            &HeaderLimits::unlimited(),
        );
        assert_eq!(n, 0);
    }
}
