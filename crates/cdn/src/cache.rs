//! The edge cache.
//!
//! Cache keys include the full path *and query string* — that is why an
//! attacker can force a cache miss on every request by appending a random
//! query parameter (paper §II-A), which both RangeAmp attacks rely on.
//! Only complete 200 representations are stored (partial-response caching
//! is exactly what vendors told the authors they don't want to do, §VII-A).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use rangeamp_http::Response;

/// A cached full representation.
#[derive(Debug, Clone)]
pub struct CachedEntry {
    /// The stored 200 response (complete body).
    pub response: Response,
    /// Virtual instant (ms) the entry was stored, for TTL freshness.
    pub stored_at_ms: u64,
}

#[derive(Debug)]
struct CacheInner {
    entries: HashMap<String, CachedEntry>,
    /// Keys in least-recently-used-first order.
    lru: Vec<String>,
    max_entries: usize,
    /// Freshness lifetime in virtual ms; `None` = entries never expire.
    ttl_ms: Option<u64>,
    evictions: u64,
    // KeyCDN's observed two-step behaviour needs per-key request history.
    seen: HashSet<String>,
    hits: u64,
    misses: u64,
}

impl Default for CacheInner {
    fn default() -> CacheInner {
        CacheInner {
            entries: HashMap::new(),
            lru: Vec::new(),
            max_entries: Cache::DEFAULT_MAX_ENTRIES,
            ttl_ms: None,
            evictions: 0,
            seen: HashSet::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl CacheInner {
    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.lru.iter().position(|k| k == key) {
            let key = self.lru.remove(pos);
            self.lru.push(key);
        }
    }

    fn evict_to_capacity(&mut self) {
        while self.entries.len() > self.max_entries && !self.lru.is_empty() {
            let victim = self.lru.remove(0);
            self.entries.remove(&victim);
            self.evictions += 1;
        }
    }
}

/// Shared-state edge cache (clones share storage, like processes on one
/// edge node). Bounded: beyond [`Cache::DEFAULT_MAX_ENTRIES`] (or the
/// limit given to [`Cache::with_capacity`]) the least recently used
/// entry is evicted — which is how an SBR attacker's cache-busted
/// requests also *pollute* the edge cache as a side effect.
///
/// # Example
///
/// ```
/// use rangeamp_cdn::Cache;
///
/// let cache = Cache::with_capacity(2);
/// // Every cache-busted URL is a distinct key:
/// assert_ne!(Cache::key("victim", "/f.bin?rnd=1"), Cache::key("victim", "/f.bin?rnd=2"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cache {
    inner: Arc<Mutex<CacheInner>>,
}

impl Cache {
    /// Default entry limit per edge cache.
    pub const DEFAULT_MAX_ENTRIES: usize = 4096;

    /// Creates an empty cache with the default capacity.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Creates an empty cache holding at most `max_entries`.
    pub fn with_capacity(max_entries: usize) -> Cache {
        let cache = Cache::default();
        cache.inner.lock().max_entries = max_entries.max(1);
        cache
    }

    /// Gives entries a freshness lifetime of `ttl_ms` virtual
    /// milliseconds. Expired entries stop counting as hits but stay
    /// stored, so the resilience layer can serve them *stale* (with
    /// `Warning: 110`) while the upstream is failing.
    pub fn with_ttl(self, ttl_ms: u64) -> Cache {
        self.inner.lock().ttl_ms = Some(ttl_ms);
        self
    }

    /// Builds the cache key for a host + request target pair.
    pub fn key(host: &str, uri: &str) -> String {
        format!("{host}|{uri}")
    }

    /// Looks up a full representation at virtual instant zero (for
    /// callers that don't track time; equivalent to [`Cache::get_at`]
    /// with `now_ms = 0`).
    pub fn get(&self, key: &str) -> Option<CachedEntry> {
        self.get_at(key, 0)
    }

    /// Looks up a *fresh* representation at `now_ms`, counting hit/miss
    /// statistics and refreshing recency. An expired entry counts as a
    /// miss but is retained for [`Cache::get_stale`].
    pub fn get_at(&self, key: &str, now_ms: u64) -> Option<CachedEntry> {
        let mut inner = self.inner.lock();
        let fresh = inner.entries.get(key).cloned().filter(|entry| {
            inner
                .ttl_ms
                .is_none_or(|ttl| now_ms < entry.stored_at_ms.saturating_add(ttl))
        });
        match fresh {
            Some(entry) => {
                inner.hits += 1;
                inner.touch(key);
                Some(entry)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Looks up a representation regardless of freshness — the
    /// serve-stale fallback when the upstream is failing. Does not touch
    /// hit/miss statistics or recency.
    pub fn get_stale(&self, key: &str) -> Option<CachedEntry> {
        self.inner.lock().entries.get(key).cloned()
    }

    /// Stores a full representation at virtual instant zero (see
    /// [`Cache::put_at`]).
    pub fn put(&self, key: &str, response: Response) {
        self.put_at(key, response, 0);
    }

    /// Stores a full representation stamped at `now_ms`, evicting the
    /// least recently used entries beyond capacity.
    pub fn put_at(&self, key: &str, response: Response, now_ms: u64) {
        let mut inner = self.inner.lock();
        let entry = CachedEntry {
            response,
            stored_at_ms: now_ms,
        };
        if inner.entries.insert(key.to_string(), entry).is_none() {
            inner.lru.push(key.to_string());
        } else {
            inner.touch(key);
        }
        inner.evict_to_capacity();
    }

    /// Number of entries evicted so far (the cache-pollution signal).
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Marks that `key` has been requested before (KeyCDN's first-pass
    /// marker), returning whether it had already been marked.
    pub fn mark_seen(&self, key: &str) -> bool {
        !self.inner.lock().seen.insert(key.to_string())
    }

    /// Whether `key` was requested before.
    pub fn was_seen(&self, key: &str) -> bool {
        self.inner.lock().seen.contains(key)
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Number of stored representations.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Drops all entries and statistics.
    pub fn clear(&self) {
        *self.inner.lock() = CacheInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rangeamp_http::StatusCode;

    fn response_of(len: usize) -> Response {
        Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; len])
            .build()
    }

    #[test]
    fn put_then_get() {
        let cache = Cache::new();
        let key = Cache::key("victim", "/f.bin");
        assert!(cache.get(&key).is_none());
        cache.put(&key, response_of(10));
        assert_eq!(cache.get(&key).unwrap().response.body().len(), 10);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn query_string_changes_the_key() {
        // The cache-busting property the attacks rely on.
        let cache = Cache::new();
        cache.put(&Cache::key("victim", "/f.bin"), response_of(10));
        assert!(cache.get(&Cache::key("victim", "/f.bin?rnd=1")).is_none());
        assert!(cache.get(&Cache::key("victim", "/f.bin?rnd=2")).is_none());
    }

    #[test]
    fn host_changes_the_key() {
        let cache = Cache::new();
        cache.put(&Cache::key("a", "/f"), response_of(1));
        assert!(cache.get(&Cache::key("b", "/f")).is_none());
    }

    #[test]
    fn seen_marker_flips_on_second_visit() {
        let cache = Cache::new();
        let key = Cache::key("victim", "/f.bin?x=1");
        assert!(!cache.mark_seen(&key));
        assert!(cache.was_seen(&key));
        assert!(cache.mark_seen(&key));
    }

    #[test]
    fn clones_share_state() {
        let a = Cache::new();
        let b = a.clone();
        a.put("k", response_of(1));
        assert!(b.get("k").is_some());
    }

    #[test]
    fn lru_eviction_beyond_capacity() {
        let cache = Cache::with_capacity(2);
        cache.put("a", response_of(1));
        cache.put("b", response_of(2));
        cache.put("c", response_of(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("a").is_none(), "oldest evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn get_refreshes_recency() {
        let cache = Cache::with_capacity(2);
        cache.put("a", response_of(1));
        cache.put("b", response_of(2));
        cache.get("a"); // a becomes most recent
        cache.put("c", response_of(3));
        assert!(cache.get("a").is_some(), "recently used survives");
        assert!(cache.get("b").is_none(), "LRU victim");
    }

    #[test]
    fn reinsert_updates_without_duplicate_lru_entry() {
        let cache = Cache::with_capacity(2);
        cache.put("a", response_of(1));
        cache.put("a", response_of(9));
        cache.put("b", response_of(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a").unwrap().response.body().len(), 9);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn cache_busting_pollutes_the_cache() {
        // The SBR side effect: each busted URL is a distinct key, so a
        // stream of attack requests evicts legitimate entries.
        let cache = Cache::with_capacity(4);
        cache.put(&Cache::key("victim", "/popular.bin"), response_of(10));
        for i in 0..16 {
            cache.put(
                &Cache::key("victim", &format!("/f.bin?rnd={i}")),
                response_of(1),
            );
        }
        assert!(cache.get(&Cache::key("victim", "/popular.bin")).is_none());
        assert!(cache.evictions() >= 12);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = Cache::new();
        cache.put("k", response_of(1));
        cache.mark_seen("k");
        cache.clear();
        assert!(cache.is_empty());
        assert!(!cache.was_seen("k"));
        assert_eq!(cache.stats(), (0, 0));
    }
}
