//! Client-facing response assembly shared by the edge node and the vendor
//! miss handlers.

use rangeamp_http::multipart::MultipartBuilder;
use rangeamp_http::range::{coalesce, ContentRange, RangeHeader, ResolvedRange};
use rangeamp_http::{Body, Response, StatusCode};

use crate::MultiReplyPolicy;

/// Fixed edge-side `Date` header (virtual time ⇒ deterministic runs).
pub(crate) const CDN_DATE: &str = "Thu, 02 Jan 2020 00:00:01 GMT";

/// Representation metadata carried over from an upstream response.
#[derive(Debug, Clone)]
pub(crate) struct ReprMeta {
    pub content_type: String,
    pub etag: Option<String>,
    pub last_modified: Option<String>,
}

impl ReprMeta {
    pub(crate) fn of(resp: &Response) -> ReprMeta {
        ReprMeta {
            content_type: resp
                .headers()
                .get("content-type")
                .unwrap_or("application/octet-stream")
                .to_string(),
            etag: resp.headers().get("etag").map(str::to_string),
            last_modified: resp.headers().get("last-modified").map(str::to_string),
        }
    }

    fn apply(&self, mut builder: rangeamp_http::ResponseBuilder) -> rangeamp_http::ResponseBuilder {
        if let Some(etag) = &self.etag {
            builder = builder.header("ETag", etag.clone());
        }
        if let Some(lm) = &self.last_modified {
            builder = builder.header("Last-Modified", lm.clone());
        }
        builder
    }

    fn apply_owned(
        self,
        builder: rangeamp_http::ResponseBuilder,
    ) -> rangeamp_http::ResponseBuilder {
        self.apply(builder)
    }
}

/// A plain 200 carrying the complete representation.
pub(crate) fn full_200(full_body: Body, meta: &ReprMeta) -> Response {
    meta.apply(
        Response::builder(StatusCode::OK)
            .header("Date", CDN_DATE)
            .header("Accept-Ranges", "bytes")
            .header("Content-Type", meta.content_type.clone()),
    )
    .sized_body(full_body)
    .build()
}

/// A single-part 206.
pub(crate) fn single_206(
    slice: Body,
    range: ResolvedRange,
    complete_length: u64,
    meta: &ReprMeta,
) -> Response {
    let content_range = ContentRange::Satisfied {
        range,
        complete_length,
    };
    meta.apply(
        Response::builder(StatusCode::PARTIAL_CONTENT)
            .header("Date", CDN_DATE)
            .header("Accept-Ranges", "bytes")
            .header("Content-Range", content_range.to_string())
            .header("Content-Type", meta.content_type.clone()),
    )
    .sized_body(slice)
    .build()
}

/// A multipart/byteranges 206 with one part per given range, in order.
pub(crate) fn multipart_206(
    full_body: &Body,
    ranges: &[ResolvedRange],
    complete_length: u64,
    meta: &ReprMeta,
) -> Response {
    let mut builder = MultipartBuilder::new(&meta.content_type, complete_length);
    for range in ranges {
        builder = builder.part(*range, full_body.slice(range.first, range.last + 1));
    }
    let content_type = builder.content_type_header();
    meta.apply(
        Response::builder(StatusCode::PARTIAL_CONTENT)
            .header("Date", CDN_DATE)
            .header("Accept-Ranges", "bytes")
            .header("Content-Type", content_type),
    )
    .sized_body(builder.build())
    .build()
}

/// A 416 with `Content-Range: bytes */len`.
pub(crate) fn not_satisfiable(complete_length: u64) -> Response {
    let content_range = ContentRange::Unsatisfied { complete_length };
    Response::builder(StatusCode::RANGE_NOT_SATISFIABLE)
        .header("Date", CDN_DATE)
        .header("Content-Range", content_range.to_string())
        .sized_body("range not satisfiable")
        .build()
}

/// Serves the client's (possibly absent, possibly multi) range request
/// from a complete representation, applying the given multi-range reply
/// policy.
pub(crate) fn serve_from_full(
    range: Option<&RangeHeader>,
    full: &Response,
    multi_reply: MultiReplyPolicy,
) -> Response {
    let meta = ReprMeta::of(full);
    let body = full.body();
    let complete = body.len();

    let Some(header) = range else {
        return full_200(body.clone(), &meta);
    };
    let resolved = header.resolve(complete);
    if resolved.is_empty() {
        return not_satisfiable(complete);
    }
    if resolved.len() == 1 {
        let r = resolved[0];
        return single_206(body.slice(r.first, r.last + 1), r, complete, &meta);
    }
    match multi_reply {
        MultiReplyPolicy::NPartNoOverlapCheck => multipart_206(body, &resolved, complete, &meta),
        MultiReplyPolicy::Coalesce => {
            let merged = coalesce(&resolved);
            if merged.len() == 1 {
                let r = merged[0];
                single_206(body.slice(r.first, r.last + 1), r, complete, &meta)
            } else {
                multipart_206(body, &merged, complete, &meta)
            }
        }
        MultiReplyPolicy::RejectOverlapping => {
            let overlapping = resolved
                .iter()
                .enumerate()
                .any(|(i, a)| resolved[i + 1..].iter().any(|b| a.overlaps(b)));
            if overlapping {
                not_satisfiable(complete)
            } else {
                multipart_206(body, &resolved, complete, &meta)
            }
        }
        MultiReplyPolicy::Full200 => full_200(body.clone(), &meta),
    }
}

/// Serves a (possibly multi) range request from an upstream *partial*
/// (206 single-part) response whose `Content-Range` window covers the
/// requested ranges — the Expansion outcome (CloudFront, Azure window,
/// coalesced forwarding). Returns `None` when the window does not cover
/// every satisfiable requested range, or the partial is not a single-part
/// 206.
pub(crate) fn serve_from_partial(
    range: &RangeHeader,
    partial: &Response,
    multi_reply: MultiReplyPolicy,
) -> Option<Response> {
    let content_range = partial.headers().get("content-range")?;
    let ContentRange::Satisfied {
        range: window,
        complete_length,
    } = ContentRange::parse(content_range).ok()?
    else {
        return None;
    };
    let resolved = range.resolve(complete_length);
    if resolved.is_empty() {
        return Some(not_satisfiable(complete_length));
    }
    if resolved
        .iter()
        .any(|r| r.first < window.first || r.last > window.last)
    {
        return None;
    }
    // A short (truncated or malformed) body cannot back the advertised
    // window; refuse rather than slice out of bounds.
    if partial.body().len() < window.len() {
        return None;
    }
    let meta = ReprMeta::of(partial);
    let slice_of = |r: &ResolvedRange| -> Body {
        let offset = r.first - window.first;
        partial.body().slice(offset, offset + r.len())
    };
    if resolved.len() == 1 {
        return Some(single_206(
            slice_of(&resolved[0]),
            resolved[0],
            complete_length,
            &meta,
        ));
    }
    let build_multipart = |ranges: &[ResolvedRange]| -> Response {
        let mut builder = MultipartBuilder::new(&meta.content_type, complete_length);
        for r in ranges {
            builder = builder.part(*r, slice_of(r));
        }
        let content_type = builder.content_type_header();
        meta.clone()
            .apply_owned(
                Response::builder(StatusCode::PARTIAL_CONTENT)
                    .header("Date", CDN_DATE)
                    .header("Accept-Ranges", "bytes")
                    .header("Content-Type", content_type),
            )
            .sized_body(builder.build())
            .build()
    };
    Some(match multi_reply {
        MultiReplyPolicy::NPartNoOverlapCheck => build_multipart(&resolved),
        MultiReplyPolicy::Coalesce => {
            let merged = coalesce(&resolved);
            if merged.len() == 1 {
                single_206(slice_of(&merged[0]), merged[0], complete_length, &meta)
            } else {
                build_multipart(&merged)
            }
        }
        MultiReplyPolicy::RejectOverlapping => {
            let overlapping = resolved
                .iter()
                .enumerate()
                .any(|(i, a)| resolved[i + 1..].iter().any(|b| a.overlaps(b)));
            if overlapping {
                not_satisfiable(complete_length)
            } else {
                build_multipart(&resolved)
            }
        }
        MultiReplyPolicy::Full200 => return None,
    })
}

/// Serves a single requested range from an upstream *partial* (206)
/// response, used by the Expansion paths (CloudFront, Azure window,
/// capped-expansion mitigation). Returns `None` when the upstream part
/// does not cover the requested range.
pub(crate) fn slice_single_from_partial(
    requested: ResolvedRange,
    partial: &Response,
) -> Option<Response> {
    let content_range = partial.headers().get("content-range")?;
    let ContentRange::Satisfied {
        range: window,
        complete_length,
    } = ContentRange::parse(content_range).ok()?
    else {
        return None;
    };
    if requested.first < window.first || requested.last > window.last {
        return None;
    }
    // Guard against a body shorter than the advertised window (truncated
    // or malformed upstream responses must not panic the edge).
    if partial.body().len() < window.len() {
        return None;
    }
    let offset = requested.first - window.first;
    let slice = partial.body().slice(offset, offset + requested.len());
    Some(single_206(
        slice,
        requested,
        complete_length,
        &ReprMeta::of(partial),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_of(len: u64) -> Response {
        Response::builder(StatusCode::OK)
            .header("Content-Type", "application/octet-stream")
            .header("ETag", "\"abc\"")
            .sized_body((0..len).map(|i| i as u8).collect::<Vec<_>>())
            .build()
    }

    #[test]
    fn serve_full_without_range_is_200() {
        let full = full_of(100);
        let resp = serve_from_full(None, &full, MultiReplyPolicy::Coalesce);
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body().len(), 100);
        assert_eq!(resp.headers().get("accept-ranges"), Some("bytes"));
        assert_eq!(resp.headers().get("etag"), Some("\"abc\""));
    }

    #[test]
    fn serve_single_range() {
        let full = full_of(100);
        let header = RangeHeader::parse("bytes=10-19").unwrap();
        let resp = serve_from_full(Some(&header), &full, MultiReplyPolicy::Coalesce);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.headers().get("content-range"), Some("bytes 10-19/100"));
        assert_eq!(
            resp.body().as_bytes(),
            (10u8..20).collect::<Vec<_>>().as_slice()
        );
    }

    #[test]
    fn unsatisfiable_is_416() {
        let full = full_of(100);
        let header = RangeHeader::parse("bytes=500-600").unwrap();
        let resp = serve_from_full(Some(&header), &full, MultiReplyPolicy::Coalesce);
        assert_eq!(resp.status(), StatusCode::RANGE_NOT_SATISFIABLE);
        assert_eq!(resp.headers().get("content-range"), Some("bytes */100"));
    }

    #[test]
    fn npart_policy_duplicates_overlaps() {
        let full = full_of(100);
        let header = RangeHeader::parse("bytes=0-,0-,0-").unwrap();
        let resp = serve_from_full(Some(&header), &full, MultiReplyPolicy::NPartNoOverlapCheck);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert!(resp.body().len() > 300, "three 100-byte parts plus framing");
    }

    #[test]
    fn coalesce_policy_merges_overlaps_to_single_206() {
        let full = full_of(100);
        let header = RangeHeader::parse("bytes=0-,0-,0-").unwrap();
        let resp = serve_from_full(Some(&header), &full, MultiReplyPolicy::Coalesce);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.headers().get("content-range"), Some("bytes 0-99/100"));
        assert_eq!(resp.body().len(), 100);
    }

    #[test]
    fn reject_policy_416s_overlaps_but_allows_disjoint() {
        let full = full_of(100);
        let overlapping = RangeHeader::parse("bytes=0-,0-").unwrap();
        let resp = serve_from_full(
            Some(&overlapping),
            &full,
            MultiReplyPolicy::RejectOverlapping,
        );
        assert_eq!(resp.status(), StatusCode::RANGE_NOT_SATISFIABLE);

        let disjoint = RangeHeader::parse("bytes=0-4,90-94").unwrap();
        let resp = serve_from_full(Some(&disjoint), &full, MultiReplyPolicy::RejectOverlapping);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert!(resp
            .headers()
            .get("content-type")
            .unwrap()
            .starts_with("multipart/byteranges"));
    }

    #[test]
    fn full200_policy_ignores_ranges() {
        let full = full_of(100);
        let header = RangeHeader::parse("bytes=0-,0-").unwrap();
        let resp = serve_from_full(Some(&header), &full, MultiReplyPolicy::Full200);
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body().len(), 100);
    }

    #[test]
    fn slice_from_partial_within_window() {
        let window = ResolvedRange {
            first: 1000,
            last: 1999,
        };
        let partial = single_206(
            Body::from((0..1000).map(|i| i as u8).collect::<Vec<_>>()),
            window,
            10_000,
            &ReprMeta {
                content_type: "x/y".to_string(),
                etag: None,
                last_modified: None,
            },
        );
        let requested = ResolvedRange {
            first: 1500,
            last: 1501,
        };
        let resp = slice_single_from_partial(requested, &partial).unwrap();
        assert_eq!(
            resp.headers().get("content-range"),
            Some("bytes 1500-1501/10000")
        );
        assert_eq!(resp.body().len(), 2);
        assert_eq!(resp.body().as_bytes(), &[244, 245]); // 500, 501 mod 256
    }

    #[test]
    fn slice_from_partial_outside_window_is_none() {
        let window = ResolvedRange {
            first: 1000,
            last: 1999,
        };
        let partial = single_206(
            Body::from(vec![0u8; 1000]),
            window,
            10_000,
            &ReprMeta {
                content_type: "x/y".to_string(),
                etag: None,
                last_modified: None,
            },
        );
        let requested = ResolvedRange {
            first: 500,
            last: 501,
        };
        assert!(slice_single_from_partial(requested, &partial).is_none());
        let straddling = ResolvedRange {
            first: 1999,
            last: 2000,
        };
        assert!(slice_single_from_partial(straddling, &partial).is_none());
    }
}
