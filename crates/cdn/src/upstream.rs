//! The upstream abstraction that lets edge nodes front an origin server
//! directly or another CDN (the cascaded FCDN → BCDN topology of Fig 3b),
//! plus the failure-aware wrappers the chaos campaigns compose in.

use std::fmt;
use std::sync::Arc;

use rangeamp_http::{Request, Response, StatusCode};
use rangeamp_net::{FaultKind, FaultPlan, SharedClock};
use rangeamp_origin::OriginServer;

/// How a back-to-origin exchange can fail before a usable response
/// reaches the edge.
///
/// Variants that interrupt a transfer mid-flight carry the response that
/// *was* being delivered plus how many wire bytes actually arrived, so
/// the edge can meter the partial traffic faithfully — the bytes still
/// crossed the origin's uplink even though the edge can't use them.
#[derive(Debug, Clone)]
pub enum UpstreamError {
    /// The upstream never answered within the (virtual) timeout budget.
    Timeout,
    /// The connection was reset mid-transfer.
    Reset {
        /// The response that was in flight.
        partial: Response,
        /// Wire bytes delivered before the reset.
        delivered: u64,
    },
    /// The response body ended early but cleanly.
    Truncated {
        /// The response that was in flight.
        partial: Response,
        /// Wire bytes delivered before the stream ended.
        delivered: u64,
    },
    /// The response arrived whole but is self-inconsistent (e.g. a
    /// `Content-Range` window that disagrees with the body length); the
    /// edge must not assemble client data from it.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// The edge's circuit breaker is open: no fetch was attempted.
    CircuitOpen,
}

impl UpstreamError {
    /// Whether another attempt could plausibly succeed. Malformed
    /// responses and an open breaker fail fast.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            UpstreamError::Timeout | UpstreamError::Reset { .. } | UpstreamError::Truncated { .. }
        )
    }
}

impl fmt::Display for UpstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpstreamError::Timeout => f.write_str("upstream timeout"),
            UpstreamError::Reset { delivered, .. } => {
                write!(f, "connection reset after {delivered} bytes")
            }
            UpstreamError::Truncated { delivered, .. } => {
                write!(f, "response truncated at {delivered} bytes")
            }
            UpstreamError::Malformed { detail } => {
                write!(f, "malformed upstream response: {detail}")
            }
            UpstreamError::CircuitOpen => f.write_str("circuit breaker open"),
        }
    }
}

/// Something an edge node can forward requests to: the origin server,
/// another edge node (cascading), or a measurement proxy.
pub trait UpstreamService: fmt::Debug + Send + Sync {
    /// Handles one forwarded request.
    ///
    /// # Errors
    ///
    /// Returns an [`UpstreamError`] when the exchange fails before a
    /// usable response reaches the edge (timeout, reset, truncation).
    /// Origin-side HTTP errors (404, 503, ...) are `Ok` responses — the
    /// wire exchange itself succeeded.
    fn handle(&self, req: &Request) -> Result<Response, UpstreamError>;

    /// Size in bytes of the representation at `path`, if known.
    ///
    /// Real CDNs learn representation sizes from cached metadata or prior
    /// responses; several of the paper's conditional behaviours (Azure's
    /// 8 MB window, Huawei's 10 MB threshold) key on it. Modelling the
    /// metadata channel as a size probe keeps the *byte traffic on the
    /// measured segments* identical to the mechanism the paper observed
    /// while avoiding an extra bookkeeping fetch.
    fn resource_size(&self, path: &str) -> Option<u64>;
}

impl UpstreamService for OriginServer {
    fn handle(&self, req: &Request) -> Result<Response, UpstreamError> {
        Ok(OriginServer::handle(self, req))
    }

    fn resource_size(&self, path: &str) -> Option<u64> {
        self.store().get(path).map(|r| r.len())
    }
}

impl<T: UpstreamService + ?Sized> UpstreamService for Arc<T> {
    fn handle(&self, req: &Request) -> Result<Response, UpstreamError> {
        (**self).handle(req)
    }

    fn resource_size(&self, path: &str) -> Option<u64> {
        (**self).resource_size(path)
    }
}

/// Adapter wrapping an [`OriginServer`] for shared use (kept for API
/// clarity at call sites; `Arc<OriginServer>` works directly too).
#[derive(Debug, Clone)]
pub struct OriginUpstream {
    origin: Arc<OriginServer>,
}

impl OriginUpstream {
    /// Wraps an origin server.
    pub fn new(origin: OriginServer) -> OriginUpstream {
        OriginUpstream {
            origin: Arc::new(origin),
        }
    }

    /// Shared access to the wrapped server.
    pub fn origin(&self) -> &Arc<OriginServer> {
        &self.origin
    }
}

impl UpstreamService for OriginUpstream {
    fn handle(&self, req: &Request) -> Result<Response, UpstreamError> {
        Ok(OriginServer::handle(&self.origin, req))
    }

    fn resource_size(&self, path: &str) -> Option<u64> {
        self.origin.store().get(path).map(|r| r.len())
    }
}

/// An origin driven through [`OriginServer::handle_at`] on a shared
/// virtual clock, so time-dependent origin behaviour (the overload
/// shedder's transfer slots draining) lines up with the edge's retries
/// and breaker windows.
#[derive(Debug, Clone)]
pub struct ClockedOrigin {
    origin: Arc<OriginServer>,
    clock: SharedClock,
}

impl ClockedOrigin {
    /// Wraps an origin server and the clock supplying its `now`.
    pub fn new(origin: Arc<OriginServer>, clock: SharedClock) -> ClockedOrigin {
        ClockedOrigin { origin, clock }
    }

    /// Shared access to the wrapped server.
    pub fn origin(&self) -> &Arc<OriginServer> {
        &self.origin
    }

    /// The clock supplying the origin's `now`.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}

impl UpstreamService for ClockedOrigin {
    fn handle(&self, req: &Request) -> Result<Response, UpstreamError> {
        Ok(self.origin.handle_at(req, self.clock.now_millis()))
    }

    fn resource_size(&self, path: &str) -> Option<u64> {
        self.origin.store().get(path).map(|r| r.len())
    }
}

/// An upstream whose transfers fail on a seeded [`FaultPlan`] schedule.
///
/// Each successful inner exchange consumes one draw from the plan:
///
/// * no event — the response passes through untouched;
/// * `Origin5xx` — the payload is replaced by a small synthesized server
///   error (what a failing origin actually puts on the wire);
/// * `Timeout` — [`UpstreamError::Timeout`], nothing delivered;
/// * `ConnectionReset` / `Truncation` — the matching [`UpstreamError`],
///   carrying the in-flight response and the delivered byte count so the
///   edge meters the partial transfer;
/// * `SlowLink` — delivery succeeds (timing-only event, consumed by
///   flow-level simulations).
///
/// A healthy plan short-circuits without advancing its RNG, so wrapping
/// an upstream with `FaultyUpstream::new(inner, FaultPlan::healthy())`
/// is byte-for-byte identical to the bare upstream.
#[derive(Debug)]
pub struct FaultyUpstream {
    inner: Arc<dyn UpstreamService>,
    plan: Arc<FaultPlan>,
}

impl FaultyUpstream {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: Arc<dyn UpstreamService>, plan: Arc<FaultPlan>) -> FaultyUpstream {
        FaultyUpstream { inner, plan }
    }

    /// The fault schedule in force.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl UpstreamService for FaultyUpstream {
    fn handle(&self, req: &Request) -> Result<Response, UpstreamError> {
        let resp = self.inner.handle(req)?;
        let Some(event) = self.plan.next_for_transfer(resp.wire_len()) else {
            return Ok(resp);
        };
        match event.kind {
            FaultKind::Origin5xx { status } => {
                let status = StatusCode::new(status).unwrap_or(StatusCode::INTERNAL_SERVER_ERROR);
                Ok(Response::builder(status)
                    .header("Date", crate::assemble::CDN_DATE)
                    .header("Content-Type", "text/html")
                    .sized_body(
                        format!(
                            "<html><body><h1>{} {}</h1></body></html>",
                            status.as_u16(),
                            status.reason_phrase()
                        )
                        .into_bytes(),
                    )
                    .build())
            }
            FaultKind::Timeout => Err(UpstreamError::Timeout),
            FaultKind::ConnectionReset { after_bytes } => Err(UpstreamError::Reset {
                delivered: after_bytes.min(resp.wire_len()),
                partial: resp,
            }),
            FaultKind::Truncation { keep_bytes } => Err(UpstreamError::Truncated {
                delivered: keep_bytes.min(resp.wire_len()),
                partial: resp,
            }),
            FaultKind::SlowLink { .. } => Ok(resp),
        }
    }

    fn resource_size(&self, path: &str) -> Option<u64> {
        self.inner.resource_size(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rangeamp_net::FaultRates;
    use rangeamp_origin::ResourceStore;

    fn origin() -> OriginServer {
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 1234, "application/octet-stream");
        OriginServer::new(store)
    }

    #[test]
    fn origin_server_is_an_upstream() {
        let origin = origin();
        let req = Request::get("/f.bin").build();
        let resp = UpstreamService::handle(&origin, &req).unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(origin.resource_size("/f.bin"), Some(1234));
        assert_eq!(origin.resource_size("/missing"), None);
    }

    #[test]
    fn arc_delegates() {
        let origin = Arc::new(origin());
        assert_eq!(origin.resource_size("/f.bin"), Some(1234));
        let req = Request::get("/f.bin").build();
        assert_eq!(
            UpstreamService::handle(&origin, &req).unwrap().status(),
            StatusCode::OK
        );
    }

    #[test]
    fn origin_upstream_adapter() {
        let upstream = OriginUpstream::new(origin());
        assert_eq!(upstream.resource_size("/f.bin"), Some(1234));
    }

    #[test]
    fn healthy_faulty_upstream_is_transparent() {
        let bare = Arc::new(origin());
        let wrapped = FaultyUpstream::new(bare.clone(), Arc::new(FaultPlan::healthy()));
        let req = Request::get("/f.bin").build();
        let direct = bare.handle(&req).unwrap();
        let via = wrapped.handle(&req).unwrap();
        assert_eq!(direct.wire_len(), via.wire_len());
        assert_eq!(wrapped.plan().transfers_seen(), 0, "no RNG draws");
    }

    #[test]
    fn all_faults_plan_always_fails() {
        let rates = FaultRates {
            timeout: 1.0,
            ..FaultRates::HEALTHY
        };
        let wrapped = FaultyUpstream::new(
            Arc::new(origin()),
            Arc::new(FaultPlan::with_rates(7, rates)),
        );
        let req = Request::get("/f.bin").build();
        for _ in 0..3 {
            assert!(matches!(wrapped.handle(&req), Err(UpstreamError::Timeout)));
        }
    }

    #[test]
    fn origin_5xx_fault_synthesizes_error_response() {
        let rates = FaultRates {
            origin_5xx: 1.0,
            ..FaultRates::HEALTHY
        };
        let wrapped = FaultyUpstream::new(
            Arc::new(origin()),
            Arc::new(FaultPlan::with_rates(1, rates)),
        );
        let req = Request::get("/f.bin").build();
        let resp = wrapped.handle(&req).unwrap();
        assert!(resp.status().as_u16() >= 500);
        assert!(resp.body().len() < 100, "small error page, not the payload");
    }

    #[test]
    fn reset_fault_carries_partial_delivery() {
        let rates = FaultRates {
            connection_reset: 1.0,
            ..FaultRates::HEALTHY
        };
        let wrapped = FaultyUpstream::new(
            Arc::new(origin()),
            Arc::new(FaultPlan::with_rates(3, rates)),
        );
        let req = Request::get("/f.bin").build();
        match wrapped.handle(&req) {
            Err(UpstreamError::Reset { partial, delivered }) => {
                assert!(delivered <= partial.wire_len());
            }
            other => panic!("expected a reset, got {other:?}"),
        }
    }

    #[test]
    fn clocked_origin_feeds_virtual_now() {
        use rangeamp_origin::{OverloadPolicy, OverloadShedder};
        let clock = SharedClock::new();
        let origin =
            Arc::new(origin().with_overload(OverloadShedder::new(OverloadPolicy::strict(1))));
        let upstream = ClockedOrigin::new(origin, clock.clone());
        let req = Request::get("/f.bin").build();
        assert_eq!(upstream.handle(&req).unwrap().status(), StatusCode::OK);
        // Second transfer at the same instant: slot still occupied.
        assert_eq!(
            upstream.handle(&req).unwrap().status(),
            StatusCode::SERVICE_UNAVAILABLE
        );
        // Advance past the drain time: admitted again.
        clock.advance_millis(10);
        assert_eq!(upstream.handle(&req).unwrap().status(), StatusCode::OK);
        assert_eq!(upstream.resource_size("/f.bin"), Some(1234));
    }

    #[test]
    fn error_display_and_retryability() {
        assert!(UpstreamError::Timeout.is_retryable());
        assert!(!UpstreamError::CircuitOpen.is_retryable());
        let malformed = UpstreamError::Malformed { detail: "x".into() };
        assert!(!malformed.is_retryable());
        assert_eq!(malformed.to_string(), "malformed upstream response: x");
        assert_eq!(UpstreamError::Timeout.to_string(), "upstream timeout");
    }
}
