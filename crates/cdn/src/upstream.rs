//! The upstream abstraction that lets edge nodes front an origin server
//! directly or another CDN (the cascaded FCDN → BCDN topology of Fig 3b).

use std::fmt;
use std::sync::Arc;

use rangeamp_http::{Request, Response};
use rangeamp_origin::OriginServer;

/// Something an edge node can forward requests to: the origin server,
/// another edge node (cascading), or a measurement proxy.
pub trait UpstreamService: fmt::Debug + Send + Sync {
    /// Handles one forwarded request.
    fn handle(&self, req: &Request) -> Response;

    /// Size in bytes of the representation at `path`, if known.
    ///
    /// Real CDNs learn representation sizes from cached metadata or prior
    /// responses; several of the paper's conditional behaviours (Azure's
    /// 8 MB window, Huawei's 10 MB threshold) key on it. Modelling the
    /// metadata channel as a size probe keeps the *byte traffic on the
    /// measured segments* identical to the mechanism the paper observed
    /// while avoiding an extra bookkeeping fetch.
    fn resource_size(&self, path: &str) -> Option<u64>;
}

impl UpstreamService for OriginServer {
    fn handle(&self, req: &Request) -> Response {
        OriginServer::handle(self, req)
    }

    fn resource_size(&self, path: &str) -> Option<u64> {
        self.store().get(path).map(|r| r.len())
    }
}

impl<T: UpstreamService + ?Sized> UpstreamService for Arc<T> {
    fn handle(&self, req: &Request) -> Response {
        (**self).handle(req)
    }

    fn resource_size(&self, path: &str) -> Option<u64> {
        (**self).resource_size(path)
    }
}

/// Adapter wrapping an [`OriginServer`] for shared use (kept for API
/// clarity at call sites; `Arc<OriginServer>` works directly too).
#[derive(Debug, Clone)]
pub struct OriginUpstream {
    origin: Arc<OriginServer>,
}

impl OriginUpstream {
    /// Wraps an origin server.
    pub fn new(origin: OriginServer) -> OriginUpstream {
        OriginUpstream {
            origin: Arc::new(origin),
        }
    }

    /// Shared access to the wrapped server.
    pub fn origin(&self) -> &Arc<OriginServer> {
        &self.origin
    }
}

impl UpstreamService for OriginUpstream {
    fn handle(&self, req: &Request) -> Response {
        self.origin.handle(req)
    }

    fn resource_size(&self, path: &str) -> Option<u64> {
        self.origin.store().get(path).map(|r| r.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rangeamp_http::StatusCode;
    use rangeamp_origin::ResourceStore;

    fn origin() -> OriginServer {
        let mut store = ResourceStore::new();
        store.add_synthetic("/f.bin", 1234, "application/octet-stream");
        OriginServer::new(store)
    }

    #[test]
    fn origin_server_is_an_upstream() {
        let origin = origin();
        let req = Request::get("/f.bin").build();
        let resp = UpstreamService::handle(&origin, &req);
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(origin.resource_size("/f.bin"), Some(1234));
        assert_eq!(origin.resource_size("/missing"), None);
    }

    #[test]
    fn arc_delegates() {
        let origin = Arc::new(origin());
        assert_eq!(origin.resource_size("/f.bin"), Some(1234));
        let req = Request::get("/f.bin").build();
        assert_eq!(UpstreamService::handle(&origin, &req).status(), StatusCode::OK);
    }

    #[test]
    fn origin_upstream_adapter() {
        let upstream = OriginUpstream::new(origin());
        assert_eq!(upstream.resource_size("/f.bin"), Some(1234));
    }
}
