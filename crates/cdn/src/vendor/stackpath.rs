//! StackPath behaviour profile.
//!
//! Paper findings (§V-A item 5, Tables I/II/III):
//! * Single ranges: *Laziness* first; if the origin answers 206,
//!   StackPath removes the `Range` header and forwards the request again
//!   ("bytes=first-last [& None]") — SBR-vulnerable.
//! * Multi-range headers are forwarded unchanged (OBR FCDN) and, when the
//!   origin ignores ranges, answered with an n-part overlapping response
//!   (OBR BCDN) — the only vendor on both sides of Table V (excluding the
//!   self-cascade, which the paper leaves blank).
//! * §V-C — total request headers limited to about 81 KB.
//! * §VII-A — StackPath later deployed an OBR fix across all edges.

use rangeamp_http::StatusCode;

use super::{
    laziness, pad_header, MissCtx, MissReply, MissResult, Vendor, VendorOptions, VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Calibrated so a single-part 206 to the SBR probe is ≈ 807 wire bytes
/// (Table IV: 26 215 000 / 32 491 ≈ 807 at 25 MB).
const PAD: usize = 403;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::StackPath,
        limits: HeaderLimits {
            total_header_bytes: Some(81 * 1024),
            ..HeaderLimits::default()
        },
        multi_reply: MultiReplyPolicy::NPartNoOverlapCheck,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(2, 400, 2_000),
        extra_headers: vec![
            ("Server", "StackPath".to_string()),
            ("X-SP-Edge", "fr2".to_string()),
            (
                "X-HW",
                "1577923200.dop041.fr2.t,1577923200.cds060.fr2.shn".to_string(),
            ),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(ctx: &mut MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        // Table II: forwarded unchanged. If the origin ignores ranges and
        // ships a 200, StackPath serves the n-part overlapping reply
        // (Table III) from it.
        let resp = ctx.fetch(Some(&header))?;
        return Ok(if resp.status() == StatusCode::OK {
            MissResult::new(MissReply::ServeFromFull(resp), true)
        } else {
            MissResult::new(MissReply::Passthrough(resp), false)
        });
    }
    // Single range: Laziness first...
    let first = ctx.fetch(Some(&header))?;
    Ok(match first.status() {
        StatusCode::PARTIAL_CONTENT => {
            // ...then the 206-triggered re-forward without Range.
            let full = ctx.fetch(None)?;
            MissResult::new(MissReply::ServeFromFull(full), true)
        }
        StatusCode::OK => MissResult::new(MissReply::ServeFromFull(first), true),
        _ => MissResult::new(MissReply::Passthrough(first), false),
    })
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn single_range_triggers_lazy_then_deleted_double_fetch() {
        let run = run_vendor(Vendor::StackPath, MB, "bytes=0-0");
        assert_eq!(
            run.forwarded,
            vec![Some("bytes=0-0".to_string()), None],
            "bytes=first-last [& None] (Table I)"
        );
        assert!(run.origin_response_bytes > MB);
        assert_eq!(run.client_response.body().len(), 1);
    }

    #[test]
    fn suffix_also_double_fetches() {
        let run = run_vendor(Vendor::StackPath, MB, "bytes=-1");
        assert_eq!(run.forwarded, vec![Some("bytes=-1".to_string()), None]);
    }

    #[test]
    fn multi_forwarded_unchanged_fcdn() {
        let range = "bytes=0-,0-,0-";
        let run = run_vendor(Vendor::StackPath, 1024, range);
        assert_eq!(run.forwarded[0], Some(range.to_string()));
    }

    #[test]
    fn bcdn_reply_is_n_part_when_origin_ignores_ranges() {
        let run = run_vendor_ranges_disabled(Vendor::StackPath, 1024, "bytes=0-,0-,0-,0-");
        assert_eq!(run.client_response.status(), StatusCode::PARTIAL_CONTENT);
        assert!(run.client_response.body().len() > 4 * 1024);
        assert_eq!(
            run.origin_request_count, 1,
            "one full fetch feeds all parts"
        );
    }

    #[test]
    fn origin_without_ranges_single_fetch_only() {
        // 200 to the lazy probe → no re-forward needed.
        let run = run_vendor_ranges_disabled(Vendor::StackPath, MB, "bytes=0-0");
        assert_eq!(run.origin_request_count, 1);
        assert_eq!(run.client_response.body().len(), 1);
    }

    #[test]
    fn total_header_limit_is_about_81_kb() {
        assert_eq!(profile().limits.total_header_bytes, Some(81 * 1024));
    }
}
