//! Alibaba Cloud behaviour profile.
//!
//! Paper findings:
//! * Table I — *Deletion* for `bytes=-suffix`, conditional on the `Range`
//!   origin-pull option being set to *disable* (the default our profile
//!   models; set [`VendorOptions::range_option_deletes`] to `false` for
//!   the hardened configuration).
//! * Table IV — exploited with `bytes=-1`; amplification 26 241× at 25 MB.
//!
//! [`VendorOptions::range_option_deletes`]: super::VendorOptions

use rangeamp_http::range::ByteRangeSpec;

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissResult, Vendor, VendorOptions,
    VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Calibrated so a single-part 206 to the SBR probe is ≈ 996 wire bytes
/// (Table IV: 1 048 826 / 1 056 ≈ 993 at 1 MB).
const PAD: usize = 536;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::AlibabaCloud,
        limits: HeaderLimits::default(),
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(2, 200, 1_000),
        extra_headers: vec![
            ("Server", "Tengine".to_string()),
            (
                "Via",
                "cache13.l2et15-1[0,0,200-0,H], cache3.cn541[0,0]".to_string(),
            ),
            ("Timing-Allow-Origin", "*".to_string()),
            ("EagleId", "2ff6155816005325084906273e".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(
    profile: &VendorProfile,
    ctx: &mut MissCtx<'_>,
) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if !profile.options.range_option_deletes {
        // Hardened configuration: everything is forwarded unchanged...
        // except multi-range sets, which Alibaba never relays verbatim
        // (it is absent from Table II).
        if header.is_multi() {
            return coalesced_forward(profile, ctx);
        }
        return laziness(ctx);
    }
    if header.is_multi() {
        return coalesced_forward(profile, ctx);
    }
    match header.specs()[0] {
        ByteRangeSpec::Suffix { .. } => deletion(ctx),
        _ => laziness(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    #[test]
    fn deletes_suffix_ranges_only() {
        let run = run_vendor(Vendor::AlibabaCloud, 1 << 20, "bytes=-1");
        assert_eq!(run.forwarded, vec![None]);
        assert!(run.origin_response_bytes > 1 << 20);
        assert_eq!(run.client_response.body().len(), 1);
    }

    #[test]
    fn first_last_is_forwarded_unchanged() {
        let run = run_vendor(Vendor::AlibabaCloud, 1 << 20, "bytes=0-0");
        assert_eq!(run.forwarded, vec![Some("bytes=0-0".to_string())]);
        assert!(run.origin_response_bytes < 4096, "no amplification");
    }

    #[test]
    fn hardened_option_disables_the_vulnerability() {
        let mut profile = profile();
        profile.options.range_option_deletes = false;
        let run = run_vendor_with_profile(profile, 1 << 20, "bytes=-1", true);
        assert_eq!(run.forwarded, vec![Some("bytes=-1".to_string())]);
        assert!(run.origin_response_bytes < 4096);
    }

    #[test]
    fn multi_range_is_coalesced_not_relayed() {
        let run = run_vendor(Vendor::AlibabaCloud, 1024, "bytes=0-,0-,0-");
        assert_eq!(run.forwarded, vec![Some("bytes=0-".to_string())]);
        // Client reply is coalesced → no OBR inflation.
        assert!(run.client_response.body().len() <= 1100);
    }
}
