//! CDNsun behaviour profile.
//!
//! Paper findings:
//! * Table I — *Deletion* for `bytes=0-last`.
//! * Table II — multi-range headers `bytes=start1-,...,startn-` are
//!   forwarded unchanged when `start1 ≥ 1` (hence the exploited case
//!   `bytes=1-,0-,...,0-` in Table V).
//! * §IV-C — like CDN77, keeps the back-to-origin connection alive when
//!   the client aborts.
//! * §V-C — limits a single request header to 16 KB.

use rangeamp_http::range::ByteRangeSpec;

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissResult, Vendor, VendorOptions,
    VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Calibrated so a single-part 206 to the SBR probe is ≈ 670 wire bytes
/// (Table IV: 26 214 650 / 38 730 ≈ 677 at 25 MB).
const PAD: usize = 324;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::CdnSun,
        limits: HeaderLimits {
            single_header_bytes: Some(16 * 1024),
            ..HeaderLimits::default()
        },
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: true,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(2, 100, 1_000),
        extra_headers: vec![
            ("Server", "CDNsun".to_string()),
            ("X-Edge-Location", "frankfurt".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(ctx: &mut MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        let all_open = header
            .specs()
            .iter()
            .all(|s| matches!(s, ByteRangeSpec::From { .. }));
        let first_start = match header.specs()[0] {
            ByteRangeSpec::From { first } => Some(first),
            _ => None,
        };
        // Table II: only start1 ≥ 1 sets are relayed verbatim.
        if all_open && first_start.is_some_and(|s| s >= 1) {
            return laziness(ctx);
        }
        return coalesced_forward(&profile(), ctx);
    }
    match header.specs()[0] {
        // Table I: bytes=0-last is deleted.
        ByteRangeSpec::FromTo { first: 0, .. } => deletion(ctx),
        _ => laziness(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    #[test]
    fn deletes_zero_anchored_first_last() {
        let run = run_vendor(Vendor::CdnSun, 1 << 20, "bytes=0-0");
        assert_eq!(run.forwarded, vec![None]);
        assert!(run.origin_response_bytes > 1 << 20);
    }

    #[test]
    fn nonzero_first_is_lazy() {
        let run = run_vendor(Vendor::CdnSun, 1 << 20, "bytes=1-1");
        assert_eq!(run.forwarded, vec![Some("bytes=1-1".to_string())]);
    }

    #[test]
    fn suffix_is_lazy() {
        let run = run_vendor(Vendor::CdnSun, 1 << 20, "bytes=-1");
        assert_eq!(run.forwarded, vec![Some("bytes=-1".to_string())]);
    }

    #[test]
    fn multi_open_ranges_starting_at_one_forwarded_unchanged() {
        let range = "bytes=1-,0-,0-";
        let run = run_vendor(Vendor::CdnSun, 4096, range);
        assert_eq!(run.forwarded, vec![Some(range.to_string())]);
    }

    #[test]
    fn multi_open_ranges_starting_at_zero_not_relayed() {
        let run = run_vendor(Vendor::CdnSun, 4096, "bytes=0-,0-,0-");
        assert_eq!(run.forwarded, vec![Some("bytes=0-".to_string())]);
    }

    #[test]
    fn overlapping_mixed_multi_is_merged_before_forwarding() {
        let run = run_vendor(Vendor::CdnSun, 4096, "bytes=0-10,5-20");
        assert_eq!(run.forwarded, vec![Some("bytes=0-20".to_string())]);
    }
}
