//! Akamai behaviour profile.
//!
//! Paper findings:
//! * Table I — *Deletion* for `bytes=first-last` and `bytes=-suffix`
//!   (the highest SBR amplification of all vendors: 43093× at 25 MB,
//!   because Akamai "insert[s] fewer headers to the response").
//! * Table III — as a BCDN it answers `bytes=start1-,...,startn-` with an
//!   n-part response without checking overlap.
//! * §V-C — limits the total size of all request headers to 32 KB.

use rangeamp_http::range::ByteRangeSpec;

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissResult, Vendor, VendorOptions,
    VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Calibrated so a single-part 206 to the SBR probe is ≈ 608 wire bytes
/// (Table IV: 26 214 650 / 43 093 ≈ 608 at 25 MB).
const PAD: usize = 164;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::Akamai,
        limits: HeaderLimits {
            total_header_bytes: Some(32 * 1024),
            ..HeaderLimits::default()
        },
        multi_reply: MultiReplyPolicy::NPartNoOverlapCheck,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(3, 250, 2_000),
        extra_headers: vec![
            ("Server", "AkamaiGHost".to_string()),
            ("Mime-Version", "1.0".to_string()),
            ("Expires", "Thu, 02 Jan 2020 00:00:01 GMT".to_string()),
            ("Cache-Control", "max-age=604800".to_string()),
            ("Connection", "keep-alive".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(ctx: &mut MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        // Not forwarded unchanged (Akamai is absent from Table II) and not
        // deleted (absent from Table I's multi rows): span-coalesced
        // forward, then the n-part no-overlap-check reply (Table III).
        return coalesced_forward(&profile(), ctx);
    }
    match header.specs()[0] {
        // Table I: first-last and -suffix are deleted.
        ByteRangeSpec::FromTo { .. } | ByteRangeSpec::Suffix { .. } => deletion(ctx),
        // Open-ended ranges are not listed as vulnerable → forwarded as-is.
        ByteRangeSpec::From { .. } => laziness(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;
    use rangeamp_http::StatusCode;

    #[test]
    fn deletes_range_for_first_last_and_suffix() {
        for range in ["bytes=0-0", "bytes=-1"] {
            let run = run_vendor(Vendor::Akamai, 1 << 20, range);
            assert_eq!(run.forwarded, vec![None], "case {range}");
            assert!(run.origin_response_bytes > 1 << 20);
            assert_eq!(run.client_response.status(), StatusCode::PARTIAL_CONTENT);
        }
    }

    #[test]
    fn forwards_open_ended_unchanged() {
        let run = run_vendor(Vendor::Akamai, 4096, "bytes=4000-");
        assert_eq!(run.forwarded, vec![Some("bytes=4000-".to_string())]);
    }

    #[test]
    fn bcdn_reply_is_n_part_without_overlap_check() {
        let run = run_vendor_ranges_disabled(Vendor::Akamai, 1024, "bytes=0-,0-,0-,0-");
        assert_eq!(run.client_response.status(), StatusCode::PARTIAL_CONTENT);
        assert!(
            run.client_response.body().len() > 4 * 1024,
            "four overlapping 1 KB parts expected"
        );
        // The origin shipped the 1 KB representation exactly once.
        assert!(run.origin_response_bytes < 2 * 1024);
    }

    #[test]
    fn multi_range_is_not_forwarded_unchanged() {
        let run = run_vendor(Vendor::Akamai, 1024, "bytes=0-,0-");
        assert_eq!(run.forwarded, vec![Some("bytes=0-".to_string())]);
    }

    #[test]
    fn total_header_limit_is_32k() {
        let limits = profile().limits;
        assert_eq!(limits.total_header_bytes, Some(32 * 1024));
    }
}
