//! G-Core Labs behaviour profile.
//!
//! Paper findings:
//! * Table I — *Deletion* for `bytes=first-last` and `bytes=-suffix`.
//! * Table IV — the largest amplification of all vendors alongside
//!   Akamai (43 330× at 25 MB) because G-Core inserts few response
//!   headers.
//! * §VII-A — post-disclosure, G-Core enabled its `slice` option by
//!   default, which adopts the *Laziness* policy; model that with
//!   [`MitigationConfig::force_laziness`].
//!
//! [`MitigationConfig::force_laziness`]: crate::MitigationConfig

use rangeamp_http::range::ByteRangeSpec;

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissResult, Vendor, VendorOptions,
    VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Calibrated so a single-part 206 to the SBR probe is ≈ 605 wire bytes
/// (Table IV: 26 214 650 / 43 330 ≈ 605 at 25 MB).
const PAD: usize = 259;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::GCoreLabs,
        limits: HeaderLimits::default(),
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(2, 300, 2_000),
        extra_headers: vec![
            ("Server", "nginx".to_string()),
            ("X-ID", "fr5-up-e2".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(ctx: &mut MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        return coalesced_forward(&profile(), ctx);
    }
    match header.specs()[0] {
        ByteRangeSpec::FromTo { .. } | ByteRangeSpec::Suffix { .. } => deletion(ctx),
        ByteRangeSpec::From { .. } => laziness(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;
    use crate::MitigationConfig;

    #[test]
    fn deletes_first_last_and_suffix() {
        for range in ["bytes=0-0", "bytes=-1"] {
            let run = run_vendor(Vendor::GCoreLabs, 1 << 20, range);
            assert_eq!(run.forwarded, vec![None], "case {range}");
        }
    }

    #[test]
    fn slice_fix_restores_laziness() {
        // The §VII-A fix: slice option on = Laziness.
        let profile = profile().with_mitigation(MitigationConfig {
            force_laziness: true,
            ..MitigationConfig::none()
        });
        let run = run_vendor_with_profile(profile, 1 << 20, "bytes=0-0", true);
        assert_eq!(run.forwarded, vec![Some("bytes=0-0".to_string())]);
        assert!(run.origin_response_bytes < 2048);
    }

    #[test]
    fn lean_header_set() {
        // Fewer injected headers than Cloudflare → larger amplification.
        let gcore: usize = profile()
            .extra_headers
            .iter()
            .map(|(n, v)| n.len() + v.len() + 4)
            .sum();
        let cloudflare: usize = Vendor::Cloudflare
            .profile()
            .extra_headers
            .iter()
            .map(|(n, v)| n.len() + v.len() + 4)
            .sum();
        assert!(gcore < cloudflare);
    }
}
