//! Amazon CloudFront behaviour profile.
//!
//! Paper findings (§V-A item 3, Table I):
//! * CloudFront adopts *Expansion* everywhere: for
//!   `Range: bytes=first-last` it forwards
//!   `bytes=first'-last'` with `first' = (first >> 20) << 20` and
//!   `last' = (((last >> 20) + 1) << 20) - 1` (1 MB chunk alignment).
//! * For a multi-range header `bytes=first1-last1,...,firstn-lastn` it
//!   forwards the single expanded window over all ranges, provided
//!   `last' - first' + 1 ≤ 10485760` (10 MB). The Table IV exploited case
//!   `bytes=0-0,9437184-9437184` expands to exactly `bytes=0-10485759`,
//!   which is why CloudFront's amplification plateaus at 10 MB (Fig 6a).

use rangeamp_http::range::{ByteRangeSpec, RangeHeader};
use rangeamp_http::StatusCode;

use super::{
    laziness, pad_header, MissCtx, MissReply, MissResult, Vendor, VendorOptions, VendorProfile,
};
use crate::{
    assemble, HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError,
};

/// CloudFront's chunk size: 1 MB.
const CHUNK_SHIFT: u32 = 20;
/// Multi-range windows above this span are not expanded.
const MULTI_WINDOW_MAX: u64 = 10 * 1024 * 1024;

/// Calibrated so a single-part 206 to the SBR probe is ≈ 773 wire bytes
/// (Table IV: 1 048 826 / 1 356 ≈ 773 at 1 MB).
const PAD: usize = 306;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::CloudFront,
        limits: HeaderLimits::default(),
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(3, 200, 2_000),
        extra_headers: vec![
            ("Server", "AmazonS3".to_string()),
            ("X-Amz-Cf-Pop", "FRA56-C1".to_string()),
            (
                "X-Amz-Cf-Id",
                "yBsR9tTQjUYrJkT9Jh4mEXAMPLE7examPLEkt0vDfg==".to_string(),
            ),
            (
                "Via",
                "1.1 abc0123456789def.cloudfront.net (CloudFront)".to_string(),
            ),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

/// `first' = (first >> 20) << 20`.
pub(crate) fn align_down(pos: u64) -> u64 {
    (pos >> CHUNK_SHIFT) << CHUNK_SHIFT
}

/// `last' = (((last >> 20) + 1) << 20) - 1`, i.e. the last byte of the
/// 1 MB chunk containing `pos`. Written as a bit-or so offsets in the
/// final chunk of the u64 space (e.g. `bytes=0-18446744073709551615`)
/// saturate instead of wrapping.
pub(crate) fn align_up(pos: u64) -> u64 {
    pos | ((1 << CHUNK_SHIFT) - 1)
}

pub(super) fn handle_miss(ctx: &mut MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        return handle_multi(ctx, &header);
    }
    match header.specs()[0] {
        ByteRangeSpec::FromTo { first, last } => {
            expand_and_serve(ctx, &header, align_down(first), align_up(last))
        }
        ByteRangeSpec::From { first } => {
            // Open-ended: align the start down, keep the open end.
            let expanded = RangeHeader::from_first(align_down(first));
            let resp = ctx.fetch(Some(&expanded))?;
            Ok(serve_requested_from(ctx, &header, resp))
        }
        // Suffix ranges are not chunk-alignable: relayed verbatim.
        ByteRangeSpec::Suffix { .. } => laziness(ctx),
    }
}

fn handle_multi(ctx: &mut MissCtx<'_>, header: &RangeHeader) -> Result<MissResult, UpstreamError> {
    let all_from_to = header
        .specs()
        .iter()
        .all(|s| matches!(s, ByteRangeSpec::FromTo { .. }));
    if !all_from_to {
        // Open/suffix mixtures cannot be chunk-aligned; CloudFront still
        // does not relay them verbatim (it is absent from Table II).
        return super::coalesced_forward(&profile(), ctx);
    }
    let mut min_first = u64::MAX;
    let mut max_last = 0u64;
    for spec in header.specs() {
        if let ByteRangeSpec::FromTo { first, last } = *spec {
            min_first = min_first.min(first);
            max_last = max_last.max(last);
        }
    }
    let first = align_down(min_first);
    let last = align_up(max_last);
    // span > MULTI_WINDOW_MAX, phrased without the +1 so a window ending
    // at u64::MAX cannot overflow.
    if last - first >= MULTI_WINDOW_MAX {
        return laziness(ctx);
    }
    expand_and_serve(ctx, header, first, last)
}

/// Fetches the expanded window and slices the client's requested range(s)
/// out of the returned partial (or full) body.
fn expand_and_serve(
    ctx: &MissCtx<'_>,
    requested: &RangeHeader,
    first: u64,
    last: u64,
) -> Result<MissResult, UpstreamError> {
    let expanded = RangeHeader::from_to(first, last);
    let resp = ctx.fetch(Some(&expanded))?;
    Ok(serve_requested_from(ctx, requested, resp))
}

fn serve_requested_from(
    ctx: &MissCtx<'_>,
    requested: &RangeHeader,
    resp: rangeamp_http::Response,
) -> MissResult {
    match resp.status() {
        StatusCode::OK => MissResult::new(MissReply::ServeFromFull(resp), true),
        StatusCode::PARTIAL_CONTENT => {
            // Multi-range clients get CloudFront's multipart assembled from
            // the expanded window; dropped (unsatisfiable) parts simply
            // don't appear — which is why the exploited case yields 1 part
            // for a 1 MB file and 2 parts past ~9 MB (Table IV note).
            let policy = if requested.is_multi() {
                MultiReplyPolicy::NPartNoOverlapCheck
            } else {
                profile().multi_reply
            };
            match assemble::serve_from_partial(requested, &resp, policy) {
                Some(client_resp) => MissResult::new(MissReply::Direct(client_resp), false),
                None => MissResult::new(MissReply::Passthrough(resp), false),
            }
        }
        _ => {
            let _ = ctx; // origin errors flow straight back
            MissResult::new(MissReply::Passthrough(resp), false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn alignment_arithmetic_matches_the_paper() {
        assert_eq!(align_down(0), 0);
        assert_eq!(align_up(0), 1_048_575);
        assert_eq!(align_down(9_437_184), 9_437_184);
        assert_eq!(align_up(9_437_184), 10_485_759);
        // The paper's worked example: bytes=0-0,9437184-9437184 expands
        // to bytes=0-10485759.
        assert_eq!(align_down(0), 0);
        assert_eq!(align_up(9_437_184) - align_down(0) + 1, 10_485_760);
    }

    #[test]
    fn single_range_expands_to_one_chunk() {
        let run = run_vendor(Vendor::CloudFront, 25 * MB, "bytes=0-0");
        assert_eq!(run.forwarded, vec![Some("bytes=0-1048575".to_string())]);
        let origin = run.origin_response_bytes;
        assert!(
            origin > MB && origin < MB + 4096,
            "1 MB chunk, got {origin}"
        );
        assert_eq!(run.client_response.body().len(), 1);
    }

    #[test]
    fn exploited_multi_case_expands_to_10mb_window() {
        let run = run_vendor(Vendor::CloudFront, 25 * MB, "bytes=0-0,9437184-9437184");
        assert_eq!(run.forwarded, vec![Some("bytes=0-10485759".to_string())]);
        let origin = run.origin_response_bytes;
        assert!(
            origin > 10 * MB && origin < 10 * MB + 4096,
            "10 MB window, got {origin}"
        );
        // Client receives a small 2-part multipart.
        let body = run.client_response.body().len();
        assert!(body < 1024, "tiny multipart expected, got {body}");
    }

    #[test]
    fn multi_window_over_10mb_is_relayed_verbatim() {
        let range = "bytes=0-0,20971520-20971520";
        let run = run_vendor(Vendor::CloudFront, 25 * MB, range);
        assert_eq!(run.forwarded, vec![Some(range.to_string())]);
    }

    #[test]
    fn one_mb_file_yields_single_part_for_exploited_case() {
        // The second range (9437184-) is unsatisfiable for a 1 MB file.
        let run = run_vendor(Vendor::CloudFront, MB, "bytes=0-0,9437184-9437184");
        assert_eq!(run.forwarded, vec![Some("bytes=0-10485759".to_string())]);
        // Origin clamps to the 1 MB file.
        assert!(run.origin_response_bytes < MB + 4096);
    }

    #[test]
    fn suffix_is_relayed_verbatim() {
        let run = run_vendor(Vendor::CloudFront, MB, "bytes=-1");
        assert_eq!(run.forwarded, vec![Some("bytes=-1".to_string())]);
    }

    #[test]
    fn u64_boundary_last_saturates_instead_of_wrapping() {
        // Found by the conformance fuzzer: align_up(u64::MAX) used to wrap
        // to 0 and panic (debug) or forward bytes=0--1 (release).
        assert_eq!(align_up(u64::MAX), u64::MAX);
        assert_eq!(align_down(u64::MAX), !((1u64 << CHUNK_SHIFT) - 1));
        let run = run_vendor(Vendor::CloudFront, MB, "bytes=0-18446744073709551615");
        assert_eq!(
            run.forwarded,
            vec![Some("bytes=0-18446744073709551615".to_string())]
        );
        // Origin clamps the open-to-EOF window; the client sees the file.
        assert_eq!(run.client_response.body().len(), MB);
    }

    #[test]
    fn u64_boundary_multi_window_is_relayed_not_overflowed() {
        // Companion finding: the 10 MB window test `last - first + 1`
        // overflowed for all-FromTo sets reaching the end of u64 space.
        let range = "bytes=0-0,1048576-18446744073709551615";
        let run = run_vendor(Vendor::CloudFront, MB, range);
        assert_eq!(run.forwarded, vec![Some(range.to_string())]);
    }
}
