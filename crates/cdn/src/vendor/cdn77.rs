//! CDN77 behaviour profile.
//!
//! Paper findings:
//! * Table I — *Deletion* for `bytes=first-last` when `first < 1024`.
//! * Table II — multi-range headers are forwarded *unchanged* (OBR FCDN).
//! * §IV-C — CDN77 keeps the back-to-origin connection alive when the
//!   client aborts the front-end connection.
//! * §V-C — limits a single request header to 16 KB.
//! * §VII-A — post-disclosure, CDN77 deployed overlap detection; model
//!   that with [`MitigationConfig::reject_overlapping`].
//!
//! [`MitigationConfig::reject_overlapping`]: crate::MitigationConfig

use rangeamp_http::range::ByteRangeSpec;

use super::{
    deletion, laziness, pad_header, MissCtx, MissResult, Vendor, VendorOptions, VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// First-byte threshold under which the Range header is deleted.
const DELETE_BELOW: u64 = 1024;

/// Calibrated so a single-part 206 to the SBR probe is ≈ 650 wire bytes
/// (Table IV: 26 214 650 / 40 390 ≈ 649 at 25 MB).
const PAD: usize = 284;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::Cdn77,
        limits: HeaderLimits {
            single_header_bytes: Some(16 * 1024),
            ..HeaderLimits::default()
        },
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: true,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(2, 100, 1_000),
        extra_headers: vec![
            ("Server", "CDN77-Turbo".to_string()),
            ("X-77-NZT", "AZ3BGR".to_string()),
            ("X-77-Cache", "MISS".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(ctx: &mut MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        // Table II: forwarded unchanged — the OBR FCDN vulnerability.
        return laziness(ctx);
    }
    match header.specs()[0] {
        ByteRangeSpec::FromTo { first, .. } if first < DELETE_BELOW => deletion(ctx),
        _ => laziness(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    #[test]
    fn deletes_low_first_last_ranges() {
        let run = run_vendor(Vendor::Cdn77, 1 << 20, "bytes=0-0");
        assert_eq!(run.forwarded, vec![None]);
        assert!(run.origin_response_bytes > 1 << 20);
    }

    #[test]
    fn first_at_or_above_1024_is_lazy() {
        let run = run_vendor(Vendor::Cdn77, 1 << 20, "bytes=1024-1024");
        assert_eq!(run.forwarded, vec![Some("bytes=1024-1024".to_string())]);
        assert!(run.origin_response_bytes < 4096);
    }

    #[test]
    fn boundary_below_1024_is_deleted() {
        let run = run_vendor(Vendor::Cdn77, 1 << 20, "bytes=1023-1023");
        assert_eq!(run.forwarded, vec![None]);
    }

    #[test]
    fn suffix_is_lazy() {
        let run = run_vendor(Vendor::Cdn77, 1 << 20, "bytes=-1");
        assert_eq!(run.forwarded, vec![Some("bytes=-1".to_string())]);
    }

    #[test]
    fn multi_range_forwarded_unchanged_fcdn_vulnerable() {
        let range = "bytes=-1024,0-,0-";
        let run = run_vendor(Vendor::Cdn77, 4096, range);
        assert_eq!(run.forwarded, vec![Some(range.to_string())]);
    }

    #[test]
    fn keeps_backend_alive_on_abort() {
        assert!(profile().keeps_backend_alive_on_abort);
    }
}
