//! The 13 CDN vendor behaviour profiles (paper §III, Tables I–III, §V-C).
//!
//! Each vendor module implements two things:
//!
//! * `profile()` — the declarative part: header limits, multi-range reply
//!   policy, response header overhead (calibrated against Table IV /
//!   Fig 6 client-side traffic), cache behaviour;
//! * `handle_miss()` — the mechanistic part: how the vendor interacts
//!   with the upstream on a cache miss, including every conditional rule
//!   of Table I (Azure's dual connection, KeyCDN's request-twice
//!   behaviour, StackPath's 206-triggered re-forward, CloudFront's 1 MB
//!   alignment arithmetic, Huawei's 10 MB threshold, ...).

mod akamai;
mod alibaba;
mod azure;
mod cdn77;
mod cdnsun;
mod cloudflare;
mod cloudfront;
mod fastly;
mod gcore;
mod huawei;
mod keycdn;
mod stackpath;
mod tencent;

use std::fmt;

use rangeamp_http::range::RangeHeader;
use rangeamp_http::{Request, Response, StatusCode};
use rangeamp_net::{Segment, SpanKind, Telemetry};

use crate::resilience::{Resilience, RetryPolicy};
use crate::{
    Cache, HeaderLimits, MitigationConfig, MultiReplyPolicy, UpstreamError, UpstreamService,
};

/// The 13 CDN vendors examined by the paper (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// Akamai.
    Akamai,
    /// Alibaba Cloud.
    AlibabaCloud,
    /// Azure CDN.
    Azure,
    /// CDN77.
    Cdn77,
    /// CDNsun.
    CdnSun,
    /// Cloudflare.
    Cloudflare,
    /// Amazon CloudFront.
    CloudFront,
    /// Fastly.
    Fastly,
    /// G-Core Labs.
    GCoreLabs,
    /// Huawei Cloud.
    HuaweiCloud,
    /// KeyCDN.
    KeyCdn,
    /// StackPath.
    StackPath,
    /// Tencent Cloud.
    TencentCloud,
}

impl Vendor {
    /// All vendors in the paper's (alphabetical) order.
    pub const ALL: [Vendor; 13] = [
        Vendor::Akamai,
        Vendor::AlibabaCloud,
        Vendor::Azure,
        Vendor::Cdn77,
        Vendor::CdnSun,
        Vendor::Cloudflare,
        Vendor::CloudFront,
        Vendor::Fastly,
        Vendor::GCoreLabs,
        Vendor::HuaweiCloud,
        Vendor::KeyCdn,
        Vendor::StackPath,
        Vendor::TencentCloud,
    ];

    /// Marketing name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Vendor::Akamai => "Akamai",
            Vendor::AlibabaCloud => "Alibaba Cloud",
            Vendor::Azure => "Azure",
            Vendor::Cdn77 => "CDN77",
            Vendor::CdnSun => "CDNsun",
            Vendor::Cloudflare => "Cloudflare",
            Vendor::CloudFront => "CloudFront",
            Vendor::Fastly => "Fastly",
            Vendor::GCoreLabs => "G-Core Labs",
            Vendor::HuaweiCloud => "Huawei Cloud",
            Vendor::KeyCdn => "KeyCDN",
            Vendor::StackPath => "StackPath",
            Vendor::TencentCloud => "Tencent Cloud",
        }
    }

    /// The vendor's default profile with the configuration the paper found
    /// vulnerable (Table I footnotes: Alibaba/Tencent `Range` option
    /// *disabled*, Huawei's *enabled*, Cloudflare target path cacheable).
    pub fn profile(&self) -> VendorProfile {
        match self {
            Vendor::Akamai => akamai::profile(),
            Vendor::AlibabaCloud => alibaba::profile(),
            Vendor::Azure => azure::profile(),
            Vendor::Cdn77 => cdn77::profile(),
            Vendor::CdnSun => cdnsun::profile(),
            Vendor::Cloudflare => cloudflare::profile(),
            Vendor::CloudFront => cloudfront::profile(),
            Vendor::Fastly => fastly::profile(),
            Vendor::GCoreLabs => gcore::profile(),
            Vendor::HuaweiCloud => huawei::profile(),
            Vendor::KeyCdn => keycdn::profile(),
            Vendor::StackPath => stackpath::profile(),
            Vendor::TencentCloud => tencent::profile(),
        }
    }

    /// Profile configured as an OBR front-end CDN (Table II): identical to
    /// [`Vendor::profile`] except for Cloudflare, whose FCDN vulnerability
    /// requires the target path configured as *Bypass* (not cached).
    pub fn fcdn_profile(&self) -> VendorProfile {
        match self {
            Vendor::Cloudflare => cloudflare::bypass_profile(),
            other => other.profile(),
        }
    }

    /// Whether Table II lists this vendor as OBR-FCDN-vulnerable.
    pub fn is_fcdn_vulnerable(&self) -> bool {
        matches!(
            self,
            Vendor::Cdn77 | Vendor::CdnSun | Vendor::Cloudflare | Vendor::StackPath
        )
    }

    /// Whether Table III lists this vendor as OBR-BCDN-vulnerable.
    pub fn is_bcdn_vulnerable(&self) -> bool {
        matches!(self, Vendor::Akamai | Vendor::Azure | Vendor::StackPath)
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A vendor's complete behaviour profile.
#[derive(Debug, Clone)]
pub struct VendorProfile {
    /// Which vendor this is.
    pub vendor: Vendor,
    /// Request-header size limits (§V-C).
    pub limits: HeaderLimits,
    /// Reply policy for multi-range requests served from a full copy.
    pub multi_reply: MultiReplyPolicy,
    /// Whether the edge caches full representations (Cloudflare in
    /// *Bypass* mode does not).
    pub cache_enabled: bool,
    /// Whether the back-to-origin connection survives a client abort
    /// (paper §IV-C names CDNsun and CDN77).
    pub keeps_backend_alive_on_abort: bool,
    /// Active CDN-side mitigations (none by default).
    pub mitigation: MitigationConfig,
    /// Retry budget for failed back-to-origin fetches, in virtual-time
    /// capped exponential backoff. Differentiated per vendor (Fastly
    /// fails fast; CloudFront and Akamai retry hardest) — under a flaky
    /// origin this multiplies the SBR amplification the paper measures,
    /// which is what the `retry_amp` campaign quantifies.
    pub retry: RetryPolicy,
    /// Headers this vendor injects into client-facing responses. Their
    /// total size is calibrated so client-side response traffic matches
    /// Table IV / Fig 6b (Akamai and G-Core insert fewer headers than
    /// Cloudflare, hence their larger amplification factors).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Vendor-specific toggles.
    pub options: VendorOptions,
}

/// Configurable vendor options surfaced by the paper's Table I footnotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorOptions {
    /// Alibaba/Tencent `Range` option: `true` ⇒ back-to-origin requests
    /// carry no `Range` header (the vulnerable setting).
    pub range_option_deletes: bool,
    /// Huawei's `Range` option: vulnerable when *enabled*.
    pub huawei_range_option_enabled: bool,
    /// Cloudflare cache rule for the target path: `true` = *Bypass*
    /// (OBR-FCDN-vulnerable), `false` = cacheable (SBR-vulnerable).
    pub cloudflare_bypass: bool,
}

impl Default for VendorOptions {
    fn default() -> VendorOptions {
        VendorOptions {
            range_option_deletes: true,
            huawei_range_option_enabled: true,
            cloudflare_bypass: false,
        }
    }
}

impl VendorProfile {
    /// Returns a copy with the given mitigation applied (used by the
    /// ablation benches).
    pub fn with_mitigation(mut self, mitigation: MitigationConfig) -> VendorProfile {
        self.mitigation = mitigation;
        self
    }

    /// The identifier this vendor's edges write into upstream `Via`
    /// headers (RFC 7230 §5.7.1) — also what the OBR max-n solver must
    /// budget for on the forwarded request.
    pub fn via_token(&self) -> String {
        format!(
            "{}-edge",
            self.vendor.name().to_lowercase().replace(' ', "-")
        )
    }
}

/// Everything a vendor's miss handler may do: inspect the request, probe
/// representation metadata, and perform metered upstream fetches.
pub struct MissCtx<'a> {
    /// The client's request.
    pub req: &'a Request,
    /// The client's parsed `Range` header, if present and valid.
    pub range: Option<RangeHeader>,
    /// Representation size, when metadata is available.
    pub resource_size: Option<u64>,
    pub(crate) upstream: &'a dyn UpstreamService,
    pub(crate) segment: &'a Segment,
    pub(crate) cache: &'a Cache,
    pub(crate) cache_key: String,
    /// When the client aborted and this vendor drops back-end connections
    /// on abort (paper §IV-C), upstream transfers stop after roughly this
    /// many payload bytes.
    pub(crate) backend_truncate: Option<u64>,
    /// Identifier appended in the upstream `Via` header.
    pub(crate) via_token: &'a str,
    /// The node's retry/breaker machinery, consulted on every fetch.
    pub(crate) resilience: &'a Resilience,
    /// Telemetry bundle for hop spans + metrics, when tracing is on.
    pub(crate) telemetry: Option<&'a Telemetry>,
}

impl fmt::Debug for MissCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MissCtx")
            .field("uri", &self.req.uri().to_string())
            .field("range", &self.range.as_ref().map(|r| r.to_string()))
            .field("resource_size", &self.resource_size)
            .finish()
    }
}

impl MissCtx<'_> {
    /// Performs a metered back-to-origin fetch with the `Range` header
    /// replaced by `range` (`None` ⇒ *Deletion*), under the node's retry
    /// policy and circuit breaker.
    ///
    /// If the client has aborted and the vendor does not keep back-end
    /// connections alive, the transfer is truncated (§IV-C: most CDNs
    /// "break the corresponding back-end connections when the front-end
    /// connections are abnormally cut off" — the Triukose et al. defense
    /// the paper discusses in §VIII).
    ///
    /// # Errors
    ///
    /// Returns the last attempt's [`UpstreamError`] once the retry budget
    /// is exhausted, or [`UpstreamError::CircuitOpen`] without any fetch
    /// when the breaker refuses.
    pub fn fetch(&self, range: Option<&RangeHeader>) -> Result<Response, UpstreamError> {
        if let Some(limit) = self.backend_truncate {
            return self.fetch_truncated(range, limit);
        }
        self.fetch_with_retry(range, None)
    }

    /// Like [`MissCtx::fetch`], but the edge aborts the connection once
    /// roughly `payload_limit` body bytes have arrived (Azure's 8 MB
    /// window, §V-A). The overshoot models in-flight data at abort time
    /// ("actual response traffic ... a little larger than 8 MB").
    ///
    /// The returned response carries only the received body prefix.
    ///
    /// # Errors
    ///
    /// Same failure surface as [`MissCtx::fetch`].
    pub fn fetch_truncated(
        &self,
        range: Option<&RangeHeader>,
        payload_limit: u64,
    ) -> Result<Response, UpstreamError> {
        self.fetch_with_retry(range, Some(payload_limit))
    }

    /// The retry loop: attempts are paced by the profile's [`RetryPolicy`]
    /// (backoff advances the node's virtual clock), gated by the circuit
    /// breaker, and individually metered so the surplus bytes of retries
    /// are attributable (the `retry_amp` accounting).
    fn fetch_with_retry(
        &self,
        range: Option<&RangeHeader>,
        payload_limit: Option<u64>,
    ) -> Result<Response, UpstreamError> {
        let resilience = self.resilience;
        let policy = resilience.retry();
        let mut attempt: u32 = 0;
        loop {
            if !resilience.allow_request() {
                resilience.with_stats(|s| s.breaker_short_circuits += 1);
                if let Some(tel) = self.telemetry {
                    let now = resilience.clock().now_millis();
                    let segment = self.segment.name().to_string();
                    let mut span = tel.tracer().start_span(
                        "breaker-short-circuit",
                        SpanKind::BreakerTransition,
                        now,
                    );
                    span.attr("segment", segment.clone());
                    span.attr("state", resilience.breaker_state());
                    span.finish(now);
                    tel.metrics().counter_add(
                        "breaker_short_circuits_total",
                        &[("segment", &segment)],
                        1,
                    );
                }
                return Err(UpstreamError::CircuitOpen);
            }
            attempt += 1;
            let before = self.segment.stats();
            let span = self.telemetry.map(|tel| {
                let mut span = tel.tracer().start_span(
                    if attempt > 1 {
                        "upstream-retry"
                    } else {
                        "upstream-fetch"
                    },
                    if attempt > 1 {
                        SpanKind::RetryAttempt
                    } else {
                        SpanKind::Hop
                    },
                    resilience.clock().now_millis(),
                );
                span.attr("segment", self.segment.name().to_string());
                span.attr("attempt", attempt.to_string());
                span.attr(
                    "range",
                    range.map_or_else(|| "deleted".to_string(), RangeHeader::to_string),
                );
                span
            });
            let outcome = self.fetch_once(range, payload_limit);
            if attempt > 1 {
                let after = self.segment.stats();
                resilience.with_stats(|s| {
                    s.retry_request_bytes += after.request_bytes - before.request_bytes;
                    s.retry_response_bytes += after.response_bytes - before.response_bytes;
                });
            }
            if let (Some(mut span), Some(tel)) = (span, self.telemetry) {
                let after = self.segment.stats();
                let req_bytes = after.request_bytes - before.request_bytes;
                let resp_bytes = after.response_bytes - before.response_bytes;
                span.add_bytes_out(req_bytes);
                span.add_bytes_in(resp_bytes);
                match &outcome {
                    Ok(resp) => span.attr("status", resp.status().as_u16().to_string()),
                    Err(err) => span.attr("error", err.to_string()),
                }
                span.finish(resilience.clock().now_millis());
                let segment = self.segment.name().to_string();
                tel.metrics()
                    .counter_add("upstream_attempts_total", &[("segment", &segment)], 1);
                if attempt > 1 {
                    tel.metrics().counter_add(
                        "upstream_retries_total",
                        &[("segment", &segment)],
                        1,
                    );
                }
                tel.metrics()
                    .observe("hop_request_bytes", &[("segment", &segment)], req_bytes);
                tel.metrics()
                    .observe("hop_response_bytes", &[("segment", &segment)], resp_bytes);
            }
            resilience.with_stats(|s| s.attempts += 1);
            // An upstream 5xx is a failed exchange for resilience purposes
            // even though bytes were exchanged successfully.
            let failed = match &outcome {
                Ok(resp) => resp.status().as_u16() >= 500,
                Err(_) => true,
            };
            if !failed {
                self.record_breaker_outcome(true);
                return outcome;
            }
            self.record_breaker_outcome(false);
            resilience.with_stats(|s| s.upstream_failures += 1);
            let retryable = match &outcome {
                Ok(_) => true,
                Err(err) => err.is_retryable(),
            };
            if !retryable || attempt >= policy.max_attempts {
                return outcome;
            }
            resilience.with_stats(|s| s.retries += 1);
            resilience
                .clock()
                .advance_millis(policy.backoff_ms(attempt - 1));
        }
    }

    /// Feeds a fetch outcome to the circuit breaker, emitting a
    /// transition span + metric when the breaker changes state (detected
    /// by comparing the state name before and after — the breaker itself
    /// stays telemetry-free).
    fn record_breaker_outcome(&self, success: bool) {
        let state_before = self.resilience.breaker_state();
        if success {
            self.resilience.record_success();
        } else {
            self.resilience.record_failure();
        }
        if let Some(tel) = self.telemetry {
            let state_after = self.resilience.breaker_state();
            if state_after != state_before {
                let now = self.resilience.clock().now_millis();
                let segment = self.segment.name().to_string();
                let mut span =
                    tel.tracer()
                        .start_span("breaker-transition", SpanKind::BreakerTransition, now);
                span.attr("segment", segment.clone());
                span.attr("from", state_before);
                span.attr("to", state_after);
                span.finish(now);
                tel.metrics().counter_add(
                    "breaker_transitions_total",
                    &[("segment", &segment), ("to", state_after)],
                    1,
                );
            }
        }
    }

    /// One metered exchange. Partial deliveries (reset, truncation) are
    /// metered for the bytes that actually crossed the wire before the
    /// error is surfaced.
    fn fetch_once(
        &self,
        range: Option<&RangeHeader>,
        payload_limit: Option<u64>,
    ) -> Result<Response, UpstreamError> {
        const ABORT_OVERSHOOT: u64 = 64 * 1024;
        let req = self.build_upstream_request(range);
        self.segment.send_request(&req);
        let mut resp = match self.upstream.handle(&req) {
            Ok(resp) => resp,
            Err(err) => {
                match &err {
                    UpstreamError::Reset { partial, delivered }
                    | UpstreamError::Truncated { partial, delivered } => {
                        self.segment.send_response_truncated(partial, *delivered);
                    }
                    UpstreamError::Timeout
                    | UpstreamError::Malformed { .. }
                    | UpstreamError::CircuitOpen => {}
                }
                return Err(err);
            }
        };
        if let Err(detail) = response_consistency(&resp) {
            // The bytes arrived and are metered, but the edge must not
            // assemble client data from a self-inconsistent response.
            self.segment.send_response(&resp);
            return Err(UpstreamError::Malformed { detail });
        }
        match payload_limit {
            None => {
                self.segment.send_response(&resp);
                Ok(resp)
            }
            Some(limit) => {
                let received_body = resp.body().len().min(limit + ABORT_OVERSHOOT);
                let header_bytes = resp.wire_len() - resp.body().len();
                self.segment
                    .send_response_truncated(&resp, header_bytes + received_body);
                if received_body < resp.body().len() {
                    let truncated = resp.body().slice(0, received_body);
                    resp.set_body(truncated);
                }
                Ok(resp)
            }
        }
    }

    /// Marks the cache key as previously requested, returning whether it
    /// already was (KeyCDN's two-step behaviour).
    pub fn mark_seen(&self) -> bool {
        self.cache.mark_seen(&self.cache_key)
    }

    fn build_upstream_request(&self, range: Option<&RangeHeader>) -> Request {
        let mut req = self.req.clone();
        req.headers_mut().remove("Range");
        if let Some(range) = range {
            req.headers_mut().append("Range", range.to_string());
        }
        // RFC 7230 §5.7.1: proxies append themselves to Via. This is also
        // the loop-detection breadcrumb (forwarding-loop attacks, paper
        // §VIII / Chen et al.).
        req.headers_mut()
            .append("Via", format!("1.1 {}", self.via_token));
        req
    }
}

/// What the node should tell the client after a miss was handled.
#[derive(Debug)]
pub struct MissResult {
    /// The reply strategy.
    pub reply: MissReply,
    /// Whether a full 200 obtained along the way may be cached.
    pub cacheable: bool,
    /// Additional path-specific response headers (beyond the profile's
    /// standing `extra_headers`).
    pub extra_headers: Vec<(String, String)>,
}

impl MissResult {
    /// Convenience constructor with no extra headers.
    pub fn new(reply: MissReply, cacheable: bool) -> MissResult {
        MissResult {
            reply,
            cacheable,
            extra_headers: Vec::new(),
        }
    }
}

/// Reply strategies a vendor can pick.
#[derive(Debug)]
pub enum MissReply {
    /// Relay an upstream response as the client response basis (the
    /// *Laziness* outcome).
    Passthrough(Response),
    /// The edge holds (what it believes is) the full representation;
    /// the node slices it to the client's requested range(s).
    ServeFromFull(Response),
    /// The vendor assembled the exact client-facing response itself
    /// (used by the Azure window and CloudFront expansion paths).
    Direct(Response),
    /// Refuse the request.
    Reject(StatusCode),
}

/// A single-part 206's `Content-Range` window must agree with the body
/// it frames; anything else is a malformed upstream response the edge
/// refuses to assemble client data from (it answers 502 instead).
fn response_consistency(resp: &Response) -> Result<(), String> {
    use rangeamp_http::range::ContentRange;

    let Some(value) = resp.headers().get("content-range") else {
        return Ok(());
    };
    match ContentRange::parse(value) {
        Ok(ContentRange::Satisfied { range, .. }) => {
            let body = resp.body().len();
            if range.len() != body {
                return Err(format!(
                    "Content-Range window of {} bytes frames a {body}-byte body",
                    range.len()
                ));
            }
            Ok(())
        }
        Ok(ContentRange::Unsatisfied { .. }) => Ok(()),
        Err(_) => Err(format!("unparseable Content-Range: {value}")),
    }
}

/// Dispatches a cache miss to the vendor's mechanistic handler.
pub(crate) fn handle_miss(
    profile: &VendorProfile,
    ctx: &mut MissCtx<'_>,
) -> Result<MissResult, UpstreamError> {
    match profile.vendor {
        Vendor::Akamai => akamai::handle_miss(ctx),
        Vendor::AlibabaCloud => alibaba::handle_miss(profile, ctx),
        Vendor::Azure => azure::handle_miss(ctx),
        Vendor::Cdn77 => cdn77::handle_miss(ctx),
        Vendor::CdnSun => cdnsun::handle_miss(ctx),
        Vendor::Cloudflare => cloudflare::handle_miss(profile, ctx),
        Vendor::CloudFront => cloudfront::handle_miss(ctx),
        Vendor::Fastly => fastly::handle_miss(ctx),
        Vendor::GCoreLabs => gcore::handle_miss(ctx),
        Vendor::HuaweiCloud => huawei::handle_miss(profile, ctx),
        Vendor::KeyCdn => keycdn::handle_miss(ctx),
        Vendor::StackPath => stackpath::handle_miss(ctx),
        Vendor::TencentCloud => tencent::handle_miss(profile, ctx),
    }
}

/// Shared helper: the plain *Laziness* outcome.
pub(crate) fn laziness(ctx: &MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let resp = ctx.fetch(ctx.range.as_ref())?;
    let cacheable = ctx.range.is_none();
    Ok(MissResult::new(MissReply::Passthrough(resp), cacheable))
}

/// Shared helper: the plain *Deletion* outcome.
pub(crate) fn deletion(ctx: &MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let resp = ctx.fetch(None)?;
    Ok(MissResult::new(MissReply::ServeFromFull(resp), true))
}

/// Shared helper for multi-range requests on vendors that neither forward
/// them unchanged (Table II) nor delete the header: coalesce the set and
/// forward the merged range, so back-to-origin traffic never exceeds the
/// requested span. The client reply is assembled from the partial per the
/// vendor's multi-range reply policy.
pub(crate) fn coalesced_forward(
    profile: &VendorProfile,
    ctx: &MissCtx<'_>,
) -> Result<MissResult, UpstreamError> {
    use rangeamp_http::range::{coalesce, ByteRangeSpec};

    let header = ctx
        .range
        .as_ref()
        .expect("coalesced_forward requires a Range header");
    let Some(complete) = ctx.resource_size else {
        // No metadata: forward the first range only (conservative).
        let first = RangeHeader::new(vec![header.specs()[0]])
            .expect("first spec of a valid header is valid");
        let resp = ctx.fetch(Some(&first))?;
        return Ok(MissResult::new(MissReply::Passthrough(resp), false));
    };
    let merged = coalesce(&header.resolve(complete));
    Ok(match merged.len() {
        0 => MissResult::new(
            MissReply::Direct(crate::assemble::not_satisfiable(complete)),
            false,
        ),
        1 => {
            let r = merged[0];
            let spec = if r.last + 1 == complete {
                ByteRangeSpec::From { first: r.first }
            } else {
                ByteRangeSpec::FromTo {
                    first: r.first,
                    last: r.last,
                }
            };
            let forwarded = RangeHeader::new(vec![spec]).expect("merged spec is valid");
            let resp = ctx.fetch(Some(&forwarded))?;
            match resp.status().as_u16() {
                200 => MissResult::new(MissReply::ServeFromFull(resp), true),
                206 => {
                    match crate::assemble::serve_from_partial(header, &resp, profile.multi_reply) {
                        Some(client_resp) => MissResult::new(MissReply::Direct(client_resp), false),
                        None => MissResult::new(MissReply::Passthrough(resp), false),
                    }
                }
                _ => MissResult::new(MissReply::Passthrough(resp), false),
            }
        }
        _ => {
            // Disjoint after merging: forward the merged set; the origin's
            // multipart reply (or full 200) flows back per its own shape.
            let specs = merged
                .iter()
                .map(|r| {
                    if r.last + 1 == complete {
                        ByteRangeSpec::From { first: r.first }
                    } else {
                        ByteRangeSpec::FromTo {
                            first: r.first,
                            last: r.last,
                        }
                    }
                })
                .collect();
            let forwarded = RangeHeader::new(specs).expect("merged specs are valid");
            let resp = ctx.fetch(Some(&forwarded))?;
            if resp.status().as_u16() == 200 {
                MissResult::new(MissReply::ServeFromFull(resp), true)
            } else {
                MissResult::new(MissReply::Passthrough(resp), false)
            }
        }
    })
}

/// Shared helper: a pad header sized to calibrate a vendor's client-side
/// response overhead against the paper's Fig 6b measurements.
pub(crate) fn pad_header(len: usize) -> (&'static str, String) {
    (
        "X-Edge-Trace",
        "0123456789abcdef".chars().cycle().take(len).collect(),
    )
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Miniature single-CDN testbed shared by the vendor unit tests.

    use std::sync::Arc;

    use rangeamp_http::{Request, Response};
    use rangeamp_net::{Segment, SegmentName};
    use rangeamp_origin::{OriginConfig, OriginServer, ResourceStore};

    use super::{Vendor, VendorProfile};
    use crate::EdgeNode;

    /// Everything a vendor test wants to assert on after one request.
    pub(crate) struct VendorRun {
        /// `Range` values of back-to-origin requests, in order
        /// (cumulative when reusing a [`VendorBed`]).
        pub forwarded: Vec<Option<String>>,
        /// Total origin-side response bytes (cumulative on a bed).
        pub origin_response_bytes: u64,
        /// Number of back-to-origin requests (cumulative on a bed).
        pub origin_request_count: u64,
        /// The client-facing response of the *latest* request.
        pub client_response: Response,
    }

    /// A reusable edge+origin pair (for multi-request behaviours like
    /// KeyCDN's request-twice dance).
    pub(crate) struct VendorBed {
        edge: EdgeNode,
        segment: Segment,
    }

    impl VendorBed {
        pub(crate) fn new(vendor: Vendor, size: u64) -> VendorBed {
            VendorBed::with_profile(vendor.profile(), size, true)
        }

        pub(crate) fn with_profile(
            profile: VendorProfile,
            size: u64,
            ranges_enabled: bool,
        ) -> VendorBed {
            let mut store = ResourceStore::new();
            store.add_synthetic("/target.bin", size, "application/octet-stream");
            let config = if ranges_enabled {
                OriginConfig::apache_default()
            } else {
                OriginConfig::ranges_disabled()
            };
            let origin = Arc::new(OriginServer::with_config(store, config));
            let segment = Segment::new(SegmentName::CdnOrigin);
            VendorBed {
                edge: EdgeNode::new(profile, origin, segment.clone()),
                segment,
            }
        }

        pub(crate) fn run(&self, range: &str) -> VendorRun {
            self.run_uri("/target.bin", range)
        }

        pub(crate) fn run_uri(&self, uri: &str, range: &str) -> VendorRun {
            let req = Request::get(uri)
                .header("Host", "victim.example")
                .header("Range", range)
                .build();
            let client_response = self.edge.handle(&req);
            let stats = self.segment.stats();
            VendorRun {
                forwarded: self.segment.capture().forwarded_ranges(),
                origin_response_bytes: stats.response_bytes,
                origin_request_count: stats.requests,
                client_response,
            }
        }
    }

    pub(crate) fn run_vendor(vendor: Vendor, size: u64, range: &str) -> VendorRun {
        VendorBed::new(vendor, size).run(range)
    }

    pub(crate) fn run_vendor_ranges_disabled(vendor: Vendor, size: u64, range: &str) -> VendorRun {
        VendorBed::with_profile(vendor.profile(), size, false).run(range)
    }

    pub(crate) fn run_vendor_with_profile(
        profile: VendorProfile,
        size: u64,
        range: &str,
        ranges_enabled: bool,
    ) -> VendorRun {
        VendorBed::with_profile(profile, size, ranges_enabled).run(range)
    }

    /// `bytes=0-,0-,...,0-` with `n` ranges.
    pub(crate) fn obr_header(n: usize) -> String {
        crate::ObrRangeCase::AllZeroOpen.header(n).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vendors_have_distinct_names() {
        let mut names: Vec<_> = Vendor::ALL.iter().map(|v| v.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn obr_eligibility_matches_tables_ii_and_iii() {
        let fcdns: Vec<_> = Vendor::ALL
            .iter()
            .filter(|v| v.is_fcdn_vulnerable())
            .collect();
        let bcdns: Vec<_> = Vendor::ALL
            .iter()
            .filter(|v| v.is_bcdn_vulnerable())
            .collect();
        assert_eq!(fcdns.len(), 4, "Table II lists 4 FCDNs");
        assert_eq!(bcdns.len(), 3, "Table III lists 3 BCDNs");
        // 4 × 3 minus the StackPath-with-itself case = 11 combos (Table V).
        let combos = fcdns.len() * bcdns.len() - 1;
        assert_eq!(combos, 11);
    }

    #[test]
    fn every_profile_is_constructible() {
        for vendor in Vendor::ALL {
            let profile = vendor.profile();
            assert_eq!(profile.vendor, vendor);
            let _ = vendor.fcdn_profile();
        }
    }

    #[test]
    fn cloudflare_fcdn_profile_disables_cache() {
        assert!(Vendor::Cloudflare.profile().cache_enabled);
        assert!(!Vendor::Cloudflare.fcdn_profile().cache_enabled);
        // Other vendors' fcdn profile is their default profile.
        assert!(Vendor::Cdn77.fcdn_profile().cache_enabled);
    }

    #[test]
    fn with_mitigation_overrides() {
        let profile = Vendor::Akamai
            .profile()
            .with_mitigation(MitigationConfig::strict());
        assert!(profile.mitigation.force_laziness);
    }
}
