//! Fastly behaviour profile.
//!
//! Paper findings:
//! * Table I — *Deletion* for `bytes=first-last` and `bytes=-suffix`.
//! * Table IV — exploited with `bytes=0-0`; amplification 31 820× at
//!   25 MB.
//! * §VII-A — Fastly acknowledged the report and investigated mitigations.

use rangeamp_http::range::ByteRangeSpec;

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissResult, Vendor, VendorOptions,
    VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Calibrated so a single-part 206 to the SBR probe is ≈ 820 wire bytes
/// (Table IV: 26 214 650 / 31 820 ≈ 824 at 25 MB).
const PAD: usize = 385;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::Fastly,
        limits: HeaderLimits::default(),
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::none(),
        extra_headers: vec![
            ("Via", "1.1 varnish".to_string()),
            ("X-Served-By", "cache-fra19131-FRA".to_string()),
            ("X-Cache-Hits", "0".to_string()),
            ("X-Timer", "S1577923200.155811,VS0,VE152".to_string()),
            ("Vary", "Accept-Encoding".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(ctx: &mut MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        return coalesced_forward(&profile(), ctx);
    }
    match header.specs()[0] {
        ByteRangeSpec::FromTo { .. } | ByteRangeSpec::Suffix { .. } => deletion(ctx),
        ByteRangeSpec::From { .. } => laziness(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    #[test]
    fn deletes_first_last_and_suffix() {
        for range in ["bytes=0-0", "bytes=-1"] {
            let run = run_vendor(Vendor::Fastly, 1 << 20, range);
            assert_eq!(run.forwarded, vec![None], "case {range}");
            assert!(run.origin_response_bytes > 1 << 20);
        }
    }

    #[test]
    fn open_ended_is_lazy() {
        let run = run_vendor(Vendor::Fastly, 1 << 20, "bytes=100-");
        assert_eq!(run.forwarded, vec![Some("bytes=100-".to_string())]);
    }

    #[test]
    fn multi_is_coalesced() {
        let run = run_vendor(Vendor::Fastly, 4096, "bytes=0-,0-");
        assert_eq!(run.forwarded, vec![Some("bytes=0-".to_string())]);
    }
}
