//! Azure CDN behaviour profile.
//!
//! Paper findings (§V-A item 2, Tables I/III/V):
//! * For `bytes=first-last` Azure first adopts *Deletion*. If the file
//!   exceeds 8 MB, Azure closes the first back-to-origin connection once
//!   a little more than 8 MB has arrived, and — when the requested range
//!   lies inside `[8388608, 16777215]` — opens a second connection with
//!   `Range: bytes=8388608-16777215`. Exploited with
//!   `bytes=8388608-8388608`, origin traffic saturates at ≈ 16 MB, which
//!   is why Azure's amplification plateaus beyond 16 MB files (Fig 6a).
//! * As a BCDN it answers up to 64 overlapping ranges with an n-part
//!   response (Table III); 64 is also its `Range` spec-count limit (§V-C).

use rangeamp_http::range::RangeHeader;

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissReply, MissResult, Vendor,
    VendorOptions, VendorProfile,
};
use crate::{
    assemble, HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError,
};

/// First window boundary: 8 MB.
pub(crate) const WINDOW_START: u64 = 8 * 1024 * 1024;
/// Second fetch covers `[8388608, 16777215]`.
pub(crate) const WINDOW_END: u64 = 16 * 1024 * 1024 - 1;

/// Calibrated so a single-part 206 to the SBR probe is ≈ 740 wire bytes
/// (Table IV: 1 048 826 / 1 401 ≈ 749 at 1 MB).
const PAD: usize = 290;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::Azure,
        limits: HeaderLimits {
            max_ranges: Some(64),
            ..HeaderLimits::default()
        },
        multi_reply: MultiReplyPolicy::NPartNoOverlapCheck,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(3, 500, 4_000),
        extra_headers: vec![
            ("Server", "ECAcc (sed/58B5)".to_string()),
            ("X-Cache-Status", "CONFIG_NOCACHE".to_string()),
            (
                "X-Azure-Ref",
                "0pZGVXwAAAADZ2DVx9NVaTq2eyWNTbCREWVZSMzBFREdFMDYxOQBjYmUx".to_string(),
            ),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(ctx: &mut MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        // ≤ 64 ranges (the node's limit check already rejected more):
        // span-coalesced fetch, then the n-part no-overlap-check reply.
        return coalesced_forward(&profile(), ctx);
    }
    let spec = header.specs()[0];
    let Some(size) = ctx.resource_size else {
        return deletion(ctx);
    };
    if size <= WINDOW_START {
        // F ≤ 8 MB: plain Deletion (Table I row 1).
        return deletion(ctx);
    }
    let Some(requested) = spec.resolve(size) else {
        // Unsatisfiable: Azure still fetched (deleted) in the paper's
        // model; serve the 416 from the full copy.
        return deletion(ctx);
    };
    if requested.last < WINDOW_START {
        // F > 8 MB, range in the first window: Deletion fetch aborted a
        // little past 8 MB; the range is served from the received prefix.
        let truncated = ctx.fetch_truncated(None, WINDOW_START)?;
        if !truncated.status().is_success() || truncated.body().len() < requested.last + 1 {
            // A shed (503) or otherwise short reply: nothing to slice.
            return Ok(MissResult::new(MissReply::Passthrough(truncated), false));
        }
        let meta = assemble::ReprMeta::of(&truncated);
        let slice = truncated.body().slice(requested.first, requested.last + 1);
        let resp = assemble::single_206(slice, requested, size, &meta);
        return Ok(MissResult::new(MissReply::Direct(resp), false));
    }
    if requested.first >= WINDOW_START && requested.last <= WINDOW_END {
        // Table I row 2 ("None & bytes=8388608-16777215"): the aborted
        // Deletion fetch, then a second connection with the fixed window.
        let _aborted = ctx.fetch_truncated(None, WINDOW_START)?;
        let window = RangeHeader::from_to(WINDOW_START, WINDOW_END.min(size - 1));
        let second = ctx.fetch(Some(&window))?;
        if let Some(resp) = assemble::slice_single_from_partial(requested, &second) {
            return Ok(MissResult::new(MissReply::Direct(resp), false));
        }
        return Ok(MissResult::new(MissReply::Passthrough(second), false));
    }
    // Ranges straddling the boundary or beyond 16 MB: forwarded as-is.
    let resp = ctx.fetch(Some(&header))?;
    Ok(MissResult::new(MissReply::Passthrough(resp), false))
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;
    use rangeamp_http::StatusCode;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn small_files_use_plain_deletion() {
        let run = run_vendor(Vendor::Azure, 4 * MB, "bytes=0-0");
        assert_eq!(run.forwarded, vec![None]);
        assert!(run.origin_response_bytes > 4 * MB);
    }

    #[test]
    fn large_file_window_range_triggers_dual_connection() {
        // The Table IV exploited case: bytes=8388608-8388608 on F > 8 MB.
        let run = run_vendor(Vendor::Azure, 25 * MB, "bytes=8388608-8388608");
        assert_eq!(
            run.forwarded,
            vec![None, Some("bytes=8388608-16777215".to_string())],
            "None & bytes=8388608-16777215 (Table I)"
        );
        // First connection ≈ 8 MB (aborted), second = 8 MB window.
        let origin = run.origin_response_bytes;
        assert!(
            origin > 16 * MB && origin < 17 * MB,
            "origin traffic should saturate near 16 MB, got {origin}"
        );
        assert_eq!(run.client_response.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(run.client_response.body().len(), 1);
    }

    #[test]
    fn large_file_low_range_served_from_aborted_first_connection() {
        let run = run_vendor(Vendor::Azure, 25 * MB, "bytes=0-0");
        assert_eq!(run.forwarded, vec![None], "single aborted fetch");
        let origin = run.origin_response_bytes;
        assert!(
            origin > 8 * MB && origin < 9 * MB,
            "aborted a little past 8 MB, got {origin}"
        );
        assert_eq!(run.client_response.body().len(), 1);
    }

    #[test]
    fn range_beyond_window_is_forwarded_lazily() {
        let run = run_vendor(Vendor::Azure, 25 * MB, "bytes=20000000-20000000");
        assert_eq!(
            run.forwarded,
            vec![Some("bytes=20000000-20000000".to_string())]
        );
    }

    #[test]
    fn bcdn_reply_is_n_part_up_to_64() {
        let run = run_vendor_ranges_disabled(Vendor::Azure, 1024, &obr_header(64));
        assert_eq!(run.client_response.status(), StatusCode::PARTIAL_CONTENT);
        assert!(run.client_response.body().len() > 64 * 1024);
    }

    #[test]
    fn more_than_64_ranges_rejected_at_the_edge() {
        let run = run_vendor_ranges_disabled(Vendor::Azure, 1024, &obr_header(65));
        assert_eq!(
            run.client_response.status(),
            StatusCode::REQUEST_HEADER_FIELDS_TOO_LARGE
        );
        assert_eq!(run.origin_request_count, 0);
    }
}
