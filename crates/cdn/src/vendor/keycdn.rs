//! KeyCDN behaviour profile.
//!
//! Paper findings (§V-A item 4, Table I):
//! * For `bytes=first-last` KeyCDN first adopts *Laziness* and does not
//!   cache the partial response. On the *same* range request again it
//!   adopts *Deletion* and caches — so the attacker sends every request
//!   twice ("bytes=0-0 & bytes=0-0", Table IV), and KeyCDN produces the
//!   largest origin-side traffic of all vendors (Fig 6c) at the cost of
//!   the lowest amplification factor (17 744× at 25 MB).

use rangeamp_http::range::ByteRangeSpec;

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissResult, Vendor, VendorOptions,
    VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Calibrated so each of the two 206 responses is ≈ 739 wire bytes
/// (Table IV: (2 × 26 214 650 + small) / 17 744 ≈ 2 × 739 at 25 MB).
const PAD: usize = 343;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::KeyCdn,
        limits: HeaderLimits::default(),
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(2, 200, 1_000),
        extra_headers: vec![
            ("Server", "keycdn-engine".to_string()),
            ("X-Edge-Location", "defr".to_string()),
            ("X-Cache-Key", "unmodified".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(ctx: &mut MissCtx<'_>) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        return coalesced_forward(&profile(), ctx);
    }
    match header.specs()[0] {
        ByteRangeSpec::FromTo { .. } => {
            if ctx.mark_seen() {
                // Second request for the same key: Deletion + cache.
                deletion(ctx)
            } else {
                // First request: Laziness, nothing cached.
                let resp = ctx.fetch(ctx.range.as_ref())?;
                Ok(MissResult::new(super::MissReply::Passthrough(resp), false))
            }
        }
        _ => laziness(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn first_request_is_lazy_second_is_deleted() {
        let bed = VendorBed::new(Vendor::KeyCdn, MB);
        let run1 = bed.run("bytes=0-0");
        assert_eq!(run1.forwarded, vec![Some("bytes=0-0".to_string())]);
        assert!(run1.origin_response_bytes < 4096, "no amplification yet");

        let run2 = bed.run("bytes=0-0");
        assert_eq!(
            run2.forwarded,
            vec![Some("bytes=0-0".to_string()), None],
            "cumulative capture: lazy then deleted"
        );
        assert!(run2.origin_response_bytes > MB, "second request amplifies");
    }

    #[test]
    fn third_request_hits_the_cache() {
        let bed = VendorBed::new(Vendor::KeyCdn, MB);
        bed.run("bytes=0-0");
        bed.run("bytes=0-0");
        let run3 = bed.run("bytes=0-0");
        assert_eq!(run3.origin_request_count, 2, "no third origin fetch");
    }

    #[test]
    fn suffix_is_always_lazy() {
        let bed = VendorBed::new(Vendor::KeyCdn, MB);
        bed.run("bytes=-1");
        let run2 = bed.run("bytes=-1");
        assert_eq!(
            run2.forwarded,
            vec![Some("bytes=-1".to_string()), Some("bytes=-1".to_string())]
        );
    }

    #[test]
    fn different_query_strings_are_independent_keys() {
        // Cache-busting resets the two-step dance, so the attacker pairs
        // requests per query string.
        let bed = VendorBed::new(Vendor::KeyCdn, MB);
        let r1 = bed.run_uri("/target.bin?rnd=1", "bytes=0-0");
        let r2 = bed.run_uri("/target.bin?rnd=2", "bytes=0-0");
        assert_eq!(r1.forwarded.last().unwrap(), &Some("bytes=0-0".to_string()));
        assert_eq!(r2.forwarded.last().unwrap(), &Some("bytes=0-0".to_string()));
    }
}
