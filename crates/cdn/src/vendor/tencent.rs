//! Tencent Cloud behaviour profile.
//!
//! Paper findings:
//! * Table I — *Deletion* for `bytes=first-last`, conditional on the
//!   `Range` origin-pull option being *disabled* (the vulnerable default
//!   modeled here).
//! * Table IV — exploited with `bytes=0-0`; amplification 32 438× at
//!   25 MB.
//! * §VII-A — Tencent confirmed and fixed the vulnerability.

use rangeamp_http::range::ByteRangeSpec;

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissResult, Vendor, VendorOptions,
    VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Calibrated so a single-part 206 to the SBR probe is ≈ 805 wire bytes
/// (Table IV: 26 214 650 / 32 438 ≈ 808 at 25 MB).
const PAD: usize = 364;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::TencentCloud,
        limits: HeaderLimits::default(),
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(3, 300, 3_000),
        extra_headers: vec![
            ("Server", "NWS_SPMid".to_string()),
            (
                "X-NWS-LOG-UUID",
                "a1b2c3d4-5678-90ab-cdef-1234567890ab".to_string(),
            ),
            ("X-Cache-Lookup", "Cache Miss".to_string()),
            ("X-Daa-Tunnel", "hop_count=1".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(
    profile: &VendorProfile,
    ctx: &mut MissCtx<'_>,
) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        return coalesced_forward(profile, ctx);
    }
    if !profile.options.range_option_deletes {
        return laziness(ctx);
    }
    match header.specs()[0] {
        ByteRangeSpec::FromTo { .. } => deletion(ctx),
        _ => laziness(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    #[test]
    fn deletes_first_last_only() {
        let run = run_vendor(Vendor::TencentCloud, 1 << 20, "bytes=0-0");
        assert_eq!(run.forwarded, vec![None]);
        assert!(run.origin_response_bytes > 1 << 20);

        let run = run_vendor(Vendor::TencentCloud, 1 << 20, "bytes=-1");
        assert_eq!(run.forwarded, vec![Some("bytes=-1".to_string())]);
    }

    #[test]
    fn hardened_option_restores_laziness() {
        let mut profile = profile();
        profile.options.range_option_deletes = false;
        let run = run_vendor_with_profile(profile, 1 << 20, "bytes=0-0", true);
        assert_eq!(run.forwarded, vec![Some("bytes=0-0".to_string())]);
    }

    #[test]
    fn multi_is_coalesced() {
        let run = run_vendor(Vendor::TencentCloud, 4096, "bytes=0-,0-");
        assert_eq!(run.forwarded, vec![Some("bytes=0-".to_string())]);
    }
}
