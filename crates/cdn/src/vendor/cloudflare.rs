//! Cloudflare behaviour profile.
//!
//! Paper findings:
//! * Table I — *Deletion* for `bytes=first-last` and `bytes=-suffix`,
//!   conditional on the target path being configured cacheable.
//! * Table II — with the path configured *Bypass*, multi-range headers
//!   are forwarded unchanged (OBR FCDN; exploited case `bytes=0-,0-,...`
//!   reaches the largest n of Table V: 10 750 against Akamai).
//! * §V-C — header budget `RL + 2·HHL + RHL ≤ 32411` bytes.
//! * §VII-A — Cloudflare declined to cache partial responses and insisted
//!   the behaviour is within spec; no mitigation was deployed.

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissResult, Vendor, VendorOptions,
    VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Calibrated so a single-part 206 to the SBR probe is ≈ 820 wire bytes
/// (Table IV: 26 214 650 / 31 836 ≈ 823 at 25 MB).
const PAD: usize = 337;

fn base_profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::Cloudflare,
        limits: HeaderLimits {
            cloudflare_budget: Some(32_411),
            ..HeaderLimits::default()
        },
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(2, 250, 2_000),
        extra_headers: vec![
            ("Server", "cloudflare".to_string()),
            ("CF-Ray", "5cd2f9af2ecf04fe-FRA".to_string()),
            ("CF-Cache-Status", "MISS".to_string()),
            ("Expect-CT", "max-age=604800, report-uri=\"https://report-uri.cloudflare.com/cdn-cgi/beacon/expect-ct\"".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

/// Default profile: target path cacheable (SBR-vulnerable, Table I).
pub(super) fn profile() -> VendorProfile {
    base_profile()
}

/// The *Bypass* configuration (OBR-FCDN-vulnerable, Table II).
pub(super) fn bypass_profile() -> VendorProfile {
    let mut profile = base_profile();
    profile.cache_enabled = false;
    profile.options.cloudflare_bypass = true;
    profile
}

pub(super) fn handle_miss(
    profile: &VendorProfile,
    ctx: &mut MissCtx<'_>,
) -> Result<MissResult, UpstreamError> {
    if profile.options.cloudflare_bypass {
        // Bypass: nothing is cached, everything is relayed verbatim.
        return laziness(ctx);
    }
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if header.is_multi() {
        return coalesced_forward(profile, ctx);
    }
    // Cacheable path: Cloudflare wants the whole object for its cache.
    deletion(ctx)
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    #[test]
    fn cacheable_mode_deletes_all_single_forms() {
        for range in ["bytes=0-0", "bytes=-1", "bytes=5-"] {
            let run = run_vendor(Vendor::Cloudflare, 1 << 20, range);
            assert_eq!(run.forwarded, vec![None], "case {range}");
            assert!(run.origin_response_bytes > 1 << 20);
        }
    }

    #[test]
    fn bypass_mode_relays_everything_unchanged() {
        for range in ["bytes=0-0", "bytes=0-,0-,0-"] {
            let run = run_vendor_with_profile(bypass_profile(), 4096, range, true);
            assert_eq!(run.forwarded, vec![Some(range.to_string())], "case {range}");
        }
    }

    #[test]
    fn bypass_mode_never_caches() {
        assert!(!bypass_profile().cache_enabled);
        assert!(profile().cache_enabled);
    }

    #[test]
    fn cacheable_multi_is_coalesced() {
        let run = run_vendor(Vendor::Cloudflare, 4096, "bytes=0-,0-");
        assert_eq!(run.forwarded, vec![Some("bytes=0-".to_string())]);
    }

    #[test]
    fn budget_limit_is_modeled() {
        assert_eq!(profile().limits.cloudflare_budget, Some(32_411));
    }
}
