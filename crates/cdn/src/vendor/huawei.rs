//! Huawei Cloud behaviour profile.
//!
//! Paper findings (Table I, conditional on the `Range` origin-pull option
//! being *enabled* — the opposite polarity of Alibaba/Tencent):
//! * `bytes=-suffix` with F < 10 MB → *Deletion* (one full fetch).
//! * `bytes=first-last` with F ≥ 10 MB → "None & None": two full
//!   back-to-origin fetches for a single client request, which is why the
//!   Table IV exploited case switches from `bytes=-1` to `bytes=0-0` at
//!   10 MB and the measured client-side traffic roughly doubles.
//! * §VII-A — Huawei rated the issue high-risk and fixed it.

use rangeamp_http::range::ByteRangeSpec;

use super::{
    coalesced_forward, deletion, laziness, pad_header, MissCtx, MissReply, MissResult, Vendor,
    VendorOptions, VendorProfile,
};
use crate::{HeaderLimits, MitigationConfig, MultiReplyPolicy, RetryPolicy, UpstreamError};

/// Threshold between the suffix-deletion and the double-fetch regimes.
pub(crate) const SIZE_THRESHOLD: u64 = 10 * 1024 * 1024;

/// Calibrated so a single-part 206 to the SBR probe is ≈ 716 wire bytes
/// (Table IV: 1 048 826 / 1 465 ≈ 716 at 1 MB).
const PAD: usize = 334;

/// Extra per-response header bytes on the double-fetch path, calibrated so
/// client traffic ≈ 1 440 bytes there (Table IV: 2 × 26 214 650 / 36 335).
const DOUBLE_PATH_PAD: usize = 714;

pub(super) fn profile() -> VendorProfile {
    VendorProfile {
        vendor: Vendor::HuaweiCloud,
        limits: HeaderLimits::default(),
        multi_reply: MultiReplyPolicy::Coalesce,
        cache_enabled: true,
        keeps_backend_alive_on_abort: false,
        mitigation: MitigationConfig::none(),
        retry: RetryPolicy::new(3, 250, 2_000),
        extra_headers: vec![
            ("Server", "CDN".to_string()),
            ("X-CCDN-CacheTTL", "3600".to_string()),
            ("X-HCS-Proxy-Type", "1".to_string()),
            pad_header(PAD),
        ],
        options: VendorOptions::default(),
    }
}

pub(super) fn handle_miss(
    profile: &VendorProfile,
    ctx: &mut MissCtx<'_>,
) -> Result<MissResult, UpstreamError> {
    let Some(header) = ctx.range.clone() else {
        return laziness(ctx);
    };
    if !profile.options.huawei_range_option_enabled {
        // Hardened: option disabled ⇒ ranges relayed verbatim.
        if header.is_multi() {
            return coalesced_forward(profile, ctx);
        }
        return laziness(ctx);
    }
    if header.is_multi() {
        return coalesced_forward(profile, ctx);
    }
    let size = ctx.resource_size;
    match header.specs()[0] {
        ByteRangeSpec::Suffix { .. } if size.is_none_or(|s| s < SIZE_THRESHOLD) => deletion(ctx),
        ByteRangeSpec::FromTo { .. } if size.is_some_and(|s| s >= SIZE_THRESHOLD) => {
            // "None & None": a validation fetch followed by the real one.
            let _first_fetch = ctx.fetch(None)?;
            let full = ctx.fetch(None)?;
            let mut result = MissResult::new(MissReply::ServeFromFull(full), true);
            result.extra_headers.push((
                "X-HCS-Origin-Detail".to_string(),
                "f".repeat(DOUBLE_PATH_PAD),
            ));
            Ok(result)
        }
        _ => laziness(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::*;
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn small_file_suffix_is_deleted() {
        let run = run_vendor(Vendor::HuaweiCloud, MB, "bytes=-1");
        assert_eq!(run.forwarded, vec![None]);
        assert!(run.origin_response_bytes > MB);
    }

    #[test]
    fn small_file_first_last_is_lazy() {
        let run = run_vendor(Vendor::HuaweiCloud, MB, "bytes=0-0");
        assert_eq!(run.forwarded, vec![Some("bytes=0-0".to_string())]);
        assert!(run.origin_response_bytes < 4096);
    }

    #[test]
    fn large_file_first_last_double_fetches() {
        let run = run_vendor(Vendor::HuaweiCloud, 12 * MB, "bytes=0-0");
        assert_eq!(run.forwarded, vec![None, None], "None & None (Table I)");
        assert!(
            run.origin_response_bytes > 24 * MB,
            "two full copies expected, got {}",
            run.origin_response_bytes
        );
        assert_eq!(run.client_response.body().len(), 1);
    }

    #[test]
    fn large_file_suffix_is_lazy() {
        let run = run_vendor(Vendor::HuaweiCloud, 12 * MB, "bytes=-1");
        assert_eq!(run.forwarded, vec![Some("bytes=-1".to_string())]);
    }

    #[test]
    fn hardened_option_disables_everything() {
        let mut profile = profile();
        profile.options.huawei_range_option_enabled = false;
        let run = run_vendor_with_profile(profile, MB, "bytes=-1", true);
        assert_eq!(run.forwarded, vec![Some("bytes=-1".to_string())]);
    }

    #[test]
    fn threshold_boundary() {
        // Exactly 10 MB is the large-file regime.
        let run = run_vendor(Vendor::HuaweiCloud, SIZE_THRESHOLD, "bytes=0-0");
        assert_eq!(run.forwarded, vec![None, None]);
    }
}
