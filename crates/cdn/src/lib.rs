//! CDN edge-node emulator with the 13 vendor range-handling profiles
//! measured by the RangeAmp paper.
//!
//! Production CDNs cannot be shipped in a reproduction repository, but the
//! RangeAmp attacks depend only on each CDN's *observable HTTP rewriting
//! behaviour*, which the paper documents precisely per vendor:
//!
//! * **Table I** — how each CDN rewrites the `Range` header on the
//!   back-to-origin connection (*Laziness* / *Deletion* / *Expansion*,
//!   including every conditional rule, e.g. Azure's 8 MB window or
//!   CloudFront's `(x >> 20) << 20` alignment arithmetic),
//! * **Table II** — which CDNs forward multi-range headers unchanged
//!   (OBR FCDN eligibility),
//! * **Table III** — which CDNs answer a multi-range request with one part
//!   per range and no overlap check (OBR BCDN eligibility),
//! * **§V-C** — each CDN's request-header size limits, which bound the
//!   number of overlapping ranges an OBR attacker can pack.
//!
//! [`EdgeNode`] is the generic edge server (cache, limits, response
//! assembly); [`Vendor`] selects one of the 13 behaviour profiles; nodes
//! compose into cascaded FCDN → BCDN chains via [`UpstreamService`].
//!
//! # Example
//!
//! ```
//! use rangeamp_cdn::{EdgeNode, Vendor};
//! use rangeamp_net::{Segment, SegmentName};
//! use rangeamp_origin::{OriginServer, ResourceStore};
//! use rangeamp_http::{Request, StatusCode};
//! use std::sync::Arc;
//!
//! let mut store = ResourceStore::new();
//! store.add_synthetic("/f.bin", 1_000_000, "application/octet-stream");
//! let origin = Arc::new(OriginServer::new(store));
//! let segment = Segment::new(SegmentName::CdnOrigin);
//! let edge = EdgeNode::new(Vendor::Akamai.profile(), origin, segment.clone());
//!
//! // The attacker requests one byte...
//! let req = Request::get("/f.bin?rnd=1")
//!     .header("Host", "victim")
//!     .header("Range", "bytes=0-0")
//!     .build();
//! let resp = edge.handle(&req);
//! assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
//! assert_eq!(resp.body().len(), 1);
//! // ...but Akamai deleted the Range header, so the origin shipped ~1 MB.
//! assert!(segment.stats().response_bytes > 1_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod assemble;
mod cache;
pub mod defense;
mod fleet;
mod limits;
mod node;
mod policy;
mod resilience;
mod upstream;
pub mod vendor;

pub use cache::{Cache, CachedEntry};
pub use defense::{client_key, DefenseAction, DefenseHook, RequestOutcome, CLIENT_ID_HEADER};
pub use fleet::{CdnFleet, IngressStrategy};
pub use limits::{
    max_overlapping_ranges, max_overlapping_ranges_with_hop, HeaderLimits, ObrRangeCase,
};
pub use node::EdgeNode;
pub use policy::{MitigationConfig, MultiReplyPolicy, RangePolicy};
pub use resilience::{BreakerConfig, CircuitBreaker, Resilience, ResilienceStats, RetryPolicy};
pub use upstream::{ClockedOrigin, FaultyUpstream, OriginUpstream, UpstreamError, UpstreamService};
pub use vendor::{Vendor, VendorProfile};
