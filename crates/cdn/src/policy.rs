//! Range-handling policy vocabulary (paper §III-B) and the mitigation
//! switches of §VI-C.

use std::fmt;

/// The three observable range-forwarding policies of paper §III-B.
///
/// This is the *classification* vocabulary — what the vulnerability
/// scanner reports after differential probing. The vendor profiles
/// implement the underlying behaviours mechanistically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangePolicy {
    /// Forward the `Range` header without change.
    Laziness,
    /// Remove the `Range` header entirely.
    Deletion,
    /// Replace the `Range` header with a larger byte range.
    Expansion,
}

impl fmt::Display for RangePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RangePolicy::Laziness => "Laziness",
            RangePolicy::Deletion => "Deletion",
            RangePolicy::Expansion => "Expansion",
        };
        f.write_str(name)
    }
}

/// How a CDN answers a multi-range client request when it holds a full
/// copy of the representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiReplyPolicy {
    /// One part per requested range, in request order, no overlap check —
    /// the Table III vulnerability (Akamai, Azure, StackPath).
    NPartNoOverlapCheck,
    /// Coalesce overlapping/adjacent ranges first (RFC 7233 §6.1
    /// suggestion); a single surviving range degrades to a plain 206.
    Coalesce,
    /// Reject requests containing overlapping ranges with 416 (CDN77's
    /// post-disclosure fix, §VII-A).
    RejectOverlapping,
    /// Ignore the multi-range request and return the whole representation
    /// as a 200.
    Full200,
}

/// The CDN-side mitigations of paper §VI-C, applicable over any vendor
/// profile for ablation experiments.
///
/// # Example
///
/// ```
/// use rangeamp_cdn::{MitigationConfig, Vendor};
///
/// // G-Core's post-disclosure fix: the `slice` option = Laziness.
/// let fixed = Vendor::GCoreLabs.profile().with_mitigation(MitigationConfig {
///     force_laziness: true,
///     ..MitigationConfig::none()
/// });
/// assert!(fixed.mitigation.is_active());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MitigationConfig {
    /// Adopt the *Laziness* policy wholesale ("completely defend against
    /// the SBR attack" — what G-Core Labs shipped as `slice` by default).
    pub force_laziness: bool,
    /// Keep expansion but cap it: extend the requested byte range by at
    /// most this many bytes (the paper suggests 8 KB as acceptable).
    pub expansion_cap: Option<u64>,
    /// Coalesce multi-range requests before replying.
    pub coalesce_multi: bool,
    /// Reject requests with overlapping ranges outright.
    pub reject_overlapping: bool,
}

impl MitigationConfig {
    /// No mitigation — the vulnerable configuration the paper measured.
    pub fn none() -> MitigationConfig {
        MitigationConfig::default()
    }

    /// Full defensive posture: Laziness + reject overlapping ranges.
    pub fn strict() -> MitigationConfig {
        MitigationConfig {
            force_laziness: true,
            expansion_cap: None,
            coalesce_multi: false,
            reject_overlapping: true,
        }
    }

    /// The paper's "better way": capped expansion (+8 KB) plus coalescing,
    /// which keeps the caching benefit of range expansion.
    pub fn capped_expansion_8k() -> MitigationConfig {
        MitigationConfig {
            force_laziness: false,
            expansion_cap: Some(8 * 1024),
            coalesce_multi: true,
            reject_overlapping: false,
        }
    }

    /// Whether any mitigation is active.
    pub fn is_active(&self) -> bool {
        self.force_laziness
            || self.expansion_cap.is_some()
            || self.coalesce_multi
            || self.reject_overlapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_match_the_paper() {
        assert_eq!(RangePolicy::Laziness.to_string(), "Laziness");
        assert_eq!(RangePolicy::Deletion.to_string(), "Deletion");
        assert_eq!(RangePolicy::Expansion.to_string(), "Expansion");
    }

    #[test]
    fn default_mitigation_is_inactive() {
        assert!(!MitigationConfig::none().is_active());
        assert!(MitigationConfig::strict().is_active());
        assert!(MitigationConfig::capped_expansion_8k().is_active());
    }

    #[test]
    fn capped_expansion_preset() {
        let config = MitigationConfig::capped_expansion_8k();
        assert_eq!(config.expansion_cap, Some(8192));
        assert!(config.coalesce_multi);
        assert!(!config.force_laziness);
    }
}
