//! Cross-node integration tests for the CDN crate: cascading, loop
//! detection, cache interplay, and property-based behaviour checks.

use std::sync::Arc;

use proptest::prelude::*;
use rangeamp_cdn::{EdgeNode, Vendor};
use rangeamp_http::{Request, StatusCode};
use rangeamp_net::{Segment, SegmentName};
use rangeamp_origin::{OriginConfig, OriginServer, ResourceStore};

fn origin(size: u64, ranges_enabled: bool) -> Arc<OriginServer> {
    let mut store = ResourceStore::new();
    store.add_synthetic("/f.bin", size, "application/octet-stream");
    let config = if ranges_enabled {
        OriginConfig::apache_default()
    } else {
        OriginConfig::ranges_disabled()
    };
    Arc::new(OriginServer::with_config(store, config))
}

fn cascade(fcdn: Vendor, bcdn: Vendor, size: u64) -> (EdgeNode, Arc<EdgeNode>, Segment, Segment) {
    let origin = origin(size, false);
    let bcdn_segment = Segment::new(SegmentName::BcdnOrigin);
    let bcdn_node = Arc::new(EdgeNode::new(bcdn.profile(), origin, bcdn_segment.clone()));
    let fcdn_segment = Segment::new(SegmentName::FcdnBcdn);
    let fcdn_node = EdgeNode::new(fcdn.fcdn_profile(), bcdn_node.clone(), fcdn_segment.clone());
    (fcdn_node, bcdn_node, fcdn_segment, bcdn_segment)
}

#[test]
fn two_tier_cascade_works_for_benign_traffic() {
    let (fcdn, _bcdn, middle, back) = cascade(Vendor::Cloudflare, Vendor::Akamai, 4096);
    let req = Request::get("/f.bin")
        .header("Host", "victim.example")
        .build();
    let resp = fcdn.handle(&req);
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(resp.body().len(), 4096);
    assert_eq!(middle.stats().requests, 1);
    assert_eq!(back.stats().requests, 1);
}

#[test]
fn same_vendor_cascade_is_rejected_as_a_loop() {
    // The Via breadcrumb makes the second StackPath hop reject the
    // request — the testbed's account of Table V's blank
    // StackPath→StackPath cell.
    let (fcdn, _bcdn, _middle, back) = cascade(Vendor::StackPath, Vendor::StackPath, 1024);
    let req = Request::get("/f.bin")
        .header("Host", "victim.example")
        .header("Range", "bytes=0-,0-,0-")
        .build();
    let resp = fcdn.handle(&req);
    assert_eq!(resp.status(), StatusCode::BAD_GATEWAY);
    assert_eq!(back.stats().requests, 0, "never reaches the origin");
}

#[test]
fn three_tier_distinct_vendor_chain_passes() {
    let origin = origin(2048, true);
    let seg_c = Segment::new(SegmentName::Other("c-origin"));
    let c = Arc::new(EdgeNode::new(Vendor::Fastly.profile(), origin, seg_c));
    let seg_b = Segment::new(SegmentName::Other("b-c"));
    let b = Arc::new(EdgeNode::new(Vendor::Akamai.profile(), c, seg_b));
    let seg_a = Segment::new(SegmentName::Other("a-b"));
    let a = EdgeNode::new(Vendor::Cloudflare.fcdn_profile(), b, seg_a);
    let req = Request::get("/f.bin").header("Host", "h").build();
    let resp = a.handle(&req);
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(resp.body().len(), 2048);
}

#[test]
fn fcdn_cache_bypass_prevents_poisoning_between_obr_rounds() {
    let (fcdn, _bcdn, middle, _back) = cascade(Vendor::Cloudflare, Vendor::Akamai, 1024);
    let req = Request::get("/f.bin")
        .header("Host", "victim.example")
        .header("Range", "bytes=0-,0-")
        .build();
    fcdn.handle(&req);
    let after_first = middle.stats().requests;
    fcdn.handle(&req);
    assert_eq!(
        middle.stats().requests,
        after_first * 2,
        "bypass mode must not cache"
    );
}

#[test]
fn bcdn_cache_serves_second_obr_round_without_origin() {
    let (fcdn, _bcdn, _middle, back) = cascade(Vendor::Cloudflare, Vendor::Akamai, 1024);
    let req = Request::get("/f.bin")
        .header("Host", "victim.example")
        .header("Range", "bytes=0-,0-")
        .build();
    fcdn.handle(&req);
    assert_eq!(back.stats().requests, 1);
    fcdn.handle(&req);
    // Akamai cached the full 200, so the origin is not consulted again —
    // but the fcdn-bcdn link still inflates every round.
    assert_eq!(back.stats().requests, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_vendor_handles_arbitrary_single_ranges_correctly(
        vendor_index in 0usize..13,
        first in 0u64..8192,
        span in 0u64..256,
    ) {
        let size = 8192u64;
        let vendor = Vendor::ALL[vendor_index];
        let origin = origin(size, true);
        let segment = Segment::new(SegmentName::CdnOrigin);
        let edge = EdgeNode::new(vendor.profile(), origin.clone(), segment);
        let req = Request::get(&format!("/f.bin?r={first}"))
            .header("Host", "victim.example")
            .header("Range", format!("bytes={first}-{}", first + span))
            .build();
        let resp = edge.handle(&req);
        if first < size {
            prop_assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT, "{}", vendor);
            let last = (first + span).min(size - 1);
            prop_assert_eq!(resp.body().len(), last - first + 1, "{}", vendor);
        } else {
            prop_assert_eq!(resp.status(), StatusCode::RANGE_NOT_SATISFIABLE, "{}", vendor);
        }
    }

    #[test]
    fn origin_traffic_never_shrinks_below_client_body(
        vendor_index in 0usize..13,
        first in 0u64..4096,
    ) {
        // Whatever the policy, the CDN cannot conjure bytes: the client
        // body must have come from the origin (on a cold cache).
        let size = 4096u64;
        let vendor = Vendor::ALL[vendor_index];
        let origin = origin(size, true);
        let segment = Segment::new(SegmentName::CdnOrigin);
        let edge = EdgeNode::new(vendor.profile(), origin, segment.clone());
        let req = Request::get(&format!("/f.bin?r={first}"))
            .header("Host", "victim.example")
            .header("Range", format!("bytes={first}-{first}"))
            .build();
        let resp = edge.handle(&req);
        prop_assert!(
            segment.stats().response_bytes >= resp.body().len(),
            "{}: origin {} < body {}",
            vendor,
            segment.stats().response_bytes,
            resp.body().len()
        );
    }
}
