//! Deterministic virtual time.

use std::fmt;

/// A virtual clock measured in milliseconds.
///
/// All time-dependent experiments (Fig 7's 30-second attack runs) run on
/// virtual time so results are deterministic and a 30-second experiment
/// completes instantly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualClock {
    millis: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current time in milliseconds since the epoch of the experiment.
    pub fn now_millis(&self) -> u64 {
        self.millis
    }

    /// Current time in whole seconds.
    pub fn now_secs(&self) -> u64 {
        self.millis / 1000
    }

    /// Advances the clock.
    pub fn advance_millis(&mut self, millis: u64) {
        self.millis += millis;
    }

    /// Advances the clock by whole seconds.
    pub fn advance_secs(&mut self, secs: u64) {
        self.millis += secs * 1000;
    }
}

impl fmt::Display for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}.{:03}s", self.millis / 1000, self.millis % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now_millis(), 0);
        clock.advance_millis(1500);
        assert_eq!(clock.now_secs(), 1);
        clock.advance_secs(2);
        assert_eq!(clock.now_millis(), 3500);
    }

    #[test]
    fn display_formats_millis() {
        let mut clock = VirtualClock::new();
        clock.advance_millis(12_345);
        assert_eq!(clock.to_string(), "t=12.345s");
    }
}
