//! Deterministic virtual time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A virtual clock measured in milliseconds.
///
/// All time-dependent experiments (Fig 7's 30-second attack runs) run on
/// virtual time so results are deterministic and a 30-second experiment
/// completes instantly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualClock {
    millis: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current time in milliseconds since the epoch of the experiment.
    pub fn now_millis(&self) -> u64 {
        self.millis
    }

    /// Current time in whole seconds.
    pub fn now_secs(&self) -> u64 {
        self.millis / 1000
    }

    /// Advances the clock.
    pub fn advance_millis(&mut self, millis: u64) {
        self.millis += millis;
    }

    /// Advances the clock by whole seconds.
    pub fn advance_secs(&mut self, secs: u64) {
        self.millis += secs * 1000;
    }
}

/// A cloneable handle on one shared virtual clock.
///
/// [`VirtualClock`] is a `Copy` value, which is right for single-owner
/// experiment loops but useless when several components (retry loops,
/// circuit breakers, the origin's overload shedder) must observe the
/// *same* advancing time. `SharedClock` is the multi-reader variant:
/// clones share state, and advancing any handle advances them all.
#[derive(Debug, Clone, Default)]
pub struct SharedClock {
    millis: Arc<AtomicU64>,
}

impl SharedClock {
    /// A shared clock at time zero.
    pub fn new() -> SharedClock {
        SharedClock::default()
    }

    /// A shared clock starting at `millis`.
    pub fn starting_at(millis: u64) -> SharedClock {
        let clock = SharedClock::new();
        clock.millis.store(millis, Ordering::SeqCst);
        clock
    }

    /// Current time in milliseconds.
    pub fn now_millis(&self) -> u64 {
        self.millis.load(Ordering::SeqCst)
    }

    /// Current time in whole seconds.
    pub fn now_secs(&self) -> u64 {
        self.now_millis() / 1000
    }

    /// Advances the clock for every handle.
    pub fn advance_millis(&self, millis: u64) {
        self.millis.fetch_add(millis, Ordering::SeqCst);
    }

    /// Advances the clock by whole seconds.
    pub fn advance_secs(&self, secs: u64) {
        self.advance_millis(secs * 1000);
    }

    /// A `Copy` snapshot of the current instant.
    pub fn snapshot(&self) -> VirtualClock {
        let mut clock = VirtualClock::new();
        clock.advance_millis(self.now_millis());
        clock
    }
}

impl fmt::Display for SharedClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

impl fmt::Display for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}.{:03}s", self.millis / 1000, self.millis % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now_millis(), 0);
        clock.advance_millis(1500);
        assert_eq!(clock.now_secs(), 1);
        clock.advance_secs(2);
        assert_eq!(clock.now_millis(), 3500);
    }

    #[test]
    fn shared_clock_handles_observe_the_same_time() {
        let clock = SharedClock::new();
        let other = clock.clone();
        clock.advance_millis(250);
        other.advance_secs(1);
        assert_eq!(clock.now_millis(), 1250);
        assert_eq!(other.now_millis(), 1250);
        assert_eq!(clock.snapshot().now_millis(), 1250);
        assert_eq!(SharedClock::starting_at(500).now_millis(), 500);
    }

    #[test]
    fn display_formats_millis() {
        let mut clock = VirtualClock::new();
        clock.advance_millis(12_345);
        assert_eq!(clock.to_string(), "t=12.345s");
    }
}
