//! Simulated network substrate for the RangeAmp testbed.
//!
//! The paper's measurements are byte counts captured on the network
//! segments of Fig 1/Fig 3 (`client-cdn`, `cdn-origin`, `fcdn-bcdn`,
//! `bcdn-origin`). This crate provides:
//!
//! * [`Segment`] — a metered, capturable connection between two roles.
//!   Every HTTP message that crosses it is serialized to wire bytes and
//!   counted per direction, exactly like the paper's tcpdump captures.
//! * [`capture::CaptureLog`] — a per-segment record of the messages that
//!   crossed, used by the vulnerability scanner for differential analysis.
//! * [`flowsim::FlowSim`] — a discrete-time max-min-fair bandwidth
//!   simulator used by the Fig 7 experiment (outgoing bandwidth of the
//!   origin under m concurrent SBR request streams).
//! * [`clock::VirtualClock`] — deterministic virtual time.
//! * [`telemetry::Tracer`] / [`metrics::MetricsRegistry`] — deterministic
//!   hop-span tracing and a metrics registry, exportable as Chrome
//!   trace-event JSON and JSONL (see DESIGN.md § Observability).
//!
//! # Example
//!
//! ```
//! use rangeamp_net::{Segment, SegmentName};
//! use rangeamp_http::{Request, Response, StatusCode};
//!
//! let segment = Segment::new(SegmentName::ClientCdn);
//! let req = Request::get("/f.bin").header("Host", "h").build();
//! let resp = Response::builder(StatusCode::OK).sized_body(vec![0u8; 64]).build();
//! segment.send_request(&req);
//! segment.send_response(&resp);
//! let stats = segment.stats();
//! assert_eq!(stats.request_bytes, req.wire_len());
//! assert_eq!(stats.response_bytes, resp.wire_len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod capture;
pub mod clock;
pub mod fault;
pub mod flowsim;
pub mod metrics;
mod segment;
pub mod telemetry;

pub use capture::{CaptureEntry, CaptureLog, Direction};
pub use clock::{SharedClock, VirtualClock};
pub use fault::{Delivery, FaultEvent, FaultKind, FaultPlan, FaultRates, FaultySegment};
pub use flowsim::{FlowId, FlowSim, LinkId};
pub use metrics::{Histogram, MetricKey, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use segment::{Segment, SegmentName, SegmentStats};
pub use telemetry::{ActiveSpan, Span, SpanId, SpanKind, Telemetry, TraceId, Tracer};
