//! Message capture — the testbed's tcpdump.
//!
//! The paper's first experiment "collect\[s\] all requests and responses on
//! the client and the origin server" and differentially compares them
//! (§V-A). [`CaptureLog`] records a summary of every message that crossed
//! a segment so the scanner can do exactly that comparison.

use rangeamp_http::{Request, Response};

/// Which way a captured message was travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward the origin (requests).
    Upstream,
    /// Toward the client (responses).
    Downstream,
}

/// One captured message.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureEntry {
    /// Travel direction.
    pub direction: Direction,
    /// Wire size of the whole message in bytes.
    pub wire_len: u64,
    /// Start line (request line or status line) for quick inspection.
    pub start_line: String,
    /// The `Range` header value if the message carried one, the
    /// `Content-Range` value for responses.
    pub range_header: Option<String>,
    /// The `Content-Type` header value, if any (multipart detection).
    pub content_type: Option<String>,
    /// Payload length in bytes.
    pub body_len: u64,
    /// Wire bytes actually delivered before the receiver aborted, when
    /// the transfer was cut short; `None` for complete deliveries.
    /// `wire_len` always records the full message as put on the wire.
    pub delivered_len: Option<u64>,
    /// Virtual-clock time of the capture, in milliseconds. Zero when the
    /// capturing segment has no clock attached (plain testbeds freeze
    /// virtual time at the epoch). Timestamping at capture time is what
    /// lets captures from *different* segments be interleaved into one
    /// cross-segment timeline.
    pub at_millis: u64,
}

impl CaptureEntry {
    /// Summarizes a request captured at virtual time zero.
    pub fn of_request(req: &Request) -> CaptureEntry {
        CaptureEntry::of_request_at(req, 0)
    }

    /// Summarizes a request captured at `at_millis` of virtual time.
    pub fn of_request_at(req: &Request, at_millis: u64) -> CaptureEntry {
        CaptureEntry {
            direction: Direction::Upstream,
            wire_len: req.wire_len(),
            start_line: format!("{} {} {}", req.method(), req.uri(), req.version()),
            range_header: req.headers().get("range").map(str::to_string),
            content_type: req.headers().get("content-type").map(str::to_string),
            body_len: req.body().len(),
            delivered_len: None,
            at_millis,
        }
    }

    /// Summarizes a response captured at virtual time zero.
    pub fn of_response(resp: &Response) -> CaptureEntry {
        CaptureEntry::of_response_at(resp, 0)
    }

    /// Summarizes a response captured at `at_millis` of virtual time.
    pub fn of_response_at(resp: &Response, at_millis: u64) -> CaptureEntry {
        CaptureEntry {
            direction: Direction::Downstream,
            wire_len: resp.wire_len(),
            start_line: format!(
                "{} {} {}",
                resp.version(),
                resp.status(),
                resp.status().reason_phrase()
            ),
            range_header: resp.headers().get("content-range").map(str::to_string),
            content_type: resp.headers().get("content-type").map(str::to_string),
            body_len: resp.body().len(),
            delivered_len: None,
            at_millis,
        }
    }

    /// Summarizes a response of which only `delivered` wire bytes reached
    /// the receiver before the connection was cut.
    pub fn of_response_truncated(resp: &Response, delivered: u64) -> CaptureEntry {
        CaptureEntry::of_response_truncated_at(resp, delivered, 0)
    }

    /// Truncated-response summary captured at `at_millis` of virtual time.
    pub fn of_response_truncated_at(
        resp: &Response,
        delivered: u64,
        at_millis: u64,
    ) -> CaptureEntry {
        CaptureEntry {
            delivered_len: Some(delivered.min(resp.wire_len())),
            ..CaptureEntry::of_response_at(resp, at_millis)
        }
    }

    /// Whether the receiver aborted this delivery before the end.
    pub fn is_truncated(&self) -> bool {
        self.delivered_len.is_some()
    }

    /// The query string of a captured request's target, if any — the
    /// cache-busting observable online defenses key on (`?rnd=…` churn,
    /// paper §II-A). `None` for responses and query-less requests.
    pub fn query(&self) -> Option<&str> {
        if self.direction != Direction::Upstream {
            return None;
        }
        let target = self.start_line.split(' ').nth(1)?;
        let (_, query) = target.split_once('?')?;
        Some(query)
    }
}

/// An append-only log of captured messages on one segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CaptureLog {
    entries: Vec<CaptureEntry>,
}

impl CaptureLog {
    /// Creates an empty log.
    pub fn new() -> CaptureLog {
        CaptureLog::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: CaptureEntry) {
        self.entries.push(entry);
    }

    /// All entries in capture order.
    pub fn entries(&self) -> &[CaptureEntry] {
        &self.entries
    }

    /// Number of captured messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries travelling in `direction`.
    pub fn in_direction(&self, direction: Direction) -> Vec<&CaptureEntry> {
        self.entries
            .iter()
            .filter(|e| e.direction == direction)
            .collect()
    }

    /// The `Range` header values of captured upstream requests, in order —
    /// the scanner's core observable ("forwarded range format", Tables
    /// I/II column 3).
    pub fn forwarded_ranges(&self) -> Vec<Option<String>> {
        self.in_direction(Direction::Upstream)
            .iter()
            .map(|e| e.range_header.clone())
            .collect()
    }

    /// Entries whose delivery was aborted mid-transfer.
    pub fn truncated_entries(&self) -> Vec<&CaptureEntry> {
        self.entries.iter().filter(|e| e.is_truncated()).collect()
    }

    /// Entries captured in the half-open virtual-time window
    /// `[from_ms, to_ms)` — the slicing primitive behind sliding-window
    /// feature extraction (DESIGN.md §12).
    pub fn in_window(&self, from_ms: u64, to_ms: u64) -> Vec<&CaptureEntry> {
        self.entries
            .iter()
            .filter(|e| e.at_millis >= from_ms && e.at_millis < to_ms)
            .collect()
    }

    /// The number of distinct query strings across captured upstream
    /// requests — cache-busting churn: benign clients reuse a stable URL
    /// while RangeAmp attackers randomise the query per request.
    pub fn distinct_queries(&self) -> usize {
        let mut seen: Vec<&str> = self
            .entries
            .iter()
            .filter_map(CaptureEntry::query)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Total response bytes captured.
    pub fn response_bytes(&self) -> u64 {
        self.in_direction(Direction::Downstream)
            .iter()
            .map(|e| e.wire_len)
            .sum()
    }

    /// Renders the capture as a human-readable exchange trace (the
    /// testbed's `tcpdump -A`), one line per message:
    ///
    /// ```text
    /// -> GET /f.bin?rnd=1 HTTP/1.1 | Range: bytes=0-0 | 91 B
    /// <- HTTP/1.1 206 Partial Content | Content-Range: bytes 0-0/1048576 | 612 B
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let arrow = match entry.direction {
                Direction::Upstream => "->",
                Direction::Downstream => "<-",
            };
            if entry.at_millis > 0 {
                out.push_str(&format!(
                    "[t={}.{:03}s] ",
                    entry.at_millis / 1000,
                    entry.at_millis % 1000
                ));
            }
            out.push_str(arrow);
            out.push(' ');
            out.push_str(&entry.start_line);
            if let Some(range) = &entry.range_header {
                let label = match entry.direction {
                    Direction::Upstream => "Range",
                    Direction::Downstream => "Content-Range",
                };
                let shown: String = if range.len() > 48 {
                    format!("{}… ({} chars)", &range[..45], range.len())
                } else {
                    range.clone()
                };
                out.push_str(&format!(" | {label}: {shown}"));
            }
            out.push_str(&format!(" | {} B", entry.wire_len));
            if let Some(delivered) = entry.delivered_len {
                out.push_str(&format!(" (aborted after {delivered} B)"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rangeamp_http::{Request, Response, StatusCode};

    #[test]
    fn request_capture_summary() {
        let req = Request::get("/f.bin?x=1")
            .header("Host", "h")
            .header("Range", "bytes=0-0")
            .build();
        let entry = CaptureEntry::of_request(&req);
        assert_eq!(entry.direction, Direction::Upstream);
        assert_eq!(entry.start_line, "GET /f.bin?x=1 HTTP/1.1");
        assert_eq!(entry.range_header.as_deref(), Some("bytes=0-0"));
        assert_eq!(entry.wire_len, req.wire_len());
    }

    #[test]
    fn response_capture_summary() {
        let resp = Response::builder(StatusCode::PARTIAL_CONTENT)
            .header("Content-Range", "bytes 0-0/1000")
            .sized_body(vec![0xff])
            .build();
        let entry = CaptureEntry::of_response(&resp);
        assert_eq!(entry.direction, Direction::Downstream);
        assert_eq!(entry.start_line, "HTTP/1.1 206 Partial Content");
        assert_eq!(entry.range_header.as_deref(), Some("bytes 0-0/1000"));
        assert_eq!(entry.body_len, 1);
    }

    #[test]
    fn forwarded_ranges_preserves_order_and_absence() {
        let mut log = CaptureLog::new();
        log.push(CaptureEntry::of_request(
            &Request::get("/a").header("Range", "bytes=0-0").build(),
        ));
        log.push(CaptureEntry::of_request(&Request::get("/b").build()));
        assert_eq!(
            log.forwarded_ranges(),
            vec![Some("bytes=0-0".to_string()), None]
        );
    }

    #[test]
    fn render_produces_readable_trace() {
        let mut log = CaptureLog::new();
        log.push(CaptureEntry::of_request(
            &Request::get("/f.bin?rnd=1")
                .header("Host", "h")
                .header("Range", "bytes=0-0")
                .build(),
        ));
        log.push(CaptureEntry::of_response(
            &Response::builder(StatusCode::PARTIAL_CONTENT)
                .header("Content-Range", "bytes 0-0/1048576")
                .sized_body(vec![0xff])
                .build(),
        ));
        let trace = log.render();
        assert!(trace.contains("-> GET /f.bin?rnd=1 HTTP/1.1 | Range: bytes=0-0"));
        assert!(
            trace.contains("<- HTTP/1.1 206 Partial Content | Content-Range: bytes 0-0/1048576")
        );
        assert_eq!(trace.lines().count(), 2);
    }

    #[test]
    fn render_truncates_huge_range_headers() {
        let mut log = CaptureLog::new();
        let huge = "bytes=".to_string() + &"0-,".repeat(5000);
        log.push(CaptureEntry::of_request(
            &Request::get("/f")
                .header("Range", huge.trim_end_matches(','))
                .build(),
        ));
        let trace = log.render();
        assert!(trace.contains("chars)"));
        assert!(trace.len() < 200, "trace should stay compact");
    }

    #[test]
    fn truncated_response_records_delivered_bytes() {
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 10_000])
            .build();
        let entry = CaptureEntry::of_response_truncated(&resp, 512);
        assert!(entry.is_truncated());
        assert_eq!(entry.delivered_len, Some(512));
        assert_eq!(entry.wire_len, resp.wire_len(), "full size still recorded");

        let mut log = CaptureLog::new();
        log.push(CaptureEntry::of_response(&resp));
        log.push(entry);
        assert_eq!(log.truncated_entries().len(), 1);
        assert!(log.render().contains("(aborted after 512 B)"));
    }

    #[test]
    fn truncated_delivery_clamps_to_wire_len() {
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 8])
            .build();
        let entry = CaptureEntry::of_response_truncated(&resp, u64::MAX);
        assert_eq!(entry.delivered_len, Some(resp.wire_len()));
    }

    #[test]
    fn timestamped_captures_carry_virtual_time() {
        let req = Request::get("/f").build();
        let entry = CaptureEntry::of_request_at(&req, 1_250);
        assert_eq!(entry.at_millis, 1_250);
        // The zero-time constructors stamp the epoch.
        assert_eq!(CaptureEntry::of_request(&req).at_millis, 0);

        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 4])
            .build();
        assert_eq!(CaptureEntry::of_response_at(&resp, 99).at_millis, 99);
        let truncated = CaptureEntry::of_response_truncated_at(&resp, 2, 7);
        assert_eq!(truncated.at_millis, 7);
        assert_eq!(truncated.delivered_len, Some(2));

        let mut log = CaptureLog::new();
        log.push(CaptureEntry::of_request_at(&req, 1_250));
        let trace = log.render();
        assert!(trace.contains("[t=1.250s] -> GET /f HTTP/1.1"), "{trace}");
    }

    #[test]
    fn query_extraction_and_churn_counting() {
        let mut log = CaptureLog::new();
        for rnd in [1, 2, 2, 3] {
            log.push(CaptureEntry::of_request(
                &Request::get(&format!("/f.bin?rnd={rnd}")).build(),
            ));
        }
        log.push(CaptureEntry::of_request(
            &Request::get("/plain.bin").build(),
        ));
        log.push(CaptureEntry::of_response(
            &Response::builder(StatusCode::OK)
                .sized_body(vec![0])
                .build(),
        ));
        assert_eq!(log.entries()[0].query(), Some("rnd=1"));
        assert_eq!(log.entries()[4].query(), None, "query-less request");
        assert_eq!(log.entries()[5].query(), None, "responses have no query");
        assert_eq!(log.distinct_queries(), 3);
    }

    #[test]
    fn window_slicing_is_half_open() {
        let mut log = CaptureLog::new();
        for at in [0, 999, 1000, 1500, 2000] {
            log.push(CaptureEntry::of_request_at(&Request::get("/f").build(), at));
        }
        let window = log.in_window(1000, 2000);
        assert_eq!(window.len(), 2);
        assert!(window.iter().all(|e| (1000..2000).contains(&e.at_millis)));
    }

    #[test]
    fn response_bytes_sums_downstream_only() {
        let mut log = CaptureLog::new();
        let req = Request::get("/a").build();
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 10])
            .build();
        log.push(CaptureEntry::of_request(&req));
        log.push(CaptureEntry::of_response(&resp));
        assert_eq!(log.response_bytes(), resp.wire_len());
        assert_eq!(log.len(), 2);
    }
}
