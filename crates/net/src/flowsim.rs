//! Discrete-time max-min-fair flow-level bandwidth simulator.
//!
//! The paper's fourth experiment (Fig 7) measures the origin's outgoing
//! bandwidth while an attacker sends `m` SBR requests per second for 30
//! seconds: the origin's 1000 Mbps uplink is the shared bottleneck and the
//! per-request 10 MB back-to-origin transfers compete on it. Flow-level
//! simulation with max-min fair sharing (the classic fluid model of TCP
//! fair sharing at a single bottleneck) reproduces the saturation behaviour
//! without packet-level detail.
//!
//! # Example
//!
//! ```
//! use rangeamp_net::FlowSim;
//!
//! let mut sim = FlowSim::new(10);
//! let uplink = sim.add_link("origin-uplink", 1000.0);
//! // Two 100 MB transfers start at t=0 and share the link; together they
//! // demand 1600 Mbit/s, so the 1000 Mbps uplink saturates.
//! sim.schedule_flow(0, 100 * 1024 * 1024, &[uplink]);
//! sim.schedule_flow(0, 100 * 1024 * 1024, &[uplink]);
//! sim.run_until_millis(1_000);
//! let series = sim.link_throughput_mbps(uplink);
//! assert!(series[0] > 990.0);
//! ```

use std::collections::BTreeMap;

/// Identifies a link inside a [`FlowSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(usize);

/// Identifies a flow inside a [`FlowSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(usize);

/// A window during which a link's capacity is scaled down — a full
/// outage (`factor == 0.0`) or a degradation. Produced by the fault
/// layer's slow-link events; consulted every tick.
#[derive(Debug, Clone, Copy)]
struct CapacityWindow {
    start_ms: u64,
    end_ms: u64,
    factor: f64,
}

#[derive(Debug)]
struct Link {
    label: String,
    capacity_bytes_per_sec: f64,
    /// Outage / degradation windows; when several overlap, the most
    /// severe (smallest factor) applies.
    windows: Vec<CapacityWindow>,
    /// Bytes delivered through this link, bucketed per virtual second.
    delivered_per_sec: BTreeMap<u64, f64>,
}

impl Link {
    fn capacity_at(&self, now_ms: u64) -> f64 {
        let factor = self
            .windows
            .iter()
            .filter(|w| w.start_ms <= now_ms && now_ms < w.end_ms)
            .map(|w| w.factor)
            .fold(1.0f64, f64::min);
        self.capacity_bytes_per_sec * factor
    }
}

#[derive(Debug)]
struct Flow {
    start_ms: u64,
    remaining_bytes: f64,
    links: Vec<LinkId>,
    finished_at_ms: Option<u64>,
}

/// The simulator. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct FlowSim {
    tick_ms: u64,
    now_ms: u64,
    links: Vec<Link>,
    flows: Vec<Flow>,
}

impl FlowSim {
    /// Creates a simulator advancing in `tick_ms`-millisecond steps.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ms` is zero or larger than one second (the
    /// per-second reporting buckets assume sub-second ticks).
    pub fn new(tick_ms: u64) -> FlowSim {
        assert!(
            tick_ms > 0 && tick_ms <= 1000,
            "tick must be in 1..=1000 ms"
        );
        FlowSim {
            tick_ms,
            now_ms: 0,
            links: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Adds a link with the given capacity in megabits per second.
    pub fn add_link(&mut self, label: &str, capacity_mbps: f64) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link {
            label: label.to_string(),
            capacity_bytes_per_sec: capacity_mbps * 1_000_000.0 / 8.0,
            windows: Vec::new(),
            delivered_per_sec: BTreeMap::new(),
        });
        id
    }

    /// Takes the link fully down for `[start_ms, end_ms)` of virtual
    /// time. Flows crossing it stall and resume when the window closes.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the link unknown.
    pub fn add_outage(&mut self, link: LinkId, start_ms: u64, end_ms: u64) {
        self.add_slowdown(link, start_ms, end_ms, 0.0);
    }

    /// Scales the link's capacity by `factor` (in `[0, 1]`) during
    /// `[start_ms, end_ms)` — the slow-link fault of the failure model.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty, the factor is outside `[0, 1]`, or
    /// the link unknown.
    pub fn add_slowdown(&mut self, link: LinkId, start_ms: u64, end_ms: u64, factor: f64) {
        assert!(start_ms < end_ms, "empty capacity window");
        assert!((0.0..=1.0).contains(&factor), "factor must be in [0, 1]");
        assert!(link.0 < self.links.len(), "unknown link {link:?}");
        self.links[link.0].windows.push(CapacityWindow {
            start_ms,
            end_ms,
            factor,
        });
    }

    /// Schedules a transfer of `bytes` over `links` starting at
    /// `start_ms` (virtual time).
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty or refers to an unknown link.
    pub fn schedule_flow(&mut self, start_ms: u64, bytes: u64, links: &[LinkId]) -> FlowId {
        assert!(!links.is_empty(), "a flow must traverse at least one link");
        for link in links {
            assert!(link.0 < self.links.len(), "unknown link {link:?}");
        }
        let id = FlowId(self.flows.len());
        self.flows.push(Flow {
            start_ms,
            remaining_bytes: bytes as f64,
            links: links.to_vec(),
            finished_at_ms: None,
        });
        id
    }

    /// Current virtual time in milliseconds.
    pub fn now_millis(&self) -> u64 {
        self.now_ms
    }

    /// Advances the simulation until `end_ms` of virtual time.
    pub fn run_until_millis(&mut self, end_ms: u64) {
        while self.now_ms < end_ms {
            self.tick();
        }
    }

    /// Advances until every scheduled flow has finished or `max_ms` is
    /// reached, returning whether all flows drained.
    pub fn run_until_idle(&mut self, max_ms: u64) -> bool {
        while self.now_ms < max_ms {
            if self.flows.iter().all(|f| f.finished_at_ms.is_some()) {
                return true;
            }
            self.tick();
        }
        self.flows.iter().all(|f| f.finished_at_ms.is_some())
    }

    fn tick(&mut self) {
        let tick_secs = self.tick_ms as f64 / 1000.0;
        let active: Vec<usize> = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.finished_at_ms.is_none() && f.start_ms <= self.now_ms && f.remaining_bytes > 0.0
            })
            .map(|(i, _)| i)
            .collect();

        let rates = self.max_min_rates(&active);

        for (&flow_idx, &rate) in active.iter().zip(rates.iter()) {
            let flow = &mut self.flows[flow_idx];
            let delivered = (rate * tick_secs).min(flow.remaining_bytes);
            flow.remaining_bytes -= delivered;
            if flow.remaining_bytes <= f64::EPSILON {
                flow.remaining_bytes = 0.0;
                flow.finished_at_ms = Some(self.now_ms + self.tick_ms);
            }
            let second = self.now_ms / 1000;
            for link in flow.links.clone() {
                *self.links[link.0]
                    .delivered_per_sec
                    .entry(second)
                    .or_insert(0.0) += delivered;
            }
        }
        self.now_ms += self.tick_ms;
    }

    /// Progressive-filling max-min fair allocation for the given active
    /// flows; returns one rate (bytes/sec) per flow, aligned with `active`.
    fn max_min_rates(&self, active: &[usize]) -> Vec<f64> {
        let mut rates = vec![0.0f64; active.len()];
        if active.is_empty() {
            return rates;
        }
        let mut frozen = vec![false; active.len()];
        let mut cap_left: Vec<f64> = self
            .links
            .iter()
            .map(|l| l.capacity_at(self.now_ms))
            .collect();

        loop {
            // Count unfrozen flows per link.
            let mut users = vec![0usize; self.links.len()];
            for (slot, &flow_idx) in active.iter().enumerate() {
                if frozen[slot] {
                    continue;
                }
                for link in &self.flows[flow_idx].links {
                    users[link.0] += 1;
                }
            }
            // Find the bottleneck link: minimal fair share.
            let mut bottleneck: Option<(usize, f64)> = None;
            for (link_idx, &count) in users.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let share = cap_left[link_idx] / count as f64;
                if bottleneck.is_none_or(|(_, best)| share < best) {
                    bottleneck = Some((link_idx, share));
                }
            }
            let Some((bottleneck_link, share)) = bottleneck else {
                break; // every flow frozen
            };
            // Freeze flows crossing the bottleneck at the fair share.
            for (slot, &flow_idx) in active.iter().enumerate() {
                if frozen[slot] {
                    continue;
                }
                let flow = &self.flows[flow_idx];
                if flow.links.iter().any(|l| l.0 == bottleneck_link) {
                    frozen[slot] = true;
                    rates[slot] = share;
                    for link in &flow.links {
                        cap_left[link.0] -= share;
                    }
                }
            }
        }
        rates
    }

    /// Per-second throughput series for a link in Mbps, from second 0 to
    /// the last second that saw traffic (inclusive); empty if none did.
    pub fn link_throughput_mbps(&self, link: LinkId) -> Vec<f64> {
        let delivered = &self.links[link.0].delivered_per_sec;
        let Some((&last, _)) = delivered.iter().next_back() else {
            return Vec::new();
        };
        (0..=last)
            .map(|sec| delivered.get(&sec).copied().unwrap_or(0.0) * 8.0 / 1_000_000.0)
            .collect()
    }

    /// Human label of a link.
    pub fn link_label(&self, link: LinkId) -> &str {
        &self.links[link.0].label
    }

    /// Virtual completion time of a flow, if it finished.
    pub fn flow_finished_at_ms(&self, flow: FlowId) -> Option<u64> {
        self.flows[flow.0].finished_at_ms
    }

    /// Bytes still queued for a flow.
    pub fn flow_remaining_bytes(&self, flow: FlowId) -> u64 {
        self.flows[flow.0].remaining_bytes.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn single_flow_runs_at_line_rate() {
        let mut sim = FlowSim::new(10);
        let link = sim.add_link("l", 800.0); // 100 MB/s
        let flow = sim.schedule_flow(0, 50 * 1_000_000, &[link]);
        assert!(sim.run_until_idle(10_000));
        // 50 MB at 100 MB/s finishes at ~0.5 s.
        let done = sim.flow_finished_at_ms(flow).unwrap();
        assert!((450..=600).contains(&done), "finished at {done} ms");
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut sim = FlowSim::new(10);
        let link = sim.add_link("l", 80.0); // 10 MB/s
        let a = sim.schedule_flow(0, 10 * 1_000_000, &[link]);
        let b = sim.schedule_flow(0, 10 * 1_000_000, &[link]);
        assert!(sim.run_until_idle(60_000));
        // Each gets 5 MB/s → both finish near 2 s.
        let done_a = sim.flow_finished_at_ms(a).unwrap();
        let done_b = sim.flow_finished_at_ms(b).unwrap();
        assert!((1900..=2200).contains(&done_a), "{done_a}");
        assert_eq!(done_a, done_b);
    }

    #[test]
    fn bottleneck_caps_throughput_series() {
        let mut sim = FlowSim::new(10);
        let link = sim.add_link("uplink", 1000.0);
        for i in 0..40 {
            sim.schedule_flow(i * 50, 10 * MB, &[link]);
        }
        sim.run_until_millis(3_000);
        let series = sim.link_throughput_mbps(link);
        for (sec, mbps) in series.iter().enumerate() {
            assert!(*mbps <= 1000.5, "second {sec} exceeded capacity: {mbps}");
        }
        assert!(series[1] > 950.0, "link should saturate: {:?}", series);
    }

    #[test]
    fn max_min_respects_per_flow_bottleneck() {
        // Flow A crosses a 10 Mbps access link and the shared 1000 Mbps
        // uplink; flow B only the uplink. A must be capped at 10, B gets
        // the rest.
        let mut sim = FlowSim::new(10);
        let access = sim.add_link("access", 10.0);
        let uplink = sim.add_link("uplink", 1000.0);
        sim.schedule_flow(0, 100 * MB, &[access, uplink]);
        sim.schedule_flow(0, 200 * MB, &[uplink]);
        sim.run_until_millis(1_000);
        let access_series = sim.link_throughput_mbps(access);
        let uplink_series = sim.link_throughput_mbps(uplink);
        // A is capped by its 10 Mbps access link...
        assert!((access_series[0] - 10.0).abs() < 0.5, "{access_series:?}");
        // ...and B gets the rest: 10 + 990 for the whole first second
        // (B carries 200 MB, far more than 990 Mbps can drain in 1 s).
        assert!(uplink_series[0] > 995.0, "{uplink_series:?}");
    }

    #[test]
    fn flows_start_at_their_scheduled_time() {
        let mut sim = FlowSim::new(10);
        let link = sim.add_link("l", 80.0);
        let flow = sim.schedule_flow(5_000, 1_000_000, &[link]);
        sim.run_until_millis(4_000);
        assert_eq!(sim.flow_finished_at_ms(flow), None);
        assert_eq!(sim.flow_remaining_bytes(flow), 1_000_000);
        sim.run_until_millis(8_000);
        assert!(sim.flow_finished_at_ms(flow).is_some());
    }

    #[test]
    fn outage_window_stalls_and_resumes_flows() {
        let mut sim = FlowSim::new(10);
        let link = sim.add_link("l", 80.0); // 10 MB/s
        let flow = sim.schedule_flow(0, 15 * 1_000_000, &[link]);
        // Down for the entire second 1.
        sim.add_outage(link, 1_000, 2_000);
        assert!(sim.run_until_idle(60_000));
        // 1 s of transfer (10 MB) + 1 s stalled + 0.5 s for the rest.
        let done = sim.flow_finished_at_ms(flow).unwrap();
        assert!((2400..=2700).contains(&done), "finished at {done} ms");
        let series = sim.link_throughput_mbps(link);
        assert!(series[1] < 1.0, "second 1 should be dark: {series:?}");
    }

    #[test]
    fn slowdown_window_scales_capacity() {
        let mut sim = FlowSim::new(10);
        let link = sim.add_link("l", 100.0);
        sim.schedule_flow(0, 100 * MB, &[link]);
        sim.add_slowdown(link, 0, 1_000, 0.5);
        sim.run_until_millis(2_000);
        let series = sim.link_throughput_mbps(link);
        assert!((series[0] - 50.0).abs() < 2.0, "{series:?}");
        assert!((series[1] - 100.0).abs() < 2.0, "{series:?}");
    }

    #[test]
    #[should_panic]
    fn inverted_outage_window_is_rejected() {
        let mut sim = FlowSim::new(10);
        let link = sim.add_link("l", 10.0);
        sim.add_outage(link, 500, 500);
    }

    #[test]
    fn idle_link_has_empty_series() {
        let mut sim = FlowSim::new(100);
        let link = sim.add_link("l", 100.0);
        sim.run_until_millis(1_000);
        assert!(sim.link_throughput_mbps(link).is_empty());
    }

    #[test]
    #[should_panic]
    fn flow_requires_a_link() {
        let mut sim = FlowSim::new(10);
        sim.schedule_flow(0, 100, &[]);
    }

    #[test]
    fn labels_round_trip() {
        let mut sim = FlowSim::new(10);
        let link = sim.add_link("origin-uplink", 1.0);
        assert_eq!(sim.link_label(link), "origin-uplink");
    }
}
