//! Deterministic fault injection for the network substrate.
//!
//! Production CDN-origin paths fail in well-known ways: the origin sheds
//! load with 5xx, connections time out or reset mid-transfer, responses
//! arrive truncated, links degrade. The paper's steady-state
//! amplification numbers assume none of that happens; the resilience
//! experiments need all of it to happen *reproducibly*. A [`FaultPlan`]
//! is a seeded schedule of such events: every draw consumes from a
//! deterministic RNG, so the same seed always yields the same fault
//! sequence and therefore byte-identical meters.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::segment::Segment;
use rangeamp_http::{Request, Response};

/// One kind of injected fault, parameterized where the paper's failure
/// taxonomy needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The origin answers with a server error instead of the payload.
    Origin5xx {
        /// The injected status code (500, 502, 503 or 504).
        status: u16,
    },
    /// The upstream never answers; the fetch burns its timeout budget
    /// and delivers nothing.
    Timeout,
    /// The connection is reset after `after_bytes` response bytes have
    /// crossed the wire.
    ConnectionReset {
        /// Response bytes delivered before the reset.
        after_bytes: u64,
    },
    /// The response ends early but cleanly: `keep_bytes` wire bytes
    /// arrive, the rest never does.
    Truncation {
        /// Response bytes delivered before the stream ends.
        keep_bytes: u64,
    },
    /// The link serving this transfer degrades to `capacity_pct` percent
    /// of its capacity (consumed by flow-level simulations).
    SlowLink {
        /// Remaining capacity, in percent of nominal.
        capacity_pct: u8,
    },
}

/// A drawn fault event: the kind plus the draw's position in the
/// schedule (useful in logs and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Which transfer in the schedule this was (0-based).
    pub sequence: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Per-fault-kind injection rates, each a probability in `[0, 1]`
/// evaluated per upstream transfer in schedule order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability of an origin 5xx.
    pub origin_5xx: f64,
    /// Probability of an upstream timeout.
    pub timeout: f64,
    /// Probability of a mid-transfer connection reset.
    pub connection_reset: f64,
    /// Probability of a truncated response.
    pub truncation: f64,
    /// Probability of a slow-link event.
    pub slow_link: f64,
}

impl FaultRates {
    /// No faults at all.
    pub const HEALTHY: FaultRates = FaultRates {
        origin_5xx: 0.0,
        timeout: 0.0,
        connection_reset: 0.0,
        truncation: 0.0,
        slow_link: 0.0,
    };

    fn total(&self) -> f64 {
        self.origin_5xx + self.timeout + self.connection_reset + self.truncation + self.slow_link
    }
}

#[derive(Debug)]
struct PlanInner {
    rng_state: u64,
    sequence: u64,
}

impl PlanInner {
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A seeded, deterministic schedule of fault events.
///
/// Each call to [`FaultPlan::next_for_transfer`] advances the schedule
/// by one transfer and decides whether (and how) that transfer fails.
/// The decision sequence depends only on the seed and the rates, never
/// on wall-clock time or thread interleaving — the plan serializes its
/// draws behind a mutex, so a given (seed, call-order) pair always
/// produces the same events.
#[derive(Debug)]
pub struct FaultPlan {
    rates: FaultRates,
    inner: Mutex<PlanInner>,
}

impl FaultPlan {
    /// A plan that never injects anything. The resilience layer treats
    /// this as a fast path: wrappers short-circuit and the healthy
    /// byte-for-byte behaviour of the testbed is preserved.
    pub fn healthy() -> FaultPlan {
        FaultPlan::with_rates(0, FaultRates::HEALTHY)
    }

    /// A plan drawing from `rates` with the given seed.
    pub fn with_rates(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan {
            rates,
            inner: Mutex::new(PlanInner {
                rng_state: seed ^ 0x5DEE_CE66_D1CE_5EED,
                sequence: 0,
            }),
        }
    }

    /// Preset modelling a flaky origin: occasional 5xx, timeouts and
    /// mid-transfer resets, rarer truncation and link degradation.
    pub fn flaky_origin(seed: u64) -> FaultPlan {
        FaultPlan::with_rates(
            seed,
            FaultRates {
                origin_5xx: 0.15,
                timeout: 0.08,
                connection_reset: 0.08,
                truncation: 0.05,
                slow_link: 0.04,
            },
        )
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_healthy(&self) -> bool {
        self.rates.total() == 0.0
    }

    /// The configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Number of transfers the schedule has decided so far.
    pub fn transfers_seen(&self) -> u64 {
        self.inner.lock().sequence
    }

    /// Decides the fate of the next transfer in the schedule, which is
    /// expected to move `expected_bytes` of response wire bytes.
    /// Byte-parameterized faults (reset, truncation) scale with that
    /// size. Returns `None` when the transfer is healthy.
    pub fn next_for_transfer(&self, expected_bytes: u64) -> Option<FaultEvent> {
        if self.is_healthy() {
            return None;
        }
        let mut inner = self.inner.lock();
        let sequence = inner.sequence;
        inner.sequence += 1;
        let draw = inner.unit_f64();

        let mut threshold = self.rates.origin_5xx;
        if draw < threshold {
            const STATUSES: [u16; 4] = [500, 502, 503, 504];
            let status = STATUSES[(inner.next_u64() % 4) as usize];
            return Some(FaultEvent {
                sequence,
                kind: FaultKind::Origin5xx { status },
            });
        }
        threshold += self.rates.timeout;
        if draw < threshold {
            return Some(FaultEvent {
                sequence,
                kind: FaultKind::Timeout,
            });
        }
        threshold += self.rates.connection_reset;
        if draw < threshold {
            let fraction = inner.unit_f64();
            return Some(FaultEvent {
                sequence,
                kind: FaultKind::ConnectionReset {
                    after_bytes: (expected_bytes as f64 * fraction) as u64,
                },
            });
        }
        threshold += self.rates.truncation;
        if draw < threshold {
            let fraction = inner.unit_f64();
            return Some(FaultEvent {
                sequence,
                kind: FaultKind::Truncation {
                    keep_bytes: (expected_bytes as f64 * fraction) as u64,
                },
            });
        }
        threshold += self.rates.slow_link;
        if draw < threshold {
            let pct = 10 + (inner.next_u64() % 81) as u8; // 10..=90
            return Some(FaultEvent {
                sequence,
                kind: FaultKind::SlowLink { capacity_pct: pct },
            });
        }
        None
    }
}

/// What actually crossed the wire when a response was sent through a
/// [`FaultySegment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The whole response arrived.
    Full,
    /// The transfer died mid-flight; `delivered` wire bytes arrived.
    Truncated {
        /// Wire bytes that crossed before the failure.
        delivered: u64,
    },
    /// Nothing arrived; the fetch timed out.
    TimedOut,
}

/// A [`Segment`] wrapper that meters traffic under a [`FaultPlan`]:
/// requests always cross, responses may be cut short or lost entirely
/// according to the plan's schedule.
#[derive(Debug, Clone)]
pub struct FaultySegment {
    segment: Segment,
    plan: Arc<FaultPlan>,
}

impl FaultySegment {
    /// Wraps `segment` with `plan`.
    pub fn new(segment: Segment, plan: Arc<FaultPlan>) -> FaultySegment {
        FaultySegment { segment, plan }
    }

    /// The underlying metered segment.
    pub fn segment(&self) -> &Segment {
        &self.segment
    }

    /// The fault schedule.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Meters a request crossing the segment.
    pub fn send_request(&self, req: &Request) {
        self.segment.send_request(req);
    }

    /// Meters a response under the fault schedule and reports what was
    /// delivered.
    pub fn send_response(&self, resp: &Response) -> Delivery {
        match self.plan.next_for_transfer(resp.wire_len()) {
            None
            | Some(FaultEvent {
                kind: FaultKind::Origin5xx { .. } | FaultKind::SlowLink { .. },
                ..
            }) => {
                // 5xx still crosses the wire in full; slow links change
                // timing, not bytes.
                self.segment.send_response(resp);
                Delivery::Full
            }
            Some(FaultEvent {
                kind:
                    FaultKind::ConnectionReset { after_bytes: kept }
                    | FaultKind::Truncation { keep_bytes: kept },
                ..
            }) => {
                let delivered = kept.min(resp.wire_len());
                self.segment.send_response_truncated(resp, delivered);
                Delivery::Truncated { delivered }
            }
            Some(FaultEvent {
                kind: FaultKind::Timeout,
                ..
            }) => Delivery::TimedOut,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentName;
    use rangeamp_http::StatusCode;

    #[test]
    fn healthy_plan_never_draws() {
        let plan = FaultPlan::healthy();
        for _ in 0..1000 {
            assert_eq!(plan.next_for_transfer(1 << 20), None);
        }
        assert!(plan.is_healthy());
        // Healthy plans short-circuit and do not advance the schedule.
        assert_eq!(plan.transfers_seen(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::flaky_origin(99);
        let b = FaultPlan::flaky_origin(99);
        for _ in 0..500 {
            assert_eq!(a.next_for_transfer(10_000), b.next_for_transfer(10_000));
        }
        assert_eq!(a.transfers_seen(), 500);
    }

    #[test]
    fn rates_sum_controls_fault_frequency() {
        let plan = FaultPlan::flaky_origin(7);
        let faults = (0..2000)
            .filter(|_| plan.next_for_transfer(1000).is_some())
            .count();
        // Sum of rates is 0.40; allow generous slack for the small RNG.
        assert!((600..=1000).contains(&faults), "{faults} faults in 2000");
    }

    #[test]
    fn byte_parameterized_faults_stay_in_bounds() {
        let plan = FaultPlan::with_rates(
            3,
            FaultRates {
                connection_reset: 0.5,
                truncation: 0.5,
                ..FaultRates::HEALTHY
            },
        );
        for _ in 0..500 {
            match plan.next_for_transfer(4096).expect("always faulty").kind {
                FaultKind::ConnectionReset { after_bytes: n }
                | FaultKind::Truncation { keep_bytes: n } => assert!(n < 4096),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn faulty_segment_meters_truncated_bytes() {
        let plan = Arc::new(FaultPlan::with_rates(
            11,
            FaultRates {
                truncation: 1.0,
                ..FaultRates::HEALTHY
            },
        ));
        let faulty = FaultySegment::new(Segment::new(SegmentName::CdnOrigin), plan);
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 2048])
            .build();
        match faulty.send_response(&resp) {
            Delivery::Truncated { delivered } => {
                assert!(delivered < resp.wire_len());
                assert_eq!(faulty.segment().stats().response_bytes, delivered);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn timeout_delivers_nothing() {
        let plan = Arc::new(FaultPlan::with_rates(
            5,
            FaultRates {
                timeout: 1.0,
                ..FaultRates::HEALTHY
            },
        ));
        let faulty = FaultySegment::new(Segment::new(SegmentName::CdnOrigin), plan);
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 64])
            .build();
        assert_eq!(faulty.send_response(&resp), Delivery::TimedOut);
        assert_eq!(faulty.segment().stats().response_bytes, 0);
        assert_eq!(faulty.segment().stats().responses, 0);
    }
}
