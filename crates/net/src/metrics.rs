//! Deterministic metrics registry — counters, gauges, and fixed-bucket
//! histograms keyed by metric name + sorted label set.
//!
//! The registry is the quantitative half of the telemetry layer (the
//! qualitative half being [`crate::telemetry`] spans). Everything about it
//! is designed for reproducibility:
//!
//! * keys are stored in a [`BTreeMap`], so a snapshot is always sorted the
//!   same way regardless of registration order;
//! * histograms use *fixed* bucket bounds chosen at first observation —
//!   no dynamic resizing that could depend on arrival order;
//! * exports ([`MetricsSnapshot::render`], [`MetricsSnapshot::to_jsonl`])
//!   are hand-assembled strings with no hash-map iteration anywhere, so
//!   the same counter values produce byte-identical files.
//!
//! Metric names follow a Prometheus-flavoured scheme documented in
//! DESIGN.md § Observability: `snake_case` names, `_total` suffix for
//! counters, `_bytes`/`_ms` unit suffixes, labels like `vendor=` and
//! `segment=` for the paper's per-CDN / per-hop breakdowns.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

/// Histogram bucket upper bounds for wire-byte distributions: 256 B up to
/// 64 MiB in powers of four, plus an implicit overflow bucket.
pub const BYTE_BUCKETS: [u64; 10] = [
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
    64 << 20,
];

/// Bucket bounds for small event counts (retries per request, attempts).
pub const COUNT_BUCKETS: [u64; 8] = [0, 1, 2, 3, 5, 8, 13, 21];

/// Bucket bounds for amplification factors (the paper reports SBR factors
/// up to 43,330× and OBR up to 7,432×, so the scale is logarithmic).
pub const FACTOR_BUCKETS: [u64; 10] = [1, 2, 5, 10, 50, 100, 500, 1_000, 10_000, 100_000];

/// Bucket bounds for virtual latencies in milliseconds.
pub const LATENCY_BUCKETS_MS: [u64; 10] = [1, 5, 10, 50, 100, 250, 500, 1_000, 5_000, 30_000];

/// A metric identity: name plus sorted label pairs.
///
/// Ordering is lexicographic on the name and then the label pairs, which
/// is what makes snapshots deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `hop_response_bytes`.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders the key as `name{label=value,...}` (or just `name` when
    /// there are no labels).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::new();
        out.push_str(&self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}={v}");
        }
        out.push('}');
        out
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// `counts` has one slot per bound plus a final overflow slot for values
/// above the largest bound. A value lands in the first bucket whose bound
/// is `>=` the value, so `0` always lands in bucket 0 and `u64::MAX`
/// always lands in the overflow slot (unless a bound equals `u64::MAX`).
/// The running `sum` is a `u128` so it cannot overflow even when fed
/// `u64::MAX` repeatedly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, ascending.
    pub bounds: Vec<u64>,
    /// Observation counts per bucket; `counts.len() == bounds.len() + 1`,
    /// with the last slot counting values above every bound.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (u128: immune to u64 overflow).
    pub sum: u128,
}

impl Histogram {
    /// Creates an empty histogram with the given bucket bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
    }

    /// Mean of the observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds `other`'s observations into this histogram bucket-wise.
    /// Addition is commutative and associative, so merging any number of
    /// shard histograms yields the same result in any order. The two
    /// histograms must share bucket bounds (all call sites create a
    /// metric with fixed bounds); mismatched bounds are a programming
    /// error and only `other`'s totals are folded in.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (slot, count) in self.counts.iter_mut().zip(&other.counts) {
                *slot += count;
            }
        } else {
            debug_assert!(false, "histogram bounds mismatch in merge");
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing counter.
    Counter(u64),
    /// Last-write-wins floating-point gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: BTreeMap<MetricKey, MetricValue>,
}

/// A cloneable handle on a shared, deterministic metrics registry.
///
/// Clones share the same underlying table (the testbed hands one handle to
/// the edge node, one to the origin, one to the campaign driver). All
/// mutation happens under a single short-lived lock; the registry is meant
/// for the simulator's request rates, not a hot production path.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name{labels}` (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock();
        match inner.metrics.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += delta,
            other => debug_assert!(false, "metric type mismatch: {other:?}"),
        }
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        self.inner
            .lock()
            .metrics
            .insert(key, MetricValue::Gauge(value));
    }

    /// Records `value` into the histogram `name{labels}` using the
    /// default [`BYTE_BUCKETS`] bounds.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.observe_with(name, labels, &BYTE_BUCKETS, value);
    }

    /// Records `value` into the histogram `name{labels}`, creating it
    /// with `bounds` on first use (later calls keep the original bounds).
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64], value: u64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock();
        match inner
            .metrics
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.observe(value),
            other => debug_assert!(false, "metric type mismatch: {other:?}"),
        }
    }

    /// Reads a counter's current value (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = MetricKey::new(name, labels);
        match self.inner.lock().metrics.get(&key) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Reads a gauge's current value, if set.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        match self.inner.lock().metrics.get(&key) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Folds a snapshot of another registry (typically one executor
    /// shard's) into this one: counters and histogram buckets add,
    /// gauges overwrite (last-write-wins), and unseen keys are inserted.
    ///
    /// Counter and histogram merges are commutative, so shard snapshots
    /// with *disjoint or additive* keys merge to the same table in any
    /// order. Gauge keys are last-write-wins, which is why the parallel
    /// campaign driver always absorbs shard bundles in **unit order** —
    /// the merged registry is then a pure function of the unit results,
    /// independent of shard completion order (see DESIGN.md §8).
    pub fn absorb_snapshot(&self, snapshot: &MetricsSnapshot) {
        let mut inner = self.inner.lock();
        for (key, value) in &snapshot.entries {
            match inner.metrics.get_mut(key) {
                None => {
                    inner.metrics.insert(key.clone(), value.clone());
                }
                Some(existing) => match (existing, value) {
                    (MetricValue::Counter(mine), MetricValue::Counter(theirs)) => *mine += theirs,
                    (MetricValue::Gauge(mine), MetricValue::Gauge(theirs)) => *mine = *theirs,
                    (MetricValue::Histogram(mine), MetricValue::Histogram(theirs)) => {
                        mine.merge(theirs)
                    }
                    (existing, value) => {
                        debug_assert!(false, "metric type mismatch: {existing:?} vs {value:?}")
                    }
                },
            }
        }
    }

    /// [`MetricsRegistry::absorb_snapshot`] on a live registry.
    pub fn absorb(&self, other: &MetricsRegistry) {
        self.absorb_snapshot(&other.snapshot());
    }

    /// A sorted, deep-copied snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            entries: inner
                .metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Number of distinct metric keys registered.
    pub fn len(&self) -> usize {
        self.inner.lock().metrics.len()
    }

    /// Whether no metric has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A point-in-time, sorted copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(key, value)` pairs sorted by key.
    pub entries: Vec<(MetricKey, MetricValue)>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a sorted `key value` text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.entries {
            out.push_str(&key.render());
            out.push(' ');
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{v:.6}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, "count={} sum={} mean={:.1}", h.count, h.sum, h.mean());
                }
            }
            out.push('\n');
        }
        out
    }

    /// Exports the snapshot as JSON Lines, one metric per line, sorted by
    /// key. Hand-assembled so the byte layout is fully deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.entries {
            out.push_str("{\"metric\":\"");
            out.push_str(&escape_json(&key.name));
            out.push_str("\",\"labels\":{");
            for (i, (k, v)) in key.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            out.push_str("},");
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{v:.6}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"sum\":\"{}\",\"buckets\":[",
                        h.count, h.sum
                    );
                    for (i, bound) in h.bounds.iter().enumerate() {
                        let _ = write!(out, "{{\"le\":\"{}\",\"count\":{}}},", bound, h.counts[i]);
                    }
                    let _ = write!(
                        out,
                        "{{\"le\":\"+Inf\",\"count\":{}}}]",
                        h.counts[h.bounds.len()]
                    );
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = MetricsRegistry::new();
        m.counter_add("requests_total", &[("vendor", "Akamai")], 2);
        m.counter_add("requests_total", &[("vendor", "Akamai")], 3);
        m.counter_add("requests_total", &[("vendor", "Fastly")], 1);
        assert_eq!(
            m.counter_value("requests_total", &[("vendor", "Akamai")]),
            5
        );
        assert_eq!(
            m.counter_value("requests_total", &[("vendor", "Fastly")]),
            1
        );
        assert_eq!(m.counter_value("requests_total", &[("vendor", "CDN77")]), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.gauge_set("cache_hit_ratio", &[("vendor", "KeyCDN")], 0.25);
        m.gauge_set("cache_hit_ratio", &[("vendor", "KeyCDN")], 0.75);
        assert_eq!(
            m.gauge_value("cache_hit_ratio", &[("vendor", "KeyCDN")]),
            Some(0.75)
        );
        assert_eq!(
            m.gauge_value("cache_hit_ratio", &[("vendor", "Azure")]),
            None
        );
    }

    #[test]
    fn histogram_buckets_zero_goes_first() {
        let mut h = Histogram::new(&BYTE_BUCKETS);
        h.observe(0);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 0);
    }

    #[test]
    fn histogram_buckets_u64_max_goes_to_overflow() {
        let mut h = Histogram::new(&BYTE_BUCKETS);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(*h.counts.last().unwrap(), 2);
        assert_eq!(h.count, 2);
        // The u128 sum survives two u64::MAX observations without wrapping.
        assert_eq!(h.sum, 2 * u128::from(u64::MAX));
    }

    #[test]
    fn histogram_bound_is_inclusive() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(10);
        h.observe(11);
        h.observe(100);
        h.observe(101);
        assert_eq!(h.counts, vec![1, 2, 1]);
    }

    #[test]
    fn histogram_bound_at_u64_max_captures_everything() {
        let mut h = Histogram::new(&[u64::MAX]);
        h.observe(u64::MAX);
        assert_eq!(h.counts, vec![1, 0]);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        // Register in opposite orders; snapshots must still match.
        a.counter_add("zz_total", &[], 1);
        a.counter_add("aa_total", &[("vendor", "B")], 1);
        a.counter_add("aa_total", &[("vendor", "A")], 1);
        b.counter_add("aa_total", &[("vendor", "A")], 1);
        b.counter_add("aa_total", &[("vendor", "B")], 1);
        b.counter_add("zz_total", &[], 1);
        assert_eq!(a.snapshot().render(), b.snapshot().render());
        assert_eq!(a.snapshot().to_jsonl(), b.snapshot().to_jsonl());
        let render = a.snapshot().render();
        let first = render.lines().next().unwrap();
        assert!(first.starts_with("aa_total{vendor=A}"), "sorted: {render}");
    }

    #[test]
    fn jsonl_shape_is_one_object_per_line() {
        let m = MetricsRegistry::new();
        m.counter_add("c_total", &[("vendor", "Akamai")], 7);
        m.gauge_set("g", &[], 1.5);
        m.observe_with("h_bytes", &[], &[10, 20], 15);
        let jsonl = m.snapshot().to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(jsonl.contains("\"type\":\"counter\",\"value\":7"));
        assert!(jsonl.contains("\"type\":\"gauge\",\"value\":1.500000"));
        assert!(jsonl.contains("{\"le\":\"20\",\"count\":1}"));
        assert!(jsonl.contains("{\"le\":\"+Inf\",\"count\":0}"));
    }

    #[test]
    fn absorb_adds_counters_and_histograms_and_overwrites_gauges() {
        let main = MetricsRegistry::new();
        main.counter_add("c_total", &[("vendor", "Akamai")], 2);
        main.gauge_set("g", &[], 0.25);
        main.observe_with("h_bytes", &[], &[10, 20], 5);

        let shard = MetricsRegistry::new();
        shard.counter_add("c_total", &[("vendor", "Akamai")], 3);
        shard.counter_add("c_total", &[("vendor", "Fastly")], 1);
        shard.gauge_set("g", &[], 0.75);
        shard.observe_with("h_bytes", &[], &[10, 20], 15);
        shard.observe_with("h_bytes", &[], &[10, 20], 99);

        main.absorb(&shard);
        assert_eq!(main.counter_value("c_total", &[("vendor", "Akamai")]), 5);
        assert_eq!(main.counter_value("c_total", &[("vendor", "Fastly")]), 1);
        assert_eq!(main.gauge_value("g", &[]), Some(0.75));
        let snap = main.snapshot();
        let (_, h) = snap
            .entries
            .iter()
            .find(|(k, _)| k.name == "h_bytes")
            .expect("histogram merged");
        match h {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.sum, 119);
                assert_eq!(h.counts, vec![1, 1, 1]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn absorb_of_disjoint_shards_is_order_independent() {
        let shard = |vendor: &str, v: u64| {
            let m = MetricsRegistry::new();
            m.counter_add("req_total", &[("vendor", vendor)], v);
            m.gauge_set("ratio", &[("vendor", vendor)], v as f64);
            m
        };
        let (a, b, c) = (shard("A", 1), shard("B", 2), shard("C", 3));
        let ab = MetricsRegistry::new();
        ab.absorb(&a);
        ab.absorb(&b);
        ab.absorb(&c);
        let ba = MetricsRegistry::new();
        ba.absorb(&c);
        ba.absorb(&a);
        ba.absorb(&b);
        assert_eq!(ab.snapshot().render(), ba.snapshot().render());
        assert_eq!(ab.snapshot().to_jsonl(), ba.snapshot().to_jsonl());
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn key_render_formats_labels() {
        let key = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(key.render(), "m{a=1,b=2}");
        assert_eq!(MetricKey::new("m", &[]).render(), "m");
    }
}
