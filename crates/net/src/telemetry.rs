//! Deterministic hop-span tracing and the amplification flight recorder.
//!
//! The paper derives every result from *differential traffic observation*:
//! capture each message on each segment of the attacker → FCDN → BCDN →
//! origin path and compare byte counts (§V-A). [`SegmentStats`] gives the
//! aggregate view; this module adds the per-request view — a tree of
//! [`Span`]s that follows one client request through cache lookup, range
//! rewrite, upstream fetch attempts, retries, breaker transitions and
//! serve-stale fallbacks, with wire bytes attached to every hop.
//!
//! Determinism rules (also in DESIGN.md § Observability):
//!
//! * all timestamps come from the [virtual clock](crate::clock) —
//!   wall-clock time never enters a span;
//! * trace ids derive from the campaign seed via a splitmix64 mix, span
//!   ids and sequence numbers are simple monotonic counters — the same
//!   seed reproduces the same ids;
//! * spans are kept in a bounded ring buffer (the *flight recorder*);
//!   when full, the oldest spans are dropped deterministically;
//! * the Chrome-trace exporter emits events sorted by start sequence and
//!   hand-assembles the JSON, so equal inputs yield byte-identical files.
//!
//! Trace context propagates **in process** through a tracer-held span
//! stack rather than through HTTP headers: injecting headers would change
//! `wire_len` on every segment and perturb the very byte counts the
//! testbed exists to measure. The simulator's call tree is synchronous,
//! so the enclosing [`ActiveSpan`] is always the top of the stack. A
//! [`Tracer`] is therefore meant to observe one request tree at a time;
//! concurrent flood experiments (`FlowSim`) model bandwidth, not
//! per-request traces, and do not use it.
//!
//! Span timestamps are exported in microseconds as
//! `start_ms * 1000 + start_seq`. The sub-millisecond component is the
//! span's global sequence number, which keeps parent/child nesting
//! visible (and the file deterministic) even while the virtual clock is
//! frozen between advances.
//!
//! [`SegmentStats`]: crate::segment::SegmentStats

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::{escape_json, MetricsRegistry};

/// Default flight-recorder capacity, in spans.
pub const DEFAULT_RECORDER_CAPACITY: usize = 65_536;

/// Identifier of one request's span tree, derived from the campaign seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifier of one span within a tracer (monotonic counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

/// The kind of work a span covers — one per instrumented decision point
/// of the request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A client request entering the testbed (the root of a trace).
    Request,
    /// Edge-node request handling (one per CDN tier the request crosses).
    Edge,
    /// An edge cache lookup.
    CacheLookup,
    /// A first upstream fetch over a metered segment.
    Hop,
    /// A repeated upstream fetch attempt under the retry policy.
    RetryAttempt,
    /// A circuit-breaker state change or short-circuit.
    BreakerTransition,
    /// A serve-stale fallback decision.
    ServeStale,
    /// Server-side handling at the origin.
    Origin,
    /// An enforcing online-defense action (deflate/throttle/block) taken
    /// by an edge's defense middleware (DESIGN.md §12).
    Defense,
}

impl SpanKind {
    /// Stable lowercase name, used as the Chrome-trace event category.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Edge => "edge",
            SpanKind::CacheLookup => "cache-lookup",
            SpanKind::Hop => "hop",
            SpanKind::RetryAttempt => "retry-attempt",
            SpanKind::BreakerTransition => "breaker",
            SpanKind::ServeStale => "serve-stale",
            SpanKind::Origin => "origin",
            SpanKind::Defense => "defense",
        }
    }
}

/// One finished span: a named interval of virtual time with byte counts
/// and ordered attributes, linked into its request's trace tree.
///
/// Byte direction follows the component that owns the span: `bytes_in`
/// are wire bytes *received by* that component during the span (the
/// request for a server span, the upstream response for a fetch span)
/// and `bytes_out` are wire bytes it *sent*.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span id, unique within the tracer.
    pub id: SpanId,
    /// The trace (request tree) this span belongs to.
    pub trace: TraceId,
    /// Enclosing span, `None` for a trace root.
    pub parent: Option<SpanId>,
    /// Human-readable operation name (static: part of the span taxonomy).
    pub name: &'static str,
    /// Operation kind.
    pub kind: SpanKind,
    /// Virtual-clock start, in milliseconds.
    pub start_ms: u64,
    /// Virtual-clock end, in milliseconds.
    pub end_ms: u64,
    /// Global sequence number at start (total order across all spans).
    pub start_seq: u64,
    /// Global sequence number at finish.
    pub end_seq: u64,
    /// Wire bytes received by the span's component.
    pub bytes_in: u64,
    /// Wire bytes sent by the span's component.
    pub bytes_out: u64,
    /// Structured attributes in insertion order (vendor, status, ...).
    pub attrs: Vec<(&'static str, String)>,
}

impl Span {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Export timestamp in microseconds: `start_ms * 1000 + start_seq`.
    pub fn ts_micros(&self) -> u64 {
        self.start_ms * 1000 + self.start_seq
    }

    /// Export duration in microseconds (at least 1).
    pub fn dur_micros(&self) -> u64 {
        (self.end_ms * 1000 + self.end_seq)
            .saturating_sub(self.ts_micros())
            .max(1)
    }
}

#[derive(Debug)]
struct TracerInner {
    seed: u64,
    id_state: u64,
    next_span: u64,
    seq: u64,
    stack: Vec<(TraceId, SpanId)>,
    spans: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
    traces_started: u64,
}

/// The span factory and flight recorder.
///
/// Cloneable handle; clones share state, so the testbed, edge nodes and
/// origin all append into one recorder and one span stack.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// Creates a tracer whose trace ids derive from `seed`, with the
    /// [default](DEFAULT_RECORDER_CAPACITY) flight-recorder capacity.
    pub fn seeded(seed: u64) -> Tracer {
        Tracer::with_capacity(seed, DEFAULT_RECORDER_CAPACITY)
    }

    /// Creates a tracer with an explicit flight-recorder capacity.
    pub fn with_capacity(seed: u64, capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                seed,
                id_state: seed,
                next_span: 0,
                seq: 0,
                stack: Vec::new(),
                spans: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
                traces_started: 0,
            })),
        }
    }

    /// The seed trace ids derive from.
    pub fn seed(&self) -> u64 {
        self.inner.lock().seed
    }

    /// Starts a span that roots a **new** trace, regardless of any open
    /// spans (used by the testbed for each client request).
    pub fn start_trace(&self, name: &'static str, kind: SpanKind, now_ms: u64) -> ActiveSpan {
        self.start_inner(name, kind, now_ms, true)
    }

    /// Starts a span as a child of the innermost open span, or as the
    /// root of a new trace when none is open.
    pub fn start_span(&self, name: &'static str, kind: SpanKind, now_ms: u64) -> ActiveSpan {
        self.start_inner(name, kind, now_ms, false)
    }

    fn start_inner(
        &self,
        name: &'static str,
        kind: SpanKind,
        now_ms: u64,
        new_trace: bool,
    ) -> ActiveSpan {
        let mut inner = self.inner.lock();
        let parent = if new_trace {
            None
        } else {
            inner.stack.last().copied()
        };
        let (trace, parent_id) = match parent {
            Some((trace, id)) => (trace, Some(id)),
            None => {
                inner.traces_started += 1;
                inner.id_state = inner.id_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                (TraceId(splitmix64(inner.id_state)), None)
            }
        };
        inner.next_span += 1;
        let id = SpanId(inner.next_span);
        inner.seq += 1;
        let start_seq = inner.seq;
        inner.stack.push((trace, id));
        ActiveSpan {
            tracer: self.clone(),
            span: Some(Span {
                id,
                trace,
                parent: parent_id,
                name,
                kind,
                start_ms: now_ms,
                end_ms: now_ms,
                start_seq,
                end_seq: start_seq,
                bytes_in: 0,
                bytes_out: 0,
                attrs: Vec::new(),
            }),
        }
    }

    fn record(&self, mut span: Span, end_ms: u64) {
        let mut inner = self.inner.lock();
        inner.seq += 1;
        span.end_ms = end_ms.max(span.start_ms);
        span.end_seq = inner.seq;
        // Pop this span from the stack (LIFO in the synchronous call
        // tree; search defensively in case of out-of-order drops).
        if let Some(pos) = inner.stack.iter().rposition(|&(_, id)| id == span.id) {
            inner.stack.remove(pos);
        }
        if inner.spans.len() == inner.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(span);
    }

    /// Absorbs another tracer's flight recorder into this one (the
    /// executor's shard-merge step): `other`'s spans are appended with
    /// their span ids and sequence numbers re-based past this tracer's
    /// counters, preserving parent/child links and relative order.
    ///
    /// Trace ids are kept verbatim — they derive from the absorbed
    /// tracer's own seed, which parallel campaigns derive per *unit*
    /// (via `rangeamp::executor::unit_seed`), so the merged recorder is
    /// identical no matter which shard ran the unit. Absorbing unit
    /// bundles in unit order therefore yields a byte-identical
    /// [`Tracer::chrome_trace_json`] at any thread count.
    pub fn absorb(&self, other: &Tracer) {
        let (spans, other_next_span, other_seq, other_dropped, other_traces) = {
            let inner = other.inner.lock();
            (
                inner.spans.iter().cloned().collect::<Vec<Span>>(),
                inner.next_span,
                inner.seq,
                inner.dropped,
                inner.traces_started,
            )
        };
        let mut inner = self.inner.lock();
        let id_base = inner.next_span;
        let seq_base = inner.seq;
        for mut span in spans {
            span.id = SpanId(span.id.0 + id_base);
            span.parent = span.parent.map(|p| SpanId(p.0 + id_base));
            span.start_seq += seq_base;
            span.end_seq += seq_base;
            if inner.spans.len() == inner.capacity {
                inner.spans.pop_front();
                inner.dropped += 1;
            }
            inner.spans.push_back(span);
        }
        inner.next_span = id_base + other_next_span;
        inner.seq = seq_base + other_seq;
        inner.dropped += other_dropped;
        inner.traces_started += other_traces;
    }

    /// All finished spans still in the flight recorder, oldest first.
    pub fn finished_spans(&self) -> Vec<Span> {
        self.inner.lock().spans.iter().cloned().collect()
    }

    /// Number of spans currently held by the flight recorder.
    pub fn span_count(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// Number of spans evicted from the full ring buffer.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Number of traces started.
    pub fn trace_count(&self) -> u64 {
        self.inner.lock().traces_started
    }

    /// Exports the flight recorder as Chrome trace-event JSON — loadable
    /// in `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// Events are "complete" (`ph:"X"`) events sorted by start sequence,
    /// one virtual thread per trace in first-seen order, with span ids,
    /// byte counts and attributes in `args`. The string is hand-built so
    /// identical recorder contents give byte-identical output.
    pub fn chrome_trace_json(&self) -> String {
        let inner = self.inner.lock();
        let mut spans: Vec<&Span> = inner.spans.iter().collect();
        spans.sort_by_key(|s| s.start_seq);

        let mut trace_order: Vec<TraceId> = Vec::new();
        for span in &spans {
            if !trace_order.contains(&span.trace) {
                trace_order.push(span.trace);
            }
        }
        let tid_of = |trace: TraceId| -> usize {
            trace_order.iter().position(|&t| t == trace).unwrap_or(0) + 1
        };

        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"metadata\":{");
        let _ = write!(
            out,
            "\"tool\":\"rangeamp\",\"seed\":{},\"spans\":{},\"dropped\":{},\"traces\":{}",
            inner.seed,
            spans.len(),
            inner.dropped,
            inner.traces_started
        );
        out.push_str("},\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"rangeamp testbed\"}}",
        );
        for &trace in &trace_order {
            let _ = write!(
                out,
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"trace {}\"}}}}",
                tid_of(trace),
                trace
            );
        }
        for span in &spans {
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"trace\":\"{}\",\"span\":\"{}\"",
                escape_json(span.name),
                span.kind.as_str(),
                tid_of(span.trace),
                span.ts_micros(),
                span.dur_micros(),
                span.trace,
                span.id
            );
            if let Some(parent) = span.parent {
                let _ = write!(out, ",\"parent\":\"{parent}\"");
            }
            let _ = write!(
                out,
                ",\"bytes_in\":{},\"bytes_out\":{}",
                span.bytes_in, span.bytes_out
            );
            for (key, value) in &span.attrs {
                let _ = write!(out, ",\"{}\":\"{}\"", escape_json(key), escape_json(value));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// RAII handle on an in-flight span.
///
/// Accumulate bytes and attributes while the work runs, then call
/// [`finish`](ActiveSpan::finish) with the virtual-clock end time. A span
/// dropped without `finish` is recorded with zero duration at its start
/// time, so no span is ever lost.
#[derive(Debug)]
pub struct ActiveSpan {
    tracer: Tracer,
    span: Option<Span>,
}

impl ActiveSpan {
    /// This span's id.
    pub fn id(&self) -> SpanId {
        self.span.as_ref().expect("span not finished").id
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> TraceId {
        self.span.as_ref().expect("span not finished").trace
    }

    /// Appends a structured attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(span) = self.span.as_mut() {
            span.attrs.push((key, value.into()));
        }
    }

    /// Adds wire bytes received by the span's component.
    pub fn add_bytes_in(&mut self, bytes: u64) {
        if let Some(span) = self.span.as_mut() {
            span.bytes_in += bytes;
        }
    }

    /// Adds wire bytes sent by the span's component.
    pub fn add_bytes_out(&mut self, bytes: u64) {
        if let Some(span) = self.span.as_mut() {
            span.bytes_out += bytes;
        }
    }

    /// Finishes the span at virtual time `end_ms` and commits it to the
    /// flight recorder.
    pub fn finish(mut self, end_ms: u64) {
        if let Some(span) = self.span.take() {
            self.tracer.record(span, end_ms);
        }
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        if let Some(span) = self.span.take() {
            let start = span.start_ms;
            self.tracer.record(span, start);
        }
    }
}

/// The telemetry bundle threaded through the testbed: one shared tracer
/// plus one shared metrics registry, both derived from the campaign seed.
#[derive(Debug, Clone)]
pub struct Telemetry {
    tracer: Tracer,
    metrics: MetricsRegistry,
}

impl Telemetry {
    /// Creates a bundle whose trace ids derive from `seed`.
    pub fn seeded(seed: u64) -> Telemetry {
        Telemetry {
            tracer: Tracer::seeded(seed),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Creates a bundle with an explicit flight-recorder capacity.
    pub fn with_capacity(seed: u64, capacity: usize) -> Telemetry {
        Telemetry {
            tracer: Tracer::with_capacity(seed, capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The shared tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Absorbs a unit's telemetry bundle into this one: spans are
    /// re-based and appended ([`Tracer::absorb`]), counters/histograms
    /// add and gauges last-write-win
    /// ([`MetricsRegistry::absorb`](crate::metrics::MetricsRegistry::absorb)).
    ///
    /// Parallel campaigns call this once per unit, **in unit order**,
    /// after all shards have finished — the merged bundle is then a
    /// pure function of the unit results.
    pub fn absorb(&self, unit: &Telemetry) {
        self.tracer.absorb(&unit.tracer);
        self.metrics.absorb(&unit.metrics);
    }
}

/// splitmix64 finalizer — the id mixer (public-domain constant set).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace_ids() {
        let a = Tracer::seeded(7);
        let b = Tracer::seeded(7);
        let c = Tracer::seeded(8);
        let id_of = |t: &Tracer| {
            let span = t.start_trace("r", SpanKind::Request, 0);
            let trace = span.trace();
            span.finish(0);
            trace
        };
        assert_eq!(id_of(&a), id_of(&b));
        assert_ne!(id_of(&a), id_of(&c));
        // Consecutive traces from one tracer differ.
        assert_ne!(id_of(&a), id_of(&a));
    }

    #[test]
    fn children_nest_under_the_open_span() {
        let tracer = Tracer::seeded(1);
        let root = tracer.start_trace("request", SpanKind::Request, 0);
        let root_id = root.id();
        let trace = root.trace();
        let edge = tracer.start_span("edge", SpanKind::Edge, 0);
        let edge_id = edge.id();
        assert_eq!(edge.trace(), trace);
        let fetch = tracer.start_span("fetch", SpanKind::Hop, 1);
        let fetch_id = fetch.id();
        fetch.finish(2);
        edge.finish(2);
        root.finish(3);

        let spans = tracer.finished_spans();
        assert_eq!(spans.len(), 3);
        let get = |id: SpanId| spans.iter().find(|s| s.id == id).unwrap();
        assert_eq!(get(root_id).parent, None);
        assert_eq!(get(edge_id).parent, Some(root_id));
        assert_eq!(get(fetch_id).parent, Some(edge_id));
        assert!(spans.iter().all(|s| s.trace == trace));
        // Finish order is inside-out; start_seq restores tree order.
        assert!(get(root_id).start_seq < get(edge_id).start_seq);
        assert!(get(edge_id).start_seq < get(fetch_id).start_seq);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let tracer = Tracer::seeded(1);
        let root = tracer.start_trace("request", SpanKind::Request, 0);
        let root_id = root.id();
        let a = tracer.start_span("attempt", SpanKind::Hop, 0);
        a.finish(1);
        let b = tracer.start_span("attempt", SpanKind::RetryAttempt, 5);
        b.finish(6);
        root.finish(6);
        let spans = tracer.finished_spans();
        let attempts: Vec<_> = spans.iter().filter(|s| s.parent == Some(root_id)).collect();
        assert_eq!(attempts.len(), 2);
        assert_eq!(attempts[0].kind, SpanKind::Hop);
        assert_eq!(attempts[1].kind, SpanKind::RetryAttempt);
    }

    #[test]
    fn start_trace_ignores_open_spans() {
        let tracer = Tracer::seeded(1);
        let outer = tracer.start_trace("a", SpanKind::Request, 0);
        let inner = tracer.start_trace("b", SpanKind::Request, 0);
        assert_ne!(outer.trace(), inner.trace());
        assert!(tracer.finished_spans().iter().all(|s| s.parent.is_none()));
        inner.finish(0);
        outer.finish(0);
    }

    #[test]
    fn bytes_and_attrs_accumulate() {
        let tracer = Tracer::seeded(3);
        let mut span = tracer.start_trace("fetch", SpanKind::Hop, 10);
        span.add_bytes_out(100);
        span.add_bytes_in(4000);
        span.add_bytes_in(96);
        span.attr("vendor", "Akamai");
        span.attr("status", "206");
        span.finish(12);
        let spans = tracer.finished_spans();
        let s = &spans[0];
        assert_eq!(s.bytes_out, 100);
        assert_eq!(s.bytes_in, 4096);
        assert_eq!(s.attr("vendor"), Some("Akamai"));
        assert_eq!(s.attr("status"), Some("206"));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(s.start_ms, 10);
        assert_eq!(s.end_ms, 12);
    }

    #[test]
    fn dropped_span_is_recorded_with_zero_duration() {
        let tracer = Tracer::seeded(1);
        {
            let mut span = tracer.start_trace("lost", SpanKind::Edge, 42);
            span.attr("note", "dropped without finish");
        }
        let spans = tracer.finished_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_ms, 42);
        assert_eq!(spans[0].end_ms, 42);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let tracer = Tracer::with_capacity(1, 2);
        for ms in 0..5u64 {
            tracer.start_trace("s", SpanKind::Edge, ms).finish(ms);
        }
        assert_eq!(tracer.span_count(), 2);
        assert_eq!(tracer.dropped(), 3);
        let spans = tracer.finished_spans();
        assert_eq!(spans[0].start_ms, 3);
        assert_eq!(spans[1].start_ms, 4);
    }

    #[test]
    fn export_micros_encode_sequence() {
        let tracer = Tracer::seeded(1);
        let a = tracer.start_trace("a", SpanKind::Edge, 2);
        a.finish(3);
        let spans = tracer.finished_spans();
        // start_seq == 1, end_seq == 2.
        assert_eq!(spans[0].ts_micros(), 2001);
        assert_eq!(spans[0].dur_micros(), 3002 - 2001);
    }

    #[test]
    fn chrome_export_is_deterministic_and_structured() {
        let run = || {
            let tracer = Tracer::seeded(7);
            let root = tracer.start_trace("request", SpanKind::Request, 0);
            let mut fetch = tracer.start_span("fetch", SpanKind::Hop, 0);
            fetch.attr("segment", "cdn-origin");
            fetch.add_bytes_in(1048576);
            fetch.finish(4);
            root.finish(4);
            tracer.chrome_trace_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must give byte-identical export");
        assert!(a.starts_with("{\"displayTimeUnit\":\"ms\""));
        assert!(a.ends_with("]}"));
        assert!(a.contains("\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"cat\":\"hop\""));
        assert!(a.contains("\"bytes_in\":1048576"));
        assert!(a.contains("\"segment\":\"cdn-origin\""));
        assert!(a.contains("\"thread_name\""));
        // Balanced braces/brackets — cheap well-formedness check given the
        // vendored serde_json has no parser.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn absorb_rebases_span_ids_and_sequences() {
        let main = Tracer::seeded(1);
        let root = main.start_trace("a", SpanKind::Request, 0);
        root.finish(1);

        let unit = Tracer::seeded(77);
        let uroot = unit.start_trace("b", SpanKind::Request, 0);
        let uroot_id = uroot.id();
        let child = unit.start_span("c", SpanKind::Hop, 0);
        child.finish(1);
        uroot.finish(2);

        main.absorb(&unit);
        let spans = main.finished_spans();
        assert_eq!(spans.len(), 3);
        // Absorbed spans keep their relative structure with re-based ids.
        let absorbed_root = spans.iter().find(|s| s.name == "b").expect("absorbed");
        let absorbed_child = spans.iter().find(|s| s.name == "c").expect("absorbed");
        assert_eq!(absorbed_child.parent, Some(absorbed_root.id));
        assert!(absorbed_root.id.0 > uroot_id.0, "ids re-based past main's");
        // Sequence numbers stay globally monotonic (export sorts on them).
        let mut seqs: Vec<u64> = spans.iter().map(|s| s.start_seq).collect();
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s
        };
        seqs.sort_unstable();
        assert_eq!(seqs, sorted);
        assert_eq!(main.trace_count(), 2);
    }

    #[test]
    fn absorb_in_unit_order_is_shard_independent() {
        // Two "units" traced into their own bundles, absorbed in unit
        // order, must export identically no matter which ran first.
        let unit = |seed: u64| {
            let tel = Telemetry::seeded(seed);
            let mut span = tel
                .tracer()
                .start_trace("unit", SpanKind::Request, seed % 5);
            span.add_bytes_in(seed * 10);
            span.finish(seed % 5 + 1);
            tel.metrics()
                .counter_add("unit_total", &[("seed", &seed.to_string())], seed);
            tel
        };
        let export = |units: Vec<Telemetry>| {
            let main = Telemetry::seeded(0);
            for u in &units {
                main.absorb(u);
            }
            (
                main.tracer().chrome_trace_json(),
                main.metrics().snapshot().to_jsonl(),
            )
        };
        // Build the units in opposite wall-clock orders; absorb order is
        // what matters and stays fixed.
        let (a1, a2) = (unit(3), unit(9));
        let first = export(vec![a1, a2]);
        let (b2, b1) = (unit(9), unit(3));
        let second = export(vec![b1, b2]);
        assert_eq!(first, second);
    }

    #[test]
    fn telemetry_bundle_shares_state_across_clones() {
        let tel = Telemetry::seeded(9);
        let clone = tel.clone();
        clone.metrics().counter_add("x_total", &[], 1);
        clone.tracer().start_trace("s", SpanKind::Edge, 0).finish(0);
        assert_eq!(tel.metrics().counter_value("x_total", &[]), 1);
        assert_eq!(tel.tracer().span_count(), 1);
    }
}
