use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use rangeamp_http::{Request, Response};

use crate::capture::{CaptureEntry, CaptureLog};
use crate::clock::SharedClock;

/// The named connectivity segments of the paper's Fig 1 and Fig 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentName {
    /// Client ↔ CDN (the attacker-facing connection).
    ClientCdn,
    /// CDN ↔ origin server.
    CdnOrigin,
    /// Client ↔ FCDN in the cascaded topology.
    ClientFcdn,
    /// FCDN ↔ BCDN (the OBR attack's victim link).
    FcdnBcdn,
    /// BCDN ↔ origin server.
    BcdnOrigin,
    /// A segment that doesn't fit the canonical names (e.g. the
    /// measurement proxy hops).
    Other(&'static str),
}

impl fmt::Display for SegmentName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SegmentName::ClientCdn => "client-cdn",
            SegmentName::CdnOrigin => "cdn-origin",
            SegmentName::ClientFcdn => "client-fcdn",
            SegmentName::FcdnBcdn => "fcdn-bcdn",
            SegmentName::BcdnOrigin => "bcdn-origin",
            SegmentName::Other(name) => name,
        };
        f.write_str(name)
    }
}

/// Byte counters for one segment, split by direction.
///
/// Each message is metered twice: in its HTTP/1.1 wire form (the paper's
/// testbed protocol) and under HTTP/2 framing (`h2_*` fields), so
/// experiments can verify the paper's §VI-B claim that the RangeAmp
/// threats carry over to HTTP/2 unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Number of requests sent upstream.
    pub requests: u64,
    /// Wire bytes of those requests.
    pub request_bytes: u64,
    /// Number of responses sent downstream.
    pub responses: u64,
    /// Wire bytes of those responses.
    pub response_bytes: u64,
    /// Request bytes under HTTP/2 framing.
    pub h2_request_bytes: u64,
    /// Response bytes under HTTP/2 framing.
    pub h2_response_bytes: u64,
}

impl SegmentStats {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }
}

#[derive(Debug, Default)]
struct SegmentInner {
    stats: SegmentStats,
    capture: CaptureLog,
    aborted: bool,
    clock: Option<SharedClock>,
}

impl SegmentInner {
    fn now_millis(&self) -> u64 {
        self.clock.as_ref().map_or(0, SharedClock::now_millis)
    }
}

/// A metered connection between two roles of the testbed.
///
/// Cloneable handle; clones share the same counters (the CDN node holds one
/// end, the measurement harness the other, like a tap on a real link).
#[derive(Debug, Clone)]
pub struct Segment {
    name: SegmentName,
    inner: Arc<Mutex<SegmentInner>>,
}

impl Segment {
    /// Creates a fresh segment with zeroed counters.
    pub fn new(name: SegmentName) -> Segment {
        Segment {
            name,
            inner: Arc::new(Mutex::new(SegmentInner::default())),
        }
    }

    /// The segment's role name.
    pub fn name(&self) -> SegmentName {
        self.name
    }

    /// Attaches a virtual clock; every later capture is stamped with the
    /// clock's current time, so captures from different segments sharing
    /// one clock can be interleaved into a single timeline. Without a
    /// clock, captures are stamped `at_millis = 0`.
    pub fn attach_clock(&self, clock: SharedClock) {
        self.inner.lock().clock = Some(clock);
    }

    /// Meters and captures a request crossing upstream.
    pub fn send_request(&self, req: &Request) {
        let mut inner = self.inner.lock();
        let now = inner.now_millis();
        inner.stats.requests += 1;
        inner.stats.request_bytes += req.wire_len();
        inner.stats.h2_request_bytes += rangeamp_http::h2frame::request_wire_len(req);
        inner.capture.push(CaptureEntry::of_request_at(req, now));
    }

    /// Meters and captures a response crossing downstream.
    pub fn send_response(&self, resp: &Response) {
        let mut inner = self.inner.lock();
        let now = inner.now_millis();
        inner.stats.responses += 1;
        inner.stats.response_bytes += resp.wire_len();
        inner.stats.h2_response_bytes += rangeamp_http::h2frame::response_wire_len(resp);
        inner.capture.push(CaptureEntry::of_response_at(resp, now));
    }

    /// Meters a response of which the receiver only accepted
    /// `received_bytes` before aborting — the OBR attacker's small
    /// receive-window / early-abort trick (paper §IV-C). The truncated
    /// byte count is what the attacker actually pays for.
    pub fn send_response_truncated(&self, resp: &Response, received_bytes: u64) {
        let mut inner = self.inner.lock();
        let now = inner.now_millis();
        inner.stats.responses += 1;
        inner.stats.response_bytes += resp.wire_len().min(received_bytes);
        inner.stats.h2_response_bytes +=
            rangeamp_http::h2frame::response_wire_len(resp).min(received_bytes);
        inner.capture.push(CaptureEntry::of_response_truncated_at(
            resp,
            received_bytes,
            now,
        ));
        inner.aborted = true;
    }

    /// Marks the segment's front-end connection as aborted by the client.
    pub fn abort(&self) {
        self.inner.lock().aborted = true;
    }

    /// Whether the client aborted this connection.
    pub fn is_aborted(&self) -> bool {
        self.inner.lock().aborted
    }

    /// Snapshot of the byte counters.
    pub fn stats(&self) -> SegmentStats {
        self.inner.lock().stats
    }

    /// Snapshot of the capture log.
    pub fn capture(&self) -> CaptureLog {
        self.inner.lock().capture.clone()
    }

    /// Zeroes counters and capture (between experiment iterations). An
    /// attached clock survives the reset.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        let clock = inner.clock.take();
        *inner = SegmentInner::default();
        inner.clock = clock;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rangeamp_http::{Request, Response, StatusCode};

    #[test]
    fn meters_both_directions() {
        let segment = Segment::new(SegmentName::CdnOrigin);
        let req = Request::get("/f").header("Host", "h").build();
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 100])
            .build();
        segment.send_request(&req);
        segment.send_request(&req);
        segment.send_response(&resp);
        let stats = segment.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.request_bytes, 2 * req.wire_len());
        assert_eq!(stats.responses, 1);
        assert_eq!(stats.response_bytes, resp.wire_len());
        assert_eq!(stats.total_bytes(), 2 * req.wire_len() + resp.wire_len());
    }

    #[test]
    fn clones_share_counters() {
        let a = Segment::new(SegmentName::ClientCdn);
        let b = a.clone();
        a.send_request(&Request::get("/f").build());
        assert_eq!(b.stats().requests, 1);
    }

    #[test]
    fn truncated_delivery_counts_received_bytes_only() {
        let segment = Segment::new(SegmentName::ClientFcdn);
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 10_000])
            .build();
        segment.send_response_truncated(&resp, 512);
        assert_eq!(segment.stats().response_bytes, 512);
        assert!(segment.is_aborted());
        // Capture still records the full message for analysis, plus the
        // fact that only 512 bytes of it were delivered.
        let capture = segment.capture();
        let entry = &capture.entries()[0];
        assert_eq!(entry.wire_len, resp.wire_len());
        assert_eq!(entry.delivered_len, Some(512));
    }

    #[test]
    fn truncation_never_inflates() {
        let segment = Segment::new(SegmentName::ClientFcdn);
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 8])
            .build();
        segment.send_response_truncated(&resp, u64::MAX);
        assert_eq!(segment.stats().response_bytes, resp.wire_len());
    }

    #[test]
    fn reset_zeroes_everything() {
        let segment = Segment::new(SegmentName::ClientCdn);
        segment.send_request(&Request::get("/f").build());
        segment.abort();
        segment.reset();
        assert_eq!(segment.stats(), SegmentStats::default());
        assert!(!segment.is_aborted());
        assert!(segment.capture().is_empty());
    }

    #[test]
    fn attached_clock_stamps_captures_and_survives_reset() {
        use crate::clock::SharedClock;

        let segment = Segment::new(SegmentName::CdnOrigin);
        let clock = SharedClock::new();
        segment.attach_clock(clock.clone());

        segment.send_request(&Request::get("/a").build());
        clock.advance_millis(1_500);
        segment.send_request(&Request::get("/b").build());
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 4])
            .build();
        segment.send_response(&resp);
        clock.advance_millis(500);
        segment.send_response_truncated(&resp, 2);

        let stamps: Vec<u64> = segment
            .capture()
            .entries()
            .iter()
            .map(|e| e.at_millis)
            .collect();
        assert_eq!(stamps, vec![0, 1_500, 1_500, 2_000]);

        // reset() zeroes counters but keeps the clock attached.
        segment.reset();
        assert!(segment.capture().is_empty());
        clock.advance_millis(1);
        segment.send_request(&Request::get("/c").build());
        assert_eq!(segment.capture().entries()[0].at_millis, 2_001);
    }

    #[test]
    fn names_render_like_the_paper() {
        assert_eq!(SegmentName::ClientCdn.to_string(), "client-cdn");
        assert_eq!(SegmentName::FcdnBcdn.to_string(), "fcdn-bcdn");
        assert_eq!(SegmentName::Other("proxy-tap").to_string(), "proxy-tap");
    }
}
