//! Property tests for the fault-injection layer: a seeded [`FaultPlan`]
//! is a pure function of (seed, rates, call order), so two identical
//! runs must meter byte-identical [`SegmentStats`] — the invariant every
//! chaos campaign's reproducibility rests on.

use std::sync::Arc;

use proptest::prelude::*;

use rangeamp_http::{Request, Response, StatusCode};
use rangeamp_net::{
    Delivery, FaultPlan, FaultRates, FaultySegment, Segment, SegmentName, SegmentStats,
};

fn rates_strategy() -> impl Strategy<Value = FaultRates> {
    (
        0.0f64..0.3,
        0.0f64..0.2,
        0.0f64..0.2,
        0.0f64..0.2,
        0.0f64..0.2,
    )
        .prop_map(
            |(origin_5xx, timeout, connection_reset, truncation, slow_link)| FaultRates {
                origin_5xx,
                timeout,
                connection_reset,
                truncation,
                slow_link,
            },
        )
}

/// Replays `sizes` as response transfers through a fresh faulty segment
/// and returns the metered stats plus the delivery verdicts.
fn run_schedule(seed: u64, rates: FaultRates, sizes: &[u64]) -> (SegmentStats, Vec<Delivery>) {
    let plan = Arc::new(FaultPlan::with_rates(seed, rates));
    let faulty = FaultySegment::new(Segment::new(SegmentName::CdnOrigin), plan);
    let req = Request::get("/f.bin")
        .header("Host", "victim.example")
        .build();
    let mut deliveries = Vec::with_capacity(sizes.len());
    for size in sizes {
        faulty.send_request(&req);
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; *size as usize])
            .build();
        deliveries.push(faulty.send_response(&resp));
    }
    (faulty.segment().stats(), deliveries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_seed_same_segment_stats(
        seed in any::<u64>(),
        rates in rates_strategy(),
        sizes in proptest::collection::vec(1u64..200_000, 1..40),
    ) {
        let (stats_a, deliveries_a) = run_schedule(seed, rates, &sizes);
        let (stats_b, deliveries_b) = run_schedule(seed, rates, &sizes);
        prop_assert_eq!(stats_a, stats_b, "same seed must meter identical bytes");
        prop_assert_eq!(deliveries_a, deliveries_b);
    }

    #[test]
    fn healthy_rates_deliver_everything(
        seed in any::<u64>(),
        sizes in proptest::collection::vec(1u64..100_000, 1..20),
    ) {
        let (stats, deliveries) = run_schedule(seed, FaultRates::HEALTHY, &sizes);
        prop_assert!(deliveries.iter().all(|d| *d == Delivery::Full));
        prop_assert_eq!(stats.responses, sizes.len() as u64);
    }

    #[test]
    fn delivered_bytes_never_exceed_wire_bytes(
        seed in any::<u64>(),
        rates in rates_strategy(),
        sizes in proptest::collection::vec(1u64..100_000, 1..30),
    ) {
        let (stats, deliveries) = run_schedule(seed, rates, &sizes);
        let wire_total: u64 = sizes
            .iter()
            .zip(&deliveries)
            .map(|(size, delivery)| {
                let resp = Response::builder(StatusCode::OK)
                    .sized_body(vec![0u8; *size as usize])
                    .build();
                match delivery {
                    Delivery::Full => resp.wire_len(),
                    Delivery::Truncated { delivered } => *delivered,
                    Delivery::TimedOut => 0,
                }
            })
            .sum();
        prop_assert_eq!(stats.response_bytes, wire_total);
    }
}
