//! Property tests for the max-min-fair flow simulator: conservation,
//! capacity, and fairness invariants that the Fig 7 experiment relies on.

use proptest::prelude::*;

use rangeamp_net::FlowSim;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn link_never_exceeds_capacity(
        capacity_mbps in 10.0f64..2000.0,
        flows in proptest::collection::vec((0u64..5_000, 1u64..20_000_000), 1..30),
    ) {
        let mut sim = FlowSim::new(50);
        let link = sim.add_link("l", capacity_mbps);
        for (start, bytes) in &flows {
            sim.schedule_flow(*start, *bytes, &[link]);
        }
        sim.run_until_millis(20_000);
        for (second, mbps) in sim.link_throughput_mbps(link).iter().enumerate() {
            prop_assert!(
                *mbps <= capacity_mbps * 1.001,
                "second {second}: {mbps} > {capacity_mbps}"
            );
        }
    }

    #[test]
    fn all_bytes_are_eventually_delivered(
        flows in proptest::collection::vec((0u64..2_000, 1u64..5_000_000), 1..15),
    ) {
        let mut sim = FlowSim::new(20);
        let link = sim.add_link("l", 1000.0);
        let ids: Vec<_> = flows
            .iter()
            .map(|(start, bytes)| sim.schedule_flow(*start, *bytes, &[link]))
            .collect();
        prop_assert!(sim.run_until_idle(600_000), "should drain");
        for id in ids {
            prop_assert_eq!(sim.flow_remaining_bytes(id), 0);
            prop_assert!(sim.flow_finished_at_ms(id).is_some());
        }
        // Conservation: per-second series sums to the total payload.
        let delivered_bytes: f64 = sim
            .link_throughput_mbps(link)
            .iter()
            .map(|mbps| mbps * 1_000_000.0 / 8.0)
            .sum();
        let total: u64 = flows.iter().map(|(_, b)| *b).sum();
        let error = (delivered_bytes - total as f64).abs() / total as f64;
        prop_assert!(error < 0.01, "conservation error {error}");
    }

    #[test]
    fn equal_flows_finish_together(
        count in 2usize..10,
        bytes in 100_000u64..5_000_000,
    ) {
        let mut sim = FlowSim::new(10);
        let link = sim.add_link("l", 100.0);
        let ids: Vec<_> = (0..count)
            .map(|_| sim.schedule_flow(0, bytes, &[link]))
            .collect();
        prop_assert!(sim.run_until_idle(3_600_000));
        let finish_times: Vec<_> = ids
            .iter()
            .map(|id| sim.flow_finished_at_ms(*id).expect("finished"))
            .collect();
        let min = finish_times.iter().min().expect("non-empty");
        let max = finish_times.iter().max().expect("non-empty");
        // Max-min fairness with identical flows: identical completion.
        prop_assert!(max - min <= 10, "{finish_times:?}");
    }

    #[test]
    fn adding_a_flow_never_speeds_up_others(
        bytes in 1_000_000u64..8_000_000,
    ) {
        let solo_finish = {
            let mut sim = FlowSim::new(10);
            let link = sim.add_link("l", 100.0);
            let flow = sim.schedule_flow(0, bytes, &[link]);
            sim.run_until_idle(3_600_000);
            sim.flow_finished_at_ms(flow).expect("finished")
        };
        let contended_finish = {
            let mut sim = FlowSim::new(10);
            let link = sim.add_link("l", 100.0);
            let flow = sim.schedule_flow(0, bytes, &[link]);
            sim.schedule_flow(0, bytes, &[link]);
            sim.run_until_idle(3_600_000);
            sim.flow_finished_at_ms(flow).expect("finished")
        };
        prop_assert!(contended_finish >= solo_finish);
    }
}
