//! Offline replay of detector verdicts from golden trace fixtures.
//!
//! A fixture under `tests/corpus/` is a plain-text file with two
//! sections: a trace of traffic events and the verdict stream the
//! defense must produce for it. Format:
//!
//! ```text
//! # free-form comments
//! event <t_ms> <client> <target> <range|-> <origin_bytes> <client_bytes>
//! …
//! == verdicts ==
//! t=<t_ms> client=<c> class=<class> action=<action> score=<s.2>
//! ```
//!
//! Each `event` line is one request/outcome pair as the edge pipeline
//! would report it: the replay builds the request, runs it through a
//! fresh [`DefenseLayer`]'s decide/observe cycle (a blocked request
//! costs the origin nothing, like the real pipeline), and renders one
//! verdict line. Regressions in feature extraction, detector
//! thresholds, or ladder transitions show up as a readable line diff.

use rangeamp_cdn::{DefenseAction, DefenseHook, RequestOutcome, CLIENT_ID_HEADER};
use rangeamp_http::Request;

use crate::enforce::{DefenseLayer, EnforceConfig};

/// One traffic event of a replay trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayEvent {
    /// Virtual timestamp in milliseconds.
    pub at_ms: u64,
    /// Client key.
    pub client: String,
    /// Request target (path plus optional query).
    pub target: String,
    /// `Range` header value, if the request carried one.
    pub range: Option<String>,
    /// Origin-side bytes the undefended pipeline reported.
    pub origin_bytes: u64,
    /// Client-facing response bytes the undefended pipeline reported.
    pub client_bytes: u64,
}

/// Wire size charged to a blocked (429) response during replay.
const BLOCKED_RESPONSE_BYTES: u64 = 150;

/// The section separator between trace and verdicts.
pub const VERDICT_SEPARATOR: &str = "== verdicts ==";

/// Parses a fixture into its events and expected verdict lines.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input.
pub fn parse_fixture(text: &str) -> Result<(Vec<ReplayEvent>, Vec<String>), String> {
    let mut events = Vec::new();
    let mut expected = Vec::new();
    let mut in_verdicts = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == VERDICT_SEPARATOR {
            in_verdicts = true;
            continue;
        }
        if in_verdicts {
            expected.push(line.to_string());
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 7 || fields[0] != "event" {
            return Err(format!(
                "line {}: expected `event <t> <client> <target> <range|-> <origin> <client_bytes>`, got `{line}`",
                lineno + 1
            ));
        }
        let parse_u64 = |field: &str, what: &str| {
            field
                .parse::<u64>()
                .map_err(|_| format!("line {}: bad {what} `{field}`", lineno + 1))
        };
        events.push(ReplayEvent {
            at_ms: parse_u64(fields[1], "timestamp")?,
            client: fields[2].to_string(),
            target: fields[3].to_string(),
            range: (fields[4] != "-").then(|| fields[4].to_string()),
            origin_bytes: parse_u64(fields[5], "origin bytes")?,
            client_bytes: parse_u64(fields[6], "client bytes")?,
        });
    }
    Ok((events, expected))
}

/// Replays events through a fresh [`DefenseLayer`] and renders one
/// verdict line per event.
pub fn replay(events: &[ReplayEvent], config: EnforceConfig) -> Vec<String> {
    let layer = DefenseLayer::new(config);
    let mut lines = Vec::with_capacity(events.len());
    for event in events {
        let mut builder = Request::get(&event.target)
            .header("Host", "victim.example")
            .header(CLIENT_ID_HEADER, event.client.clone());
        if let Some(range) = &event.range {
            builder = builder.header("Range", range.clone());
        }
        let req = builder.build();
        let action = layer.decide(&event.client, &req, event.at_ms);
        let outcome = if action == DefenseAction::Block {
            RequestOutcome {
                origin_bytes: 0,
                client_bytes: BLOCKED_RESPONSE_BYTES,
                status: 429,
            }
        } else {
            RequestOutcome {
                origin_bytes: event.origin_bytes,
                client_bytes: event.client_bytes,
                status: 200,
            }
        };
        layer.observe(&event.client, &req, action, &outcome, event.at_ms);
        let verdict = layer
            .client_report(&event.client)
            .and_then(|report| report.last_verdict)
            .expect("observe records a verdict");
        lines.push(format!(
            "t={} client={} class={} action={} score={:.2}",
            event.at_ms,
            event.client,
            verdict.class.as_str(),
            action.as_str(),
            verdict.score,
        ));
    }
    lines
}

/// Parses a fixture, replays its trace under the default config, and
/// diffs the verdict stream against the expected section.
///
/// # Errors
///
/// Returns a readable mismatch report (first diverging line plus the
/// full actual stream, ready to paste into the fixture).
pub fn check_fixture(text: &str) -> Result<(), String> {
    let (events, expected) = parse_fixture(text)?;
    if events.is_empty() {
        return Err("fixture has no events".to_string());
    }
    let actual = replay(&events, EnforceConfig::default());
    if actual == expected {
        return Ok(());
    }
    let mut msg = String::from("verdict stream diverged from fixture\n");
    for i in 0..actual.len().max(expected.len()) {
        let got = actual.get(i).map(String::as_str).unwrap_or("<missing>");
        let want = expected.get(i).map(String::as_str).unwrap_or("<missing>");
        if got != want {
            msg.push_str(&format!(
                "first mismatch at verdict {i}:\n  expected: {want}\n  actual:   {got}\n"
            ));
            break;
        }
    }
    msg.push_str("full actual stream:\n");
    for line in &actual {
        msg.push_str(line);
        msg.push('\n');
    }
    Err(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_round_trip() {
        let text = "\
# tiny trace
event 0 alice /t.bin - 1000 1000
event 100 mallory /t.bin?rnd=1 bytes=0-0 1000000 700
";
        let (events, expected) = parse_fixture(text).expect("parses");
        assert_eq!(events.len(), 2);
        assert!(expected.is_empty());
        assert_eq!(events[0].range, None);
        assert_eq!(events[1].range.as_deref(), Some("bytes=0-0"));
        let lines = replay(&events, EnforceConfig::default());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("t=0 client=alice class=benign action=allow"));
    }

    #[test]
    fn malformed_lines_are_reported_with_numbers() {
        let err = parse_fixture("event 0 alice /t.bin").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_fixture("event x alice /t.bin - 1 1").unwrap_err();
        assert!(err.contains("bad timestamp"), "{err}");
    }

    #[test]
    fn check_fixture_reports_divergence() {
        let text = "\
event 0 alice /t.bin - 1000 1000
== verdicts ==
t=0 client=alice class=benign action=block score=9.99
";
        let err = check_fixture(text).unwrap_err();
        assert!(err.contains("first mismatch at verdict 0"), "{err}");
        assert!(err.contains("full actual stream"), "{err}");
    }

    #[test]
    fn consistent_fixture_checks_clean() {
        let text = "\
event 0 alice /t.bin - 1000 1000
";
        let (events, _) = parse_fixture(text).unwrap();
        let lines = replay(&events, EnforceConfig::default());
        let full = format!("{text}{VERDICT_SEPARATOR}\n{}\n", lines.join("\n"));
        check_fixture(&full).expect("self-generated fixture is consistent");
    }
}
