//! Graduated enforcement: the [`DefenseLayer`] middleware.
//!
//! The layer implements [`DefenseHook`] and owns one
//! [`ClientDetector`] per client key. Detector verdicts drive a
//! per-client rung on the enforcement ladder
//! (allow → deflate → throttle → block, see
//! [`DefenseAction`]):
//!
//! * the **first** suspect verdict lifts the client to *Deflate* —
//!   requests still flow, but under laziness + coalescing transforms
//!   the origin ships at most what the client asked for;
//! * `throttle_after` suspect verdicts arm the per-client **token
//!   bucket** on origin-fetched bytes; a request arriving to an empty
//!   bucket is blocked;
//! * `block_after` suspect verdicts pin the client at **Block**;
//! * windows that close without a single suspect verdict are *calm*;
//!   `calm_windows` consecutive calm windows walk the client one rung
//!   back down and discharge the change-point evidence.
//!
//! Determinism: all state advances only on `decide`/`observe` calls
//! with caller-provided virtual timestamps. A layer driven twice with
//! the same request schedule produces identical reports.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use rangeamp_cdn::{DefenseAction, DefenseHook, RequestOutcome};
use rangeamp_http::Request;

use crate::detector::{ClientDetector, DetectorConfig, Verdict};
use crate::features::RequestSample;

/// Enforcement-ladder parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnforceConfig {
    /// Detector thresholds.
    pub detector: DetectorConfig,
    /// Suspect verdicts after which the token bucket arms (Throttle).
    pub throttle_after: u64,
    /// Suspect verdicts after which the client is pinned at Block.
    pub block_after: u64,
    /// Token-bucket capacity, in origin-fetched bytes.
    pub bucket_capacity: u64,
    /// Token-bucket refill rate, in origin bytes per virtual second.
    pub bucket_refill_per_sec: u64,
    /// Consecutive calm windows that earn one rung of de-escalation.
    pub calm_windows: u64,
    /// Shadow mode: detect and report but always answer Allow (used to
    /// measure detection quality without enforcement side effects).
    pub shadow: bool,
}

impl Default for EnforceConfig {
    fn default() -> EnforceConfig {
        EnforceConfig {
            detector: DetectorConfig::default(),
            throttle_after: 8,
            block_after: 16,
            bucket_capacity: 128 * 1024,
            bucket_refill_per_sec: 16 * 1024,
            calm_windows: 2,
            shadow: false,
        }
    }
}

/// Deterministic token bucket over virtual time (integer arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    capacity: u64,
    refill_per_sec: u64,
    level: u64,
    last_ms: u64,
}

impl TokenBucket {
    /// A full bucket.
    pub fn new(capacity: u64, refill_per_sec: u64, now_ms: u64) -> TokenBucket {
        TokenBucket {
            capacity,
            refill_per_sec,
            level: capacity,
            last_ms: now_ms,
        }
    }

    /// Refills for elapsed virtual time and returns the current level.
    pub fn level_at(&mut self, now_ms: u64) -> u64 {
        let elapsed = now_ms.saturating_sub(self.last_ms);
        if elapsed > 0 {
            let refill = elapsed.saturating_mul(self.refill_per_sec) / 1_000;
            self.level = (self.level + refill).min(self.capacity);
            self.last_ms = now_ms;
        }
        self.level
    }

    /// Consumes up to `cost` tokens (saturating at zero).
    pub fn consume(&mut self, cost: u64, now_ms: u64) {
        self.level_at(now_ms);
        self.level = self.level.saturating_sub(cost);
    }
}

/// Cumulative per-client statistics, exported for evaluation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClientReport {
    /// The client key.
    pub client: String,
    /// Total requests decided.
    pub requests: u64,
    /// Requests per action taken.
    pub allowed: u64,
    /// Requests handled under Deflate.
    pub deflated: u64,
    /// Requests handled under Throttle.
    pub throttled: u64,
    /// Requests answered 429.
    pub blocked: u64,
    /// Suspect verdicts accumulated.
    pub suspects: u64,
    /// Origin-side bytes across all requests.
    pub origin_bytes: u64,
    /// Client-facing response bytes across all requests.
    pub client_bytes: u64,
    /// Client request wire bytes across all requests.
    pub request_bytes: u64,
    /// Origin bytes on requests handled under an enforcing action.
    pub enforced_origin_bytes: u64,
    /// Request wire bytes on requests handled under an enforcing action.
    pub enforced_request_bytes: u64,
    /// Virtual time of the first suspect verdict.
    pub first_flag_ms: Option<u64>,
    /// The most severe action ever taken for this client.
    pub peak_action: Option<DefenseAction>,
    /// Most recent verdict.
    pub last_verdict: Option<Verdict>,
}

impl ClientReport {
    /// Residual amplification while enforcement was active: origin
    /// bytes fetched per request byte the client spent, over enforced
    /// requests only. Zero before any enforcement.
    pub fn residual_amplification(&self) -> f64 {
        if self.enforced_request_bytes == 0 {
            0.0
        } else {
            self.enforced_origin_bytes as f64 / self.enforced_request_bytes as f64
        }
    }
}

#[derive(Debug)]
struct ClientState {
    detector: ClientDetector,
    rung: DefenseAction,
    bucket: Option<TokenBucket>,
    calm_streak: u64,
    report: ClientReport,
}

impl ClientState {
    fn new(config: &EnforceConfig, client: &str) -> ClientState {
        ClientState {
            detector: ClientDetector::new(config.detector),
            rung: DefenseAction::Allow,
            bucket: None,
            calm_streak: 0,
            report: ClientReport {
                client: client.to_string(),
                ..ClientReport::default()
            },
        }
    }
}

/// The pluggable online defense: detectors + enforcement ladder.
///
/// Attach to an edge with
/// [`EdgeNode::with_defense`](rangeamp_cdn::EdgeNode::with_defense).
/// One layer instance per campaign unit — state is per-layer, and the
/// determinism contract of [`DefenseHook`] forbids sharing a layer
/// across concurrently-driven testbeds.
#[derive(Debug)]
pub struct DefenseLayer {
    config: EnforceConfig,
    clients: Mutex<BTreeMap<String, ClientState>>,
}

impl Default for DefenseLayer {
    fn default() -> DefenseLayer {
        DefenseLayer::new(EnforceConfig::default())
    }
}

impl DefenseLayer {
    /// A fresh layer.
    pub fn new(config: EnforceConfig) -> DefenseLayer {
        DefenseLayer {
            config,
            clients: Mutex::new(BTreeMap::new()),
        }
    }

    /// A detect-only layer: verdicts and reports accumulate but every
    /// decision is Allow.
    pub fn shadow() -> DefenseLayer {
        DefenseLayer::new(EnforceConfig {
            shadow: true,
            ..EnforceConfig::default()
        })
    }

    /// The active configuration.
    pub fn config(&self) -> EnforceConfig {
        self.config
    }

    /// Snapshot of every client's report, ordered by client key.
    pub fn report(&self) -> Vec<ClientReport> {
        self.clients
            .lock()
            .values()
            .map(|state| state.report.clone())
            .collect()
    }

    /// Snapshot of one client's report.
    pub fn client_report(&self, client: &str) -> Option<ClientReport> {
        self.clients
            .lock()
            .get(client)
            .map(|state| state.report.clone())
    }

    /// The enforcement rung a client currently sits on.
    pub fn client_rung(&self, client: &str) -> DefenseAction {
        self.clients
            .lock()
            .get(client)
            .map_or(DefenseAction::Allow, |state| state.rung)
    }

    fn escalate(state: &mut ClientState, config: &EnforceConfig, now_ms: u64) {
        state.calm_streak = 0;
        let suspects = state.report.suspects;
        let target = if suspects >= config.block_after {
            DefenseAction::Block
        } else if suspects >= config.throttle_after {
            DefenseAction::Throttle
        } else {
            DefenseAction::Deflate
        };
        if target > state.rung {
            state.rung = target;
        }
        if state.rung == DefenseAction::Throttle && state.bucket.is_none() {
            state.bucket = Some(TokenBucket::new(
                config.bucket_capacity,
                config.bucket_refill_per_sec,
                now_ms,
            ));
        }
    }

    fn deescalate(state: &mut ClientState) {
        state.rung = match state.rung {
            DefenseAction::Block => DefenseAction::Throttle,
            DefenseAction::Throttle => DefenseAction::Deflate,
            DefenseAction::Deflate | DefenseAction::Allow => {
                state.detector.relax();
                DefenseAction::Allow
            }
        };
        if state.rung < DefenseAction::Throttle {
            state.bucket = None;
        }
        state.calm_streak = 0;
    }
}

impl DefenseHook for DefenseLayer {
    fn decide(&self, client: &str, _req: &Request, now_ms: u64) -> DefenseAction {
        let mut clients = self.clients.lock();
        let state = clients
            .entry(client.to_string())
            .or_insert_with(|| ClientState::new(&self.config, client));
        if self.config.shadow {
            return DefenseAction::Allow;
        }
        match state.rung {
            DefenseAction::Throttle => {
                let empty = state
                    .bucket
                    .as_mut()
                    .is_some_and(|bucket| bucket.level_at(now_ms) == 0);
                if empty {
                    DefenseAction::Block
                } else {
                    DefenseAction::Throttle
                }
            }
            rung => rung,
        }
    }

    fn observe(
        &self,
        client: &str,
        req: &Request,
        action: DefenseAction,
        outcome: &RequestOutcome,
        now_ms: u64,
    ) {
        let sample = RequestSample::of(req);
        let mut clients = self.clients.lock();
        let state = clients
            .entry(client.to_string())
            .or_insert_with(|| ClientState::new(&self.config, client));

        state.report.requests += 1;
        match action {
            DefenseAction::Allow => state.report.allowed += 1,
            DefenseAction::Deflate => state.report.deflated += 1,
            DefenseAction::Throttle => state.report.throttled += 1,
            DefenseAction::Block => state.report.blocked += 1,
        }
        state.report.origin_bytes += outcome.origin_bytes;
        state.report.client_bytes += outcome.client_bytes;
        state.report.request_bytes += sample.request_bytes;
        if action.is_enforcing() {
            state.report.enforced_origin_bytes += outcome.origin_bytes;
            state.report.enforced_request_bytes += sample.request_bytes;
        }
        state.report.peak_action = Some(state.report.peak_action.map_or(action, |p| p.max(action)));

        if action == DefenseAction::Throttle {
            if let Some(bucket) = state.bucket.as_mut() {
                bucket.consume(outcome.origin_bytes, now_ms);
            }
        }

        let observation =
            state
                .detector
                .observe(&sample, outcome.origin_bytes, outcome.client_bytes, now_ms);
        state.report.last_verdict = Some(observation.verdict);

        if let Some(window) = observation.closed_window {
            if window.suspects == 0 {
                state.calm_streak += 1;
                if state.calm_streak >= self.config.calm_windows {
                    Self::deescalate(state);
                }
            } else {
                state.calm_streak = 0;
            }
        }

        if observation.verdict.class.is_suspect() {
            state.report.suspects += 1;
            if state.report.first_flag_ms.is_none() {
                state.report.first_flag_ms = Some(now_ms);
            }
            if !self.config.shadow {
                Self::escalate(state, &self.config, now_ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attack_request(rnd: u64) -> Request {
        Request::get(&format!("/t.bin?rnd={rnd}"))
            .header("Host", "victim")
            .header("X-Client-Id", "mallory")
            .header("Range", "bytes=0-0")
            .build()
    }

    fn benign_request() -> Request {
        Request::get("/t.bin")
            .header("Host", "victim")
            .header("X-Client-Id", "alice")
            .build()
    }

    fn drive(layer: &DefenseLayer, req: &Request, origin: u64, client_bytes: u64, now: u64) {
        let key = rangeamp_cdn::client_key(req).to_string();
        let action = layer.decide(&key, req, now);
        let outcome = RequestOutcome {
            origin_bytes: if action == DefenseAction::Block {
                0
            } else {
                origin
            },
            client_bytes,
            status: 206,
        };
        layer.observe(&key, req, action, &outcome, now);
    }

    #[test]
    fn ladder_escalates_to_block_under_sustained_attack() {
        let layer = DefenseLayer::default();
        for i in 0..40u64 {
            drive(&layer, &attack_request(i), 1_000_000, 700, i * 100);
        }
        let report = layer.client_report("mallory").expect("tracked");
        assert_eq!(layer.client_rung("mallory"), DefenseAction::Block);
        assert!(report.blocked > 0, "bucket drained into blocks");
        assert!(report.first_flag_ms.is_some());
        assert_eq!(report.peak_action, Some(DefenseAction::Block));
    }

    #[test]
    fn benign_client_rides_allow_forever() {
        let layer = DefenseLayer::default();
        for i in 0..100u64 {
            drive(&layer, &benign_request(), 0, 1_000_000, i * 250);
        }
        let report = layer.client_report("alice").expect("tracked");
        assert_eq!(report.allowed, 100);
        assert_eq!(report.blocked, 0);
        assert_eq!(report.suspects, 0);
        assert_eq!(layer.client_rung("alice"), DefenseAction::Allow);
    }

    #[test]
    fn calm_windows_deescalate_one_rung_at_a_time() {
        let config = EnforceConfig::default();
        let window = config.detector.features.window_ms;
        let layer = DefenseLayer::new(config);
        // Burst to Deflate…
        for i in 0..4u64 {
            drive(&layer, &attack_request(i), 1_000_000, 700, i * 10);
        }
        assert!(layer.client_rung("mallory") >= DefenseAction::Deflate);
        // …then go quiet and benign for several windows.
        let benign_as_mallory = Request::get("/t.bin")
            .header("Host", "victim")
            .header("X-Client-Id", "mallory")
            .build();
        for w in 1..=6u64 {
            drive(&layer, &benign_as_mallory, 0, 1_000, w * window + 1);
        }
        assert_eq!(layer.client_rung("mallory"), DefenseAction::Allow);
    }

    #[test]
    fn shadow_mode_reports_without_enforcing() {
        let layer = DefenseLayer::shadow();
        for i in 0..20u64 {
            drive(&layer, &attack_request(i), 1_000_000, 700, i * 100);
        }
        let report = layer.client_report("mallory").expect("tracked");
        assert_eq!(report.allowed, 20, "shadow never enforces");
        assert!(report.suspects > 0, "…but it still detects");
        assert!(report.first_flag_ms.is_some());
    }

    #[test]
    fn token_bucket_refills_on_virtual_time() {
        let mut bucket = TokenBucket::new(1_000, 100, 0);
        bucket.consume(1_000, 0);
        assert_eq!(bucket.level_at(0), 0);
        assert_eq!(bucket.level_at(5_000), 500, "100 B/s for 5 s");
        assert_eq!(bucket.level_at(60_000), 1_000, "capped at capacity");
    }

    #[test]
    fn reports_are_ordered_by_client_key() {
        let layer = DefenseLayer::default();
        drive(&layer, &benign_request(), 0, 1_000, 0);
        drive(&layer, &attack_request(0), 1_000, 700, 0);
        let clients: Vec<String> = layer.report().into_iter().map(|r| r.client).collect();
        assert_eq!(clients, vec!["alice".to_string(), "mallory".to_string()]);
    }
}
