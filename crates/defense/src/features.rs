//! Streaming per-client traffic features over virtual-time windows.
//!
//! The detectors never see raw requests — they see the small, fixed set
//! of observables this module distils from each request/outcome pair:
//!
//! * **tiny-range ratio** — the fraction of requests whose smallest
//!   byte-range spec covers at most a few dozen bytes (`bytes=0-0` and
//!   friends, the SBR signature of §IV),
//! * **overlapping-range multiplicity** — pairs of overlapping specs in
//!   a multi-range header (the OBR signature of §V),
//! * **cache-busting churn** — requests whose query string was never
//!   seen from this client before (`?rnd=…` per request, §II-A),
//! * **per-request amplification ratio** — origin-side bytes fetched
//!   for the request versus the client-facing response size, from the
//!   edge's [`Segment`] byte meters via
//!   [`RequestOutcome`](rangeamp_cdn::RequestOutcome).
//!
//! Everything is windowed on the *virtual* clock the testbed drives, so
//! feature streams are deterministic functions of the request schedule.
//!
//! [`Segment`]: rangeamp_net — the metered link type in `rangeamp-net`.

use std::collections::BTreeSet;

use rangeamp_http::range::{ByteRangeSpec, RangeHeader};
use rangeamp_http::Request;

/// Sliding-window parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureConfig {
    /// Window width in virtual milliseconds.
    pub window_ms: u64,
    /// A range spec covering at most this many bytes counts as *tiny*.
    pub tiny_threshold_bytes: u64,
}

impl Default for FeatureConfig {
    fn default() -> FeatureConfig {
        FeatureConfig {
            window_ms: 5_000,
            tiny_threshold_bytes: 64,
        }
    }
}

/// The per-request observables extracted from one HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSample {
    /// The query string of the request target, if any.
    pub query: Option<String>,
    /// The parsed `Range` header, if present and well-formed.
    pub range: Option<RangeHeader>,
    /// Wire size of the request.
    pub request_bytes: u64,
}

impl RequestSample {
    /// Extracts the sample from a request.
    pub fn of(req: &Request) -> RequestSample {
        RequestSample {
            query: req.uri().query().map(str::to_string),
            range: req
                .headers()
                .get("range")
                .and_then(|v| RangeHeader::parse(v).ok()),
            request_bytes: req.wire_len(),
        }
    }

    /// The span in bytes of the smallest *bounded* spec in the range
    /// header: `first-last` and suffix specs have a definite span,
    /// open-ended `first-` specs don't (they reach EOF and are never
    /// tiny).
    pub fn smallest_span(&self) -> Option<u64> {
        let header = self.range.as_ref()?;
        header
            .specs()
            .iter()
            .filter_map(|spec| match *spec {
                ByteRangeSpec::FromTo { first, last } => Some(last - first + 1),
                ByteRangeSpec::Suffix { len } => Some(len),
                ByteRangeSpec::From { .. } => None,
            })
            .min()
    }

    /// Whether the request asks for a tiny range under `threshold`.
    pub fn is_tiny(&self, threshold: u64) -> bool {
        self.smallest_span().is_some_and(|span| span <= threshold)
    }

    /// Overlapping spec pairs in the range header, resolved against an
    /// unbounded representation (the defense does not know the resource
    /// size; `bytes=0-,0-` overlaps at any size).
    pub fn overlap_pairs(&self) -> u64 {
        self.range
            .as_ref()
            .filter(|header| header.is_multi())
            .map_or(0, |header| header.overlapping_pairs(u64::MAX) as u64)
    }
}

/// Aggregated features of one closed (or in-progress) window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowFeatures {
    /// Window ordinal: `floor(t / window_ms)`.
    pub index: u64,
    /// Requests observed.
    pub requests: u64,
    /// Requests with a tiny range.
    pub tiny: u64,
    /// Requests whose query string was fresh (cache-busting churn).
    pub busting: u64,
    /// Requests that were *both* tiny and cache-busting — the SBR shape.
    pub tiny_busting: u64,
    /// Requests carrying a multi-range header.
    pub multi: u64,
    /// Maximum per-request overlapping-pair count seen.
    pub overlap_pairs_max: u64,
    /// Origin-side response bytes attributed to this client.
    pub origin_bytes: u64,
    /// Client-facing response bytes.
    pub client_bytes: u64,
    /// Client request wire bytes.
    pub request_bytes: u64,
    /// Requests the detector flagged as suspect in this window.
    pub suspects: u64,
}

impl WindowFeatures {
    /// Fraction of requests with a tiny range (0 when empty).
    pub fn tiny_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.tiny as f64 / self.requests as f64
        }
    }

    /// Window-level amplification: origin bytes per client response byte.
    pub fn amp_ratio(&self) -> f64 {
        self.origin_bytes as f64 / (self.client_bytes.max(1)) as f64
    }
}

/// Per-client streaming feature extractor.
///
/// The query-string memory is bounded: once `QUERY_MEMORY` distinct
/// query strings accumulate the set is cleared (wholesale churn *is*
/// the signal; remembering every attacker nonce would leak memory).
#[derive(Debug, Clone)]
pub struct ClientFeatures {
    config: FeatureConfig,
    seen_queries: BTreeSet<String>,
    current: WindowFeatures,
    started: bool,
    /// Closed windows so far.
    pub windows_closed: u64,
}

/// Cap on remembered distinct query strings per client.
const QUERY_MEMORY: usize = 1024;

impl ClientFeatures {
    /// A fresh extractor.
    pub fn new(config: FeatureConfig) -> ClientFeatures {
        ClientFeatures {
            config,
            seen_queries: BTreeSet::new(),
            current: WindowFeatures::default(),
            started: false,
            windows_closed: 0,
        }
    }

    /// The configured window parameters.
    pub fn config(&self) -> FeatureConfig {
        self.config
    }

    /// The in-progress window.
    pub fn current(&self) -> &WindowFeatures {
        &self.current
    }

    /// Marks one suspect verdict in the current window (detector
    /// feedback used for calm-window de-escalation).
    pub fn mark_suspect(&mut self) {
        self.current.suspects += 1;
    }

    /// Advances the window clock to `now_ms`, closing the current
    /// window if `now_ms` falls past its end. Returns the closed
    /// window, if any. Idle gaps close at most one window — windows in
    /// which the client sent nothing produce no feature rows.
    pub fn roll_to(&mut self, now_ms: u64) -> Option<WindowFeatures> {
        let index = now_ms / self.config.window_ms.max(1);
        if !self.started {
            self.started = true;
            self.current.index = index;
            return None;
        }
        if index == self.current.index {
            return None;
        }
        let closed = self.current;
        self.current = WindowFeatures {
            index,
            ..WindowFeatures::default()
        };
        self.windows_closed += 1;
        Some(closed)
    }

    /// Folds one request into the current window. Returns the
    /// per-request flags the detectors classify on:
    /// `(tiny_and_busting, overlap_pairs)`.
    pub fn on_request(&mut self, sample: &RequestSample) -> (bool, u64) {
        self.current.requests += 1;
        self.current.request_bytes += sample.request_bytes;
        let tiny = sample.is_tiny(self.config.tiny_threshold_bytes);
        if tiny {
            self.current.tiny += 1;
        }
        let busting = match &sample.query {
            None => false,
            Some(query) => {
                let fresh = !self.seen_queries.contains(query);
                if fresh {
                    if self.seen_queries.len() >= QUERY_MEMORY {
                        self.seen_queries.clear();
                    }
                    self.seen_queries.insert(query.clone());
                }
                fresh
            }
        };
        if busting {
            self.current.busting += 1;
        }
        if tiny && busting {
            self.current.tiny_busting += 1;
        }
        let pairs = sample.overlap_pairs();
        if sample.range.as_ref().is_some_and(RangeHeader::is_multi) {
            self.current.multi += 1;
        }
        self.current.overlap_pairs_max = self.current.overlap_pairs_max.max(pairs);
        (tiny && busting, pairs)
    }

    /// Folds the byte-level outcome of the request just observed.
    pub fn on_outcome(&mut self, origin_bytes: u64, client_bytes: u64) {
        self.current.origin_bytes += origin_bytes;
        self.current.client_bytes += client_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(target: &str, range: Option<&str>) -> RequestSample {
        let mut builder = Request::get(target).header("Host", "victim");
        if let Some(range) = range {
            builder = builder.header("Range", range);
        }
        RequestSample::of(&builder.build())
    }

    #[test]
    fn sbr_shape_is_tiny_and_busting() {
        let mut features = ClientFeatures::new(FeatureConfig::default());
        let (flag, pairs) = features.on_request(&sample("/t.bin?rnd=1", Some("bytes=0-0")));
        assert!(flag, "tiny + fresh query");
        assert_eq!(pairs, 0);
        // Same query again: no longer busting.
        let (flag, _) = features.on_request(&sample("/t.bin?rnd=1", Some("bytes=0-0")));
        assert!(!flag);
        assert_eq!(features.current().tiny, 2);
        assert_eq!(features.current().busting, 1);
        assert_eq!(features.current().tiny_busting, 1);
    }

    #[test]
    fn open_ended_ranges_are_not_tiny() {
        let s = sample("/t.bin", Some("bytes=1000-"));
        assert_eq!(s.smallest_span(), None);
        assert!(!s.is_tiny(64));
        // But a suffix is bounded.
        assert!(sample("/t.bin", Some("bytes=-1")).is_tiny(64));
    }

    #[test]
    fn obr_shape_counts_overlap_pairs() {
        let s = sample("/t.bin?rnd=2", Some("bytes=0-,0-,0-"));
        assert_eq!(s.overlap_pairs(), 3);
        let disjoint = sample("/t.bin", Some("bytes=0-0,10-10"));
        assert_eq!(disjoint.overlap_pairs(), 0);
    }

    #[test]
    fn windows_roll_on_the_virtual_clock() {
        let mut features = ClientFeatures::new(FeatureConfig {
            window_ms: 1_000,
            ..FeatureConfig::default()
        });
        assert!(features.roll_to(100).is_none(), "first window opens");
        features.on_request(&sample("/t.bin?rnd=1", Some("bytes=0-0")));
        features.on_outcome(1_000_000, 600);
        assert!(features.roll_to(900).is_none(), "same window");
        let closed = features.roll_to(2_500).expect("window closed");
        assert_eq!(closed.index, 0);
        assert_eq!(closed.requests, 1);
        assert!(closed.amp_ratio() > 1_000.0);
        assert_eq!(features.current().index, 2, "idle window skipped");
        assert_eq!(features.current().requests, 0);
    }

    #[test]
    fn query_memory_is_bounded() {
        let mut features = ClientFeatures::new(FeatureConfig::default());
        for i in 0..(QUERY_MEMORY * 2 + 10) {
            features.on_request(&sample(&format!("/t.bin?rnd={i}"), Some("bytes=0-0")));
        }
        assert!(features.seen_queries.len() <= QUERY_MEMORY);
        // Every one of those queries was fresh — churn kept counting.
        assert_eq!(
            features.current().busting,
            (QUERY_MEMORY * 2 + 10) as u64,
            "clearing the memory must not hide churn"
        );
    }
}
