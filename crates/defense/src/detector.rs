//! Deterministic detectors: threshold rules + EWMA/CUSUM change-points.
//!
//! Two rule families run side by side on the feature stream of
//! [`ClientFeatures`](crate::features::ClientFeatures):
//!
//! * **Shape rules** (thresholds) fire on what a single request or the
//!   current window *looks like*, independent of byte counts: repeated
//!   tiny cache-busted ranges (SBR shape) and overlapping multi-range
//!   sets (OBR shape). These catch an attack on a laziness vendor where
//!   the amplification ratio itself stays modest.
//! * **Change-point rules** fire on what the traffic *costs*: a
//!   one-sided CUSUM over the per-request log-amplification ratio
//!   accumulates evidence that origin bytes persistently exceed
//!   client-facing bytes, and an EWMA smooths the same statistic into
//!   the verdict score. These catch amplification shapes the threshold
//!   rules were not written for.
//!
//! Everything is a pure function of the observed stream and virtual
//! timestamps — no wall clock, no randomness — so verdict streams are
//! reproducible byte for byte (golden fixtures under `tests/corpus/`).

use crate::features::{ClientFeatures, FeatureConfig, RequestSample, WindowFeatures};

/// Classification of a client's current traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Nothing suspicious.
    Benign,
    /// Small-Byte-Range abuse: repeated tiny, cache-busted ranges or a
    /// sustained per-request amplification drift.
    SbrSuspect,
    /// Overlapping-Byte-Ranges abuse: multi-range sets with overlapping
    /// members.
    ObrSuspect,
}

impl TrafficClass {
    /// Stable lowercase label (fixtures, JSON, metrics).
    pub fn as_str(&self) -> &'static str {
        match self {
            TrafficClass::Benign => "benign",
            TrafficClass::SbrSuspect => "sbr-suspect",
            TrafficClass::ObrSuspect => "obr-suspect",
        }
    }

    /// Whether the class is an attack suspicion.
    pub fn is_suspect(&self) -> bool {
        !matches!(self, TrafficClass::Benign)
    }
}

/// A scored classification at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// The class assigned to the client's traffic.
    pub class: TrafficClass,
    /// Evidence strength: overlap pairs for OBR, tiny-busted count or
    /// CUSUM statistic for SBR, smoothed log-amplification for benign.
    pub score: f64,
    /// Virtual timestamp of the observation.
    pub at_ms: u64,
}

/// Detector thresholds. The defaults are pinned by the golden fixtures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Feature-extraction parameters.
    pub features: FeatureConfig,
    /// Tiny + cache-busted requests within one window that trip the SBR
    /// shape rule.
    pub sbr_tiny_busting: u64,
    /// Per-request overlapping pairs that trip the OBR shape rule
    /// (RFC 7233 §6.1 calls more than two overlapping ranges egregious).
    pub obr_overlap_pairs: u64,
    /// CUSUM slack: log2 amplification tolerated per request before
    /// evidence accumulates (2.0 ⇒ up to 4× looks normal).
    pub cusum_k: f64,
    /// CUSUM alarm threshold on the accumulated statistic.
    pub cusum_h: f64,
    /// EWMA smoothing factor for the verdict score.
    pub ewma_alpha: f64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            features: FeatureConfig::default(),
            sbr_tiny_busting: 3,
            obr_overlap_pairs: 3,
            cusum_k: 2.0,
            cusum_h: 16.0,
            ewma_alpha: 0.3,
        }
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh EWMA with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        Ewma { alpha, value: None }
    }

    /// Folds in one observation and returns the smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(next);
        next
    }

    /// The current smoothed value (0 before any observation).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

/// One-sided (positive-drift) CUSUM change-point statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cusum {
    k: f64,
    h: f64,
    s: f64,
}

impl Cusum {
    /// A fresh CUSUM with slack `k` and alarm threshold `h`.
    pub fn new(k: f64, h: f64) -> Cusum {
        Cusum { k, h, s: 0.0 }
    }

    /// Folds in one observation; returns whether the statistic is in
    /// alarm (`S_t = max(0, S_{t-1} + x - k) > h`).
    pub fn update(&mut self, x: f64) -> bool {
        self.s = (self.s + x - self.k).max(0.0);
        self.in_alarm()
    }

    /// The accumulated statistic.
    pub fn value(&self) -> f64 {
        self.s
    }

    /// Whether the statistic currently exceeds the alarm threshold.
    pub fn in_alarm(&self) -> bool {
        self.s > self.h
    }

    /// Resets accumulated evidence (used when a client de-escalates).
    pub fn reset(&mut self) {
        self.s = 0.0;
    }
}

/// The result of feeding one request/outcome pair to a detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The verdict for this request.
    pub verdict: Verdict,
    /// The window that closed on this observation, if any — `suspects`
    /// is zero for a *calm* window (de-escalation evidence).
    pub closed_window: Option<WindowFeatures>,
}

/// Streaming per-client detector: features + shape rules + change-points.
#[derive(Debug, Clone)]
pub struct ClientDetector {
    config: DetectorConfig,
    features: ClientFeatures,
    amp_ewma: Ewma,
    amp_cusum: Cusum,
    last: Option<Verdict>,
}

impl ClientDetector {
    /// A fresh detector.
    pub fn new(config: DetectorConfig) -> ClientDetector {
        ClientDetector {
            config,
            features: ClientFeatures::new(config.features),
            amp_ewma: Ewma::new(config.ewma_alpha),
            amp_cusum: Cusum::new(config.cusum_k, config.cusum_h),
            last: None,
        }
    }

    /// The detector's feature extractor (read-only).
    pub fn features(&self) -> &ClientFeatures {
        &self.features
    }

    /// The most recent verdict, if any request has been observed.
    pub fn last_verdict(&self) -> Option<Verdict> {
        self.last
    }

    /// Discharges accumulated change-point evidence (called by the
    /// enforcement layer when a client earns de-escalation).
    pub fn relax(&mut self) {
        self.amp_cusum.reset();
    }

    /// Observes one request and its byte-level outcome at virtual time
    /// `now_ms`, returning the verdict and any closed window.
    pub fn observe(
        &mut self,
        sample: &RequestSample,
        origin_bytes: u64,
        client_bytes: u64,
        now_ms: u64,
    ) -> Observation {
        let closed_window = self.features.roll_to(now_ms);
        let (_, overlap_pairs) = self.features.on_request(sample);
        self.features.on_outcome(origin_bytes, client_bytes);

        // Per-request log-amplification: origin bytes per client-facing
        // byte. Benign forwarding sits near log2(1 + 1) = 1; a deletion
        // vendor serving 1 MB for a one-byte range sits near 10.
        let ratio = origin_bytes as f64 / client_bytes.max(1) as f64;
        let log_amp = (1.0 + ratio).log2();
        let smoothed = self.amp_ewma.update(log_amp);
        let cusum_alarm = self.amp_cusum.update(log_amp);
        let cusum_score = self.amp_cusum.value();
        if cusum_alarm {
            // Alarm-and-restart: the alarm becomes this request's
            // verdict; carrying the saturated statistic forward would
            // keep flagging a client whose traffic already turned cheap.
            self.amp_cusum.reset();
        }

        let window = self.features.current();
        let verdict = if overlap_pairs >= self.config.obr_overlap_pairs {
            Verdict {
                class: TrafficClass::ObrSuspect,
                score: overlap_pairs as f64,
                at_ms: now_ms,
            }
        } else if window.tiny_busting >= self.config.sbr_tiny_busting {
            Verdict {
                class: TrafficClass::SbrSuspect,
                score: window.tiny_busting as f64,
                at_ms: now_ms,
            }
        } else if cusum_alarm {
            Verdict {
                class: TrafficClass::SbrSuspect,
                score: cusum_score,
                at_ms: now_ms,
            }
        } else {
            Verdict {
                class: TrafficClass::Benign,
                score: smoothed,
                at_ms: now_ms,
            }
        };
        if verdict.class.is_suspect() {
            self.features.mark_suspect();
        }
        self.last = Some(verdict);
        Observation {
            verdict,
            closed_window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rangeamp_http::Request;

    fn sample(target: &str, range: Option<&str>) -> RequestSample {
        let mut builder = Request::get(target).header("Host", "victim");
        if let Some(range) = range {
            builder = builder.header("Range", range);
        }
        RequestSample::of(&builder.build())
    }

    #[test]
    fn benign_full_downloads_stay_benign() {
        let mut det = ClientDetector::new(DetectorConfig::default());
        for i in 0..50u64 {
            let obs = det.observe(&sample("/t.bin", None), 1_000_000, 1_000_000, i * 200);
            assert_eq!(obs.verdict.class, TrafficClass::Benign, "request {i}");
        }
    }

    #[test]
    fn sbr_shape_rule_fires_within_a_handful_of_requests() {
        let mut det = ClientDetector::new(DetectorConfig::default());
        let mut flagged_at = None;
        for i in 0..10u64 {
            let s = sample(&format!("/t.bin?rnd={i}"), Some("bytes=0-0"));
            // Laziness vendor: tiny origin cost, tiny response — the
            // amplification rules see nothing, the shape rule must fire.
            let obs = det.observe(&s, 700, 650, i * 100);
            if obs.verdict.class.is_suspect() && flagged_at.is_none() {
                flagged_at = Some(i);
            }
        }
        assert_eq!(flagged_at, Some(2), "third tiny busted request flags");
    }

    #[test]
    fn cusum_fires_on_amplification_without_tiny_shape() {
        // A hypothetical attack using mid-size ranges (not tiny) against
        // a deletion vendor: only the byte-ratio change-point can see it.
        let mut det = ClientDetector::new(DetectorConfig::default());
        let mut flagged_at = None;
        for i in 0..10u64 {
            let s = sample(&format!("/t.bin?rnd={i}"), Some("bytes=0-9999"));
            let obs = det.observe(&s, 10_000_000, 10_600, i * 100);
            if obs.verdict.class.is_suspect() && flagged_at.is_none() {
                flagged_at = Some(i);
            }
        }
        let flagged = flagged_at.expect("CUSUM must alarm");
        assert!(flagged <= 3, "flagged only at request {flagged}");
    }

    #[test]
    fn obr_shape_rule_fires_on_first_request() {
        let mut det = ClientDetector::new(DetectorConfig::default());
        let s = sample("/t.bin?rnd=0", Some("bytes=0-,0-,0-"));
        let obs = det.observe(&s, 3_000_000, 3_000_000, 0);
        assert_eq!(obs.verdict.class, TrafficClass::ObrSuspect);
        assert_eq!(obs.verdict.score, 3.0);
    }

    #[test]
    fn calm_windows_surface_for_deescalation() {
        let config = DetectorConfig::default();
        let mut det = ClientDetector::new(config);
        det.observe(&sample("/t.bin", None), 1_000, 1_000, 0);
        let obs = det.observe(
            &sample("/t.bin", None),
            1_000,
            1_000,
            config.features.window_ms + 1,
        );
        let closed = obs.closed_window.expect("first window closed");
        assert_eq!(closed.suspects, 0, "calm window");
    }

    #[test]
    fn ewma_and_cusum_are_deterministic() {
        let mut a = Ewma::new(0.3);
        let mut b = Ewma::new(0.3);
        let mut ca = Cusum::new(2.0, 16.0);
        let mut cb = Cusum::new(2.0, 16.0);
        for x in [0.5, 10.7, 0.1, 9.9, 3.3] {
            assert_eq!(a.update(x).to_bits(), b.update(x).to_bits());
            ca.update(x);
            cb.update(x);
            assert_eq!(ca.value().to_bits(), cb.value().to_bits());
        }
    }
}
