//! Online RangeAmp detection and adaptive defense (DESIGN.md §12).
//!
//! The paper's §VI mitigations are static policy switches: a vendor
//! either deploys capped expansion for all traffic or none. This crate
//! adds what a production CDN actually needs against RangeAmp — an
//! *online* layer that watches per-client traffic, classifies it, and
//! escalates countermeasures only against the clients that look like
//! attackers:
//!
//! * [`features`] — streaming per-client sliding-window features over
//!   virtual time: tiny-range ratio, overlapping-range multiplicity,
//!   cache-busting query churn, per-request amplification ratio;
//! * [`detector`] — deterministic threshold rules plus EWMA/CUSUM
//!   change-point detectors that score each request as benign,
//!   SBR-suspect, or OBR-suspect;
//! * [`enforce`] — the [`DefenseLayer`] middleware implementing
//!   [`rangeamp_cdn::DefenseHook`]: a graduated enforcement ladder
//!   (allow → deflate → throttle → block) that reuses the §VI-C
//!   mitigation transforms as actuators;
//! * [`replay`] — offline replay of golden verdict fixtures
//!   (`tests/corpus/defense-*.txt`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use rangeamp_cdn::{EdgeNode, Vendor, DefenseAction};
//! use rangeamp_defense::DefenseLayer;
//! use rangeamp_net::{Segment, SegmentName};
//! use rangeamp_origin::{OriginServer, ResourceStore};
//! use rangeamp_http::Request;
//!
//! let mut store = ResourceStore::new();
//! store.add_synthetic("/f.bin", 1_000_000, "application/octet-stream");
//! let origin = Arc::new(OriginServer::new(store));
//! let layer = Arc::new(DefenseLayer::default());
//! let edge = EdgeNode::new(
//!     Vendor::Akamai.profile(),
//!     origin,
//!     Segment::new(SegmentName::CdnOrigin),
//! )
//! .with_defense(layer.clone());
//!
//! // An SBR burst: tiny cache-busted ranges.
//! for i in 0..10 {
//!     let req = Request::get(&format!("/f.bin?rnd={i}"))
//!         .header("Host", "victim")
//!         .header("X-Client-Id", "mallory")
//!         .header("Range", "bytes=0-0")
//!         .build();
//!     edge.handle(&req);
//! }
//! // The layer saw through the shape and escalated past Allow.
//! assert!(layer.client_rung("mallory") > DefenseAction::Allow);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod detector;
pub mod enforce;
pub mod features;
pub mod replay;

pub use detector::{ClientDetector, Cusum, DetectorConfig, Ewma, TrafficClass, Verdict};
pub use enforce::{ClientReport, DefenseLayer, EnforceConfig, TokenBucket};
pub use features::{ClientFeatures, FeatureConfig, RequestSample, WindowFeatures};
pub use replay::{check_fixture, parse_fixture, replay, ReplayEvent, VERDICT_SEPARATOR};
