use std::fmt;
use std::str::FromStr;

use crate::Error;

/// HTTP request method.
///
/// Only the methods the RangeAmp testbed exercises are enumerated; anything
/// else round-trips through [`Method::Extension`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET` — the method every RangeAmp attack uses.
    Get,
    /// `HEAD`.
    Head,
    /// `POST`.
    Post,
    /// `PUT`.
    Put,
    /// `DELETE`.
    Delete,
    /// `OPTIONS`.
    Options,
    /// `PURGE` — used by several CDNs for cache invalidation.
    Purge,
    /// Any other token.
    Extension(String),
}

impl Method {
    /// Canonical wire name of the method.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Purge => "PURGE",
            Method::Extension(token) => token,
        }
    }

    /// Whether responses to this method are cacheable by a shared cache.
    pub fn is_cacheable(&self) -> bool {
        matches!(self, Method::Get | Method::Head)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        if s.is_empty() || !s.bytes().all(is_tchar) {
            return Err(Error::InvalidStartLine(format!("bad method {s:?}")));
        }
        Ok(match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            "PURGE" => Method::Purge,
            other => Method::Extension(other.to_string()),
        })
    }
}

/// RFC 7230 `tchar`.
pub(crate) fn is_tchar(b: u8) -> bool {
    matches!(
        b,
        b'!' | b'#'
            | b'$'
            | b'%'
            | b'&'
            | b'\''
            | b'*'
            | b'+'
            | b'-'
            | b'.'
            | b'^'
            | b'_'
            | b'`'
            | b'|'
            | b'~'
    ) || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_known_methods() {
        for name in ["GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PURGE"] {
            let method: Method = name.parse().unwrap();
            assert_eq!(method.as_str(), name);
        }
    }

    #[test]
    fn extension_methods_preserved() {
        let method: Method = "BREW".parse().unwrap();
        assert_eq!(method, Method::Extension("BREW".to_string()));
        assert_eq!(method.to_string(), "BREW");
    }

    #[test]
    fn rejects_non_token_methods() {
        assert!("GE T".parse::<Method>().is_err());
        assert!("".parse::<Method>().is_err());
        assert!("GET\r".parse::<Method>().is_err());
    }

    #[test]
    fn cacheability() {
        assert!(Method::Get.is_cacheable());
        assert!(Method::Head.is_cacheable());
        assert!(!Method::Post.is_cacheable());
        assert!(!Method::Purge.is_cacheable());
    }
}
