use std::fmt;

use crate::Error;

/// HTTP status code with the standard reason phrase.
///
/// The RangeAmp experiments revolve around `200 OK`, `206 Partial Content`
/// and `416 Range Not Satisfiable`, but the full numeric space is
/// representable so parsed traffic never loses information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StatusCode(u16);

impl StatusCode {
    /// `200 OK`.
    pub const OK: StatusCode = StatusCode(200);
    /// `206 Partial Content`.
    pub const PARTIAL_CONTENT: StatusCode = StatusCode(206);
    /// `304 Not Modified`.
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    /// `400 Bad Request`.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// `403 Forbidden`.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// `404 Not Found`.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// `416 Range Not Satisfiable`.
    pub const RANGE_NOT_SATISFIABLE: StatusCode = StatusCode(416);
    /// `429 Too Many Requests` — emitted by the origin rate-limit
    /// mitigation (paper §VI-C, "enforce local DoS defense").
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// `431 Request Header Fields Too Large` — emitted when a request
    /// exceeds a CDN's header size limit (paper §V-C).
    pub const REQUEST_HEADER_FIELDS_TOO_LARGE: StatusCode = StatusCode(431);
    /// `500 Internal Server Error`.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// `502 Bad Gateway`.
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    /// `503 Service Unavailable` — emitted by the origin's overload
    /// shedder when the concurrent-transfer budget is exhausted.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);
    /// `504 Gateway Timeout`.
    pub const GATEWAY_TIMEOUT: StatusCode = StatusCode(504);

    /// Builds a status code from its numeric value.
    ///
    /// # Errors
    ///
    /// Returns an error if `code` is outside `100..=999`.
    pub fn new(code: u16) -> Result<StatusCode, Error> {
        if (100..=999).contains(&code) {
            Ok(StatusCode(code))
        } else {
            Err(Error::InvalidStartLine(format!("bad status code {code}")))
        }
    }

    /// Numeric value of the status code.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// Whether the status is 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Whether the status is 4xx or 5xx.
    pub fn is_error(self) -> bool {
        self.0 >= 400
    }

    /// Canonical reason phrase (RFC 7231 §6.1 plus the range-specific
    /// codes); unknown codes get an empty phrase, which is legal on the
    /// wire.
    pub fn reason_phrase(self) -> &'static str {
        match self.0 {
            100 => "Continue",
            101 => "Switching Protocols",
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            206 => "Partial Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            307 => "Temporary Redirect",
            308 => "Permanent Redirect",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            414 => "URI Too Long",
            416 => "Range Not Satisfiable",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<StatusCode> for u16 {
    fn from(code: StatusCode) -> u16 {
        code.as_u16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(StatusCode::OK.as_u16(), 200);
        assert_eq!(StatusCode::PARTIAL_CONTENT.as_u16(), 206);
        assert_eq!(StatusCode::RANGE_NOT_SATISFIABLE.as_u16(), 416);
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(
            StatusCode::PARTIAL_CONTENT.reason_phrase(),
            "Partial Content"
        );
        assert_eq!(
            StatusCode::RANGE_NOT_SATISFIABLE.reason_phrase(),
            "Range Not Satisfiable"
        );
        assert_eq!(StatusCode::new(299).unwrap().reason_phrase(), "");
    }

    #[test]
    fn classification() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::PARTIAL_CONTENT.is_success());
        assert!(!StatusCode::RANGE_NOT_SATISFIABLE.is_success());
        assert!(StatusCode::RANGE_NOT_SATISFIABLE.is_error());
        assert!(StatusCode::BAD_GATEWAY.is_error());
    }

    #[test]
    fn rejects_out_of_range_codes() {
        assert!(StatusCode::new(99).is_err());
        assert!(StatusCode::new(1000).is_err());
        assert!(StatusCode::new(100).is_ok());
        assert!(StatusCode::new(999).is_ok());
    }
}
