//! Exact HTTP/1.1 wire-format serialization and parsing.
//!
//! The RangeAmp amplification factors are ratios of bytes observed on the
//! wire, so the testbed serializes every message to real octets rather than
//! estimating sizes. Parsing is the inverse used by the vulnerability
//! scanner when it replays captured traffic.

use bytes::Bytes;

use crate::{Body, Error, HeaderMap, Method, Request, Response, Result, StatusCode, Uri, Version};

/// Serializes a request to wire bytes.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(req.wire_len() as usize);
    out.extend_from_slice(req.method().as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.uri().to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.version().as_str().as_bytes());
    out.extend_from_slice(b"\r\n");
    encode_headers(req.headers(), &mut out);
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(req.body().as_bytes());
    out
}

/// Serializes a response to wire bytes.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(resp.wire_len() as usize);
    out.extend_from_slice(resp.version().as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(resp.status().to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(resp.status().reason_phrase().as_bytes());
    out.extend_from_slice(b"\r\n");
    encode_headers(resp.headers(), &mut out);
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(resp.body().as_bytes());
    out
}

fn encode_headers(headers: &HeaderMap, out: &mut Vec<u8>) {
    for (name, value) in headers.iter() {
        out.extend_from_slice(name.as_str().as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_str().as_bytes());
        out.extend_from_slice(b"\r\n");
    }
}

/// Parses a request from wire bytes.
///
/// # Errors
///
/// Returns an error if the start line or a header field is malformed, or
/// the payload is shorter than `Content-Length` promises.
pub fn decode_request(input: &[u8]) -> Result<Request> {
    let (head, body_offset) = split_head(input)?;
    let mut lines = head.split(|&b| b == b'\n').map(trim_cr);
    let start = lines.next().ok_or(Error::UnexpectedEof {
        context: "request line",
    })?;
    let start = std::str::from_utf8(start)
        .map_err(|_| Error::InvalidStartLine("non-utf8 request line".to_string()))?;

    let mut parts = start.splitn(3, ' ');
    let method: Method = parts
        .next()
        .ok_or_else(|| Error::InvalidStartLine(start.to_string()))?
        .parse()?;
    let target = parts
        .next()
        .ok_or_else(|| Error::InvalidStartLine(start.to_string()))?;
    let version: Version = parts
        .next()
        .ok_or_else(|| Error::InvalidStartLine(start.to_string()))?
        .parse()?;
    let uri = Uri::parse(target)?;

    let headers = parse_header_lines(lines)?;
    let body = extract_body(input, body_offset, &headers, true)?;

    let mut builder = crate::RequestBuilder::try_new(method, &uri.to_string())?.version(version);
    for (name, value) in headers.iter() {
        builder = builder.header(name.as_str(), value.as_str());
    }
    Ok(builder.body(body).build())
}

/// Parses a response from wire bytes.
///
/// Responses without `Content-Length` are framed by end-of-input, matching
/// "connection: close" delivery — which is how an origin streams a 200 to a
/// CDN in the SBR experiments.
///
/// # Errors
///
/// Returns an error if the status line or a header field is malformed, or
/// the payload is shorter than `Content-Length` promises.
pub fn decode_response(input: &[u8]) -> Result<Response> {
    let (head, body_offset) = split_head(input)?;
    let mut lines = head.split(|&b| b == b'\n').map(trim_cr);
    let start = lines.next().ok_or(Error::UnexpectedEof {
        context: "status line",
    })?;
    let start = std::str::from_utf8(start)
        .map_err(|_| Error::InvalidStartLine("non-utf8 status line".to_string()))?;

    let mut parts = start.splitn(3, ' ');
    let version: Version = parts
        .next()
        .ok_or_else(|| Error::InvalidStartLine(start.to_string()))?
        .parse()?;
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| Error::InvalidStartLine(start.to_string()))?;
    let status = StatusCode::new(code)?;

    let headers = parse_header_lines(lines)?;
    let body = extract_body(input, body_offset, &headers, false)?;

    let mut builder = Response::builder(status).version(version);
    for (name, value) in headers.iter() {
        builder = builder.header(name.as_str(), value.as_str());
    }
    Ok(builder.body(body).build())
}

/// Locates the end of the header block, returning the head slice and the
/// offset of the first body byte.
fn split_head(input: &[u8]) -> Result<(&[u8], usize)> {
    let pos = input
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(Error::UnexpectedEof {
            context: "header block",
        })?;
    Ok((&input[..pos], pos + 4))
}

fn trim_cr(line: &[u8]) -> &[u8] {
    line.strip_suffix(b"\r").unwrap_or(line)
}

fn parse_header_lines<'a, I>(lines: I) -> Result<HeaderMap>
where
    I: Iterator<Item = &'a [u8]>,
{
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let text = std::str::from_utf8(line)
            .map_err(|_| Error::InvalidHeaderValue("non-utf8 header line".to_string()))?;
        let (name, value) = text
            .split_once(':')
            .ok_or_else(|| Error::InvalidHeaderName(text.to_string()))?;
        headers.try_append(name.trim_end(), value.trim_start().to_string())?;
    }
    Ok(headers)
}

fn extract_body(
    input: &[u8],
    body_offset: usize,
    headers: &HeaderMap,
    is_request: bool,
) -> Result<Body> {
    let available = &input[body_offset..];
    match headers.get("content-length") {
        Some(raw) => {
            let declared: u64 = raw
                .trim()
                .parse()
                .map_err(|_| Error::InvalidContentLength(raw.to_string()))?;
            if (available.len() as u64) < declared {
                return Err(Error::UnexpectedEof {
                    context: "message body",
                });
            }
            Ok(Body::from_bytes(Bytes::copy_from_slice(
                &available[..declared as usize],
            )))
        }
        None if is_request => Ok(Body::empty()),
        None => Ok(Body::from_bytes(Bytes::copy_from_slice(available))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Request;

    #[test]
    fn request_round_trip() {
        let req = Request::get("/1KB.jpg?x=1")
            .header("Host", "example.com")
            .header("Range", "bytes=1-1,-2")
            .build();
        let bytes = encode_request(&req);
        let parsed = decode_request(&bytes).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn response_round_trip_with_content_length() {
        let resp = Response::builder(StatusCode::PARTIAL_CONTENT)
            .header("Content-Range", "bytes 0-0/1000")
            .sized_body(vec![0xff])
            .build();
        let bytes = encode_response(&resp);
        let parsed = decode_response(&bytes).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn response_without_content_length_reads_to_eof() {
        let raw = b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nhello world";
        let resp = decode_response(raw).unwrap();
        assert_eq!(resp.body().as_bytes(), b"hello world");
    }

    #[test]
    fn request_body_requires_content_length() {
        let raw = b"POST /x HTTP/1.1\r\nHost: a\r\n\r\nignored-without-length";
        let req = decode_request(raw).unwrap();
        assert!(req.body().is_empty());
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort";
        assert!(matches!(
            decode_response(raw),
            Err(Error::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn missing_header_terminator_is_an_error() {
        let raw = b"GET / HTTP/1.1\r\nHost: a\r\n";
        assert!(decode_request(raw).is_err());
    }

    #[test]
    fn malformed_header_line_is_an_error() {
        let raw = b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n";
        assert!(decode_request(raw).is_err());
    }

    #[test]
    fn rfc_fig2a_example_parses() {
        // Paper Fig 2a.
        let raw = b"GET /1KB.jpg HTTP/1.1\r\nHost: example.com\r\nRange: bytes=0-0\r\n\r\n";
        let req = decode_request(raw).unwrap();
        assert_eq!(req.uri().path(), "/1KB.jpg");
        assert_eq!(req.headers().get("range"), Some("bytes=0-0"));
    }

    #[test]
    fn encoded_sizes_match_wire_len() {
        let req = Request::get("/f").header("Host", "h").build();
        assert_eq!(encode_request(&req).len() as u64, req.wire_len());
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![1, 2, 3])
            .build();
        assert_eq!(encode_response(&resp).len() as u64, resp.wire_len());
    }
}
