//! The `If-Range` conditional (RFC 7233 §3.2).
//!
//! `If-Range` makes a range request safe against representation changes:
//! "if the representation is unchanged, send me the part(s) that I am
//! requesting in Range; otherwise, send me the entire representation."
//! The validator is either an entity-tag or an HTTP-date.

use std::fmt;

use crate::{Error, Result};

/// A parsed `If-Range` header value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IfRange {
    /// An entity-tag validator. Weak tags (`W/"..."`) are representable
    /// but never match (RFC 7233 requires the strong comparison).
    ETag {
        /// The full tag including quotes (and `W/` prefix if weak).
        tag: String,
    },
    /// An `HTTP-date` validator, compared by exact match against the
    /// representation's `Last-Modified` (the testbed uses fixed dates, so
    /// exact string comparison is the strong comparison).
    Date {
        /// The date string as sent.
        date: String,
    },
}

impl IfRange {
    /// Parses an `If-Range` value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHeaderValue`] if the value is empty.
    pub fn parse(value: &str) -> Result<IfRange> {
        let value = value.trim();
        if value.is_empty() {
            return Err(Error::InvalidHeaderValue("empty If-Range".to_string()));
        }
        if value.starts_with('"') || value.starts_with("W/\"") {
            Ok(IfRange::ETag {
                tag: value.to_string(),
            })
        } else {
            Ok(IfRange::Date {
                date: value.to_string(),
            })
        }
    }

    /// Whether the validator matches the selected representation,
    /// identified by its strong `ETag` and `Last-Modified` values.
    ///
    /// Weak entity-tags never match (RFC 7232 strong comparison).
    pub fn matches(&self, etag: Option<&str>, last_modified: Option<&str>) -> bool {
        match self {
            IfRange::ETag { tag } => {
                if tag.starts_with("W/") {
                    return false;
                }
                etag.is_some_and(|current| !current.starts_with("W/") && current == tag)
            }
            IfRange::Date { date } => last_modified.is_some_and(|current| current == date),
        }
    }
}

impl fmt::Display for IfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IfRange::ETag { tag } => f.write_str(tag),
            IfRange::Date { date } => f.write_str(date),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_etag_and_date_forms() {
        assert_eq!(
            IfRange::parse("\"abc\"").unwrap(),
            IfRange::ETag {
                tag: "\"abc\"".to_string()
            }
        );
        assert_eq!(
            IfRange::parse("W/\"abc\"").unwrap(),
            IfRange::ETag {
                tag: "W/\"abc\"".to_string()
            }
        );
        assert_eq!(
            IfRange::parse("Thu, 02 Jan 2020 00:00:00 GMT").unwrap(),
            IfRange::Date {
                date: "Thu, 02 Jan 2020 00:00:00 GMT".to_string()
            }
        );
        assert!(IfRange::parse("  ").is_err());
    }

    #[test]
    fn strong_etag_matches_exactly() {
        let validator = IfRange::parse("\"abc\"").unwrap();
        assert!(validator.matches(Some("\"abc\""), None));
        assert!(!validator.matches(Some("\"xyz\""), None));
        assert!(!validator.matches(None, None));
    }

    #[test]
    fn weak_etag_never_matches() {
        let validator = IfRange::parse("W/\"abc\"").unwrap();
        assert!(!validator.matches(Some("W/\"abc\""), None));
        assert!(!validator.matches(Some("\"abc\""), None));
    }

    #[test]
    fn date_matches_exactly() {
        let validator = IfRange::parse("Thu, 02 Jan 2020 00:00:00 GMT").unwrap();
        assert!(validator.matches(None, Some("Thu, 02 Jan 2020 00:00:00 GMT")));
        assert!(!validator.matches(None, Some("Fri, 03 Jan 2020 00:00:00 GMT")));
    }

    #[test]
    fn display_round_trips() {
        for text in ["\"abc\"", "Thu, 02 Jan 2020 00:00:00 GMT"] {
            assert_eq!(IfRange::parse(text).unwrap().to_string(), text);
        }
    }
}
