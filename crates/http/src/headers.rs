use std::fmt;
use std::str::FromStr;

use crate::method::is_tchar;
use crate::Error;

/// A validated HTTP header field name.
///
/// The original spelling is preserved (it affects wire size, which the
/// amplification accounting depends on); comparisons are
/// case-insensitive per RFC 7230 §3.2.
#[derive(Debug, Clone)]
pub struct HeaderName {
    raw: String,
    lower: String,
}

impl HeaderName {
    /// Validates and wraps a header name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHeaderName`] if `name` is empty or contains a
    /// character outside the RFC 7230 `token` alphabet.
    pub fn new(name: impl Into<String>) -> Result<HeaderName, Error> {
        let raw = name.into();
        if raw.is_empty() || !raw.bytes().all(is_tchar) {
            return Err(Error::InvalidHeaderName(raw));
        }
        let lower = raw.to_ascii_lowercase();
        Ok(HeaderName { raw, lower })
    }

    /// The name exactly as supplied.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// The lowercase form used for comparisons.
    pub fn lower(&self) -> &str {
        &self.lower
    }
}

impl PartialEq for HeaderName {
    fn eq(&self, other: &Self) -> bool {
        self.lower == other.lower
    }
}
impl Eq for HeaderName {}

impl std::hash::Hash for HeaderName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.lower.hash(state);
    }
}

impl fmt::Display for HeaderName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl FromStr for HeaderName {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self, Error> {
        HeaderName::new(s)
    }
}

/// A validated HTTP header field value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeaderValue(String);

impl HeaderValue {
    /// Validates and wraps a header value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHeaderValue`] if `value` contains a control
    /// character other than horizontal tab.
    pub fn new(value: impl Into<String>) -> Result<HeaderValue, Error> {
        let value = value.into();
        let ok = value
            .bytes()
            .all(|b| b == b'\t' || (b != 0x7f && b >= 0x20) || b >= 0x80);
        if ok {
            Ok(HeaderValue(value))
        } else {
            Err(Error::InvalidHeaderValue(value))
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length of the value in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for HeaderValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for HeaderValue {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self, Error> {
        HeaderValue::new(s)
    }
}

/// Ordered, case-insensitive multimap of HTTP header fields.
///
/// Field order is preserved exactly as inserted because it is visible on
/// the wire and therefore in the byte accounting. Multiple fields with the
/// same name are allowed (RFC 7230 §3.2.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<(HeaderName, HeaderValue)>,
}

impl HeaderMap {
    /// Creates an empty header map.
    pub fn new() -> HeaderMap {
        HeaderMap::default()
    }

    /// Number of header fields (not distinct names).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a field, keeping any existing fields with the same name.
    ///
    /// # Panics
    ///
    /// Panics if `name` or `value` are not valid header text. Use
    /// [`HeaderMap::try_append`] for untrusted input.
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.try_append(name, value)
            .expect("static header should be valid");
    }

    /// Appends a field, validating both parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the name or value fails validation.
    pub fn try_append(&mut self, name: &str, value: impl Into<String>) -> Result<(), Error> {
        let name = HeaderName::new(name)?;
        let value = HeaderValue::new(value)?;
        self.entries.push((name, value));
        Ok(())
    }

    /// Replaces all fields named `name` with a single field.
    ///
    /// # Panics
    ///
    /// Panics if `name` or `value` are not valid header text.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let name = HeaderName::new(name).expect("static header name should be valid");
        let value = HeaderValue::new(value).expect("static header value should be valid");
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, value));
    }

    /// Removes every field named `name`, returning how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let lower = name.to_ascii_lowercase();
        let before = self.entries.len();
        self.entries.retain(|(n, _)| n.lower() != lower);
        before - self.entries.len()
    }

    /// First value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(n, _)| n.lower() == lower)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all<'a>(&'a self, name: &str) -> Vec<&'a str> {
        let lower = name.to_ascii_lowercase();
        self.entries
            .iter()
            .filter(|(n, _)| n.lower() == lower)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether at least one field named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&HeaderName, &HeaderValue)> {
        self.entries.iter().map(|(n, v)| (n, v))
    }

    /// Total wire size of the header block in bytes: each field costs
    /// `name + ": " + value + CRLF`. This is what CDN request-header
    /// limits meter (paper §V-C).
    pub fn wire_len(&self) -> u64 {
        self.entries
            .iter()
            .map(|(n, v)| n.as_str().len() as u64 + 2 + v.len() as u64 + 2)
            .sum()
    }
}

impl<'a> IntoIterator for &'a HeaderMap {
    type Item = (&'a HeaderName, &'a HeaderValue);
    type IntoIter = std::vec::IntoIter<(&'a HeaderName, &'a HeaderValue)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries
            .iter()
            .map(|(n, v)| (n, v))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

impl FromIterator<(String, String)> for HeaderMap {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        let mut map = HeaderMap::new();
        for (name, value) in iter {
            map.append(&name, value);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_compare_case_insensitively() {
        let a = HeaderName::new("Content-Range").unwrap();
        let b = HeaderName::new("content-range").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Content-Range");
    }

    #[test]
    fn rejects_invalid_names_and_values() {
        assert!(HeaderName::new("").is_err());
        assert!(HeaderName::new("Bad Header").is_err());
        assert!(HeaderName::new("Bad:Header").is_err());
        assert!(HeaderValue::new("ok value").is_ok());
        assert!(HeaderValue::new("bad\r\nvalue").is_err());
        assert!(HeaderValue::new("bad\0").is_err());
    }

    #[test]
    fn append_preserves_duplicates_and_order() {
        let mut map = HeaderMap::new();
        map.append("Via", "1.1 edge-a");
        map.append("X-Cache", "MISS");
        map.append("Via", "1.1 edge-b");
        assert_eq!(map.get_all("via"), vec!["1.1 edge-a", "1.1 edge-b"]);
        let order: Vec<_> = map.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(order, vec!["Via", "X-Cache", "Via"]);
    }

    #[test]
    fn set_replaces_all_occurrences() {
        let mut map = HeaderMap::new();
        map.append("Range", "bytes=0-0");
        map.append("range", "bytes=1-1");
        map.set("RANGE", "bytes=2-2");
        assert_eq!(map.get_all("range"), vec!["bytes=2-2"]);
    }

    #[test]
    fn remove_reports_count() {
        let mut map = HeaderMap::new();
        map.append("Range", "bytes=0-0");
        map.append("Range", "bytes=1-1");
        assert_eq!(map.remove("range"), 2);
        assert_eq!(map.remove("range"), 0);
        assert!(!map.contains("Range"));
    }

    #[test]
    fn wire_len_counts_separators() {
        let mut map = HeaderMap::new();
        map.append("Host", "a.example");
        // "Host: a.example\r\n" = 4 + 2 + 9 + 2
        assert_eq!(map.wire_len(), 17);
    }

    #[test]
    fn collects_from_pairs() {
        let map: HeaderMap = vec![
            ("Host".to_string(), "x".to_string()),
            ("Range".to_string(), "bytes=0-0".to_string()),
        ]
        .into_iter()
        .collect();
        assert_eq!(map.len(), 2);
        assert_eq!(map.get("host"), Some("x"));
    }
}
