//! HTTP/1.1 substrate for the RangeAmp testbed.
//!
//! This crate implements everything the RangeAmp reproduction needs from
//! HTTP itself, from scratch:
//!
//! * an HTTP/1.1 message model ([`Request`], [`Response`]) with an ordered,
//!   case-insensitive [`HeaderMap`],
//! * exact wire-format serialization and parsing ([`wire`]) so traffic on a
//!   simulated connection can be metered in real bytes,
//! * the complete RFC 7233 `Range` / `Content-Range` grammar ([`range`]):
//!   parsing, emission, satisfiability against a representation length,
//!   overlap detection and coalescing,
//! * `multipart/byteranges` payload construction and parsing
//!   ([`multipart`]), and
//! * an ABNF-driven random generator of valid range requests
//!   ([`range::RangeRequestGenerator`]) used by the vulnerability scanner (paper §V-A,
//!   experiment 1).
//!
//! # Example
//!
//! ```
//! use rangeamp_http::{Request, Method};
//! use rangeamp_http::range::RangeHeader;
//!
//! # fn main() -> Result<(), rangeamp_http::Error> {
//! let req = Request::builder(Method::Get, "/10MB.bin")
//!     .header("Host", "victim.example")
//!     .header("Range", "bytes=0-0")
//!     .build();
//! let ranges = RangeHeader::parse("bytes=0-0")?;
//! assert_eq!(ranges.specs().len(), 1);
//! assert_eq!(req.wire_len(), req.to_wire_bytes().len() as u64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod body;
mod conditional;
mod error;
mod headers;
mod method;
mod request;
mod response;
mod status;
mod uri;
mod version;

pub mod h2frame;
pub mod multipart;
pub mod range;
pub mod wire;

pub use body::Body;
pub use conditional::IfRange;
pub use error::{Error, Result};
pub use headers::{HeaderMap, HeaderName, HeaderValue};
pub use method::Method;
pub use request::{Request, RequestBuilder};
pub use response::{Response, ResponseBuilder};
pub use status::StatusCode;
pub use uri::Uri;
pub use version::Version;
