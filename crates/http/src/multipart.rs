//! `multipart/byteranges` payload construction and parsing (RFC 7233 §4.1,
//! RFC 2046 §5.1.1).
//!
//! A multi-part 206 response is the vehicle of the OBR attack: a BCDN that
//! builds one part per requested range *without checking overlap* turns a
//! 1 KB resource into an `n × (1 KB + part overhead)` payload (paper
//! §IV-C). The builder here is deliberately policy-free — it emits exactly
//! the parts it is given; whether overlapping parts are allowed is decided
//! by the server/CDN layer above.

use crate::range::{ContentRange, ResolvedRange};
use crate::{Body, Error, Result};

/// The boundary string used in examples by RFC 7233 and the paper's Fig 2.
pub const DEFAULT_BOUNDARY: &str = "THIS_STRING_SEPARATES";

/// One part of a multipart/byteranges payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// The part's `Content-Type`.
    pub content_type: String,
    /// The part's `Content-Range`.
    pub content_range: ContentRange,
    /// The part's payload bytes.
    pub body: Body,
}

/// Builds a `multipart/byteranges` payload.
#[derive(Debug, Clone)]
pub struct MultipartBuilder {
    boundary: String,
    content_type: String,
    parts: Vec<(ResolvedRange, Body)>,
    complete_length: u64,
}

impl MultipartBuilder {
    /// Starts a builder for a representation of `complete_length` bytes of
    /// the given media type, using [`DEFAULT_BOUNDARY`].
    pub fn new(content_type: &str, complete_length: u64) -> MultipartBuilder {
        MultipartBuilder {
            boundary: DEFAULT_BOUNDARY.to_string(),
            content_type: content_type.to_string(),
            parts: Vec::new(),
            complete_length,
        }
    }

    /// Overrides the boundary string.
    pub fn boundary(mut self, boundary: &str) -> MultipartBuilder {
        self.boundary = boundary.to_string();
        self
    }

    /// Appends a part covering `range` with the matching slice of the
    /// representation. No overlap or ordering checks are performed — that
    /// is precisely the vulnerable behaviour of Table III BCDNs.
    pub fn part(mut self, range: ResolvedRange, body: Body) -> MultipartBuilder {
        self.parts.push((range, body));
        self
    }

    /// Number of parts added so far.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Value for the response's `Content-Type` header.
    pub fn content_type_header(&self) -> String {
        format!("multipart/byteranges; boundary={}", self.boundary)
    }

    /// Serializes the multipart payload.
    pub fn build(&self) -> Body {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        for (range, body) in &self.parts {
            out.extend_from_slice(b"--");
            out.extend_from_slice(self.boundary.as_bytes());
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(b"Content-Type: ");
            out.extend_from_slice(self.content_type.as_bytes());
            out.extend_from_slice(b"\r\n");
            let content_range = ContentRange::Satisfied {
                range: *range,
                complete_length: self.complete_length,
            };
            out.extend_from_slice(b"Content-Range: ");
            out.extend_from_slice(content_range.to_string().as_bytes());
            out.extend_from_slice(b"\r\n\r\n");
            out.extend_from_slice(body.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"--");
        out.extend_from_slice(self.boundary.as_bytes());
        out.extend_from_slice(b"--\r\n");
        Body::from(out)
    }

    /// Exact length of [`MultipartBuilder::build`]'s output without
    /// materializing it (used for traffic projections in the max-n solver).
    pub fn encoded_len(&self) -> u64 {
        let mut total = 0u64;
        for (range, body) in &self.parts {
            let content_range = ContentRange::Satisfied {
                range: *range,
                complete_length: self.complete_length,
            };
            total += 2 + self.boundary.len() as u64 + 2; // --boundary CRLF
            total += 14 + self.content_type.len() as u64 + 2; // Content-Type
            total += 15 + content_range.to_string().len() as u64 + 2; // Content-Range
            total += 2; // blank line
            total += body.len() + 2; // body CRLF
        }
        total + 2 + self.boundary.len() as u64 + 4 // --boundary--CRLF
    }
}

/// Parses a multipart/byteranges payload produced with `boundary`.
///
/// # Errors
///
/// Returns [`Error::InvalidMultipart`] on framing errors, missing part
/// headers, or a part body that disagrees with its `Content-Range`.
pub fn parse(body: &[u8], boundary: &str) -> Result<Vec<Part>> {
    let delim = format!("--{boundary}\r\n");
    let closing = format!("--{boundary}--");
    let text_err = |reason: &str| Error::InvalidMultipart(reason.to_string());

    let mut parts = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &body[offset..];
        if rest.starts_with(closing.as_bytes()) {
            return Ok(parts);
        }
        if !rest.starts_with(delim.as_bytes()) {
            return Err(text_err("expected boundary delimiter"));
        }
        offset += delim.len();

        // Part headers end at the first blank line.
        let head_end = body[offset..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or_else(|| text_err("part headers not terminated"))?;
        let head = &body[offset..offset + head_end];
        offset += head_end + 4;

        let mut content_type = None;
        let mut content_range = None;
        for line in head.split(|&b| b == b'\n') {
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            if line.is_empty() {
                continue;
            }
            let line = std::str::from_utf8(line).map_err(|_| text_err("non-utf8 part header"))?;
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| text_err("malformed part header"))?;
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-type") {
                content_type = Some(value.to_string());
            } else if name.eq_ignore_ascii_case("content-range") {
                content_range = Some(ContentRange::parse(value)?);
            }
        }
        let content_type = content_type.ok_or_else(|| text_err("part missing Content-Type"))?;
        let content_range = content_range.ok_or_else(|| text_err("part missing Content-Range"))?;
        let part_len = match content_range {
            ContentRange::Satisfied { range, .. } => range.len(),
            ContentRange::Unsatisfied { .. } => {
                return Err(text_err("part with unsatisfied Content-Range"))
            }
        };
        if ((body.len() - offset) as u64) < part_len + 2 {
            return Err(text_err("part body truncated"));
        }
        let data = Body::from_bytes(bytes::Bytes::copy_from_slice(
            &body[offset..offset + part_len as usize],
        ));
        offset += part_len as usize;
        if &body[offset..offset + 2] != b"\r\n" {
            return Err(text_err("part body not CRLF-terminated"));
        }
        offset += 2;
        parts.push(Part {
            content_type,
            content_range,
            body: data,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(first: u64, last: u64) -> ResolvedRange {
        ResolvedRange { first, last }
    }

    #[test]
    fn builds_the_paper_fig2d_shape() {
        // Fig 2d: two parts of a 1000-byte JPEG, ranges 1-1 and 998-999.
        let payload = MultipartBuilder::new("image/jpeg", 1000)
            .part(r(1, 1), Body::from(vec![0xff]))
            .part(r(998, 999), Body::from(vec![0xd9, 0x00]))
            .build();
        let text = String::from_utf8_lossy(payload.as_bytes()).to_string();
        assert!(text.contains("--THIS_STRING_SEPARATES\r\n"));
        assert!(text.contains("Content-Range: bytes 1-1/1000"));
        assert!(text.contains("Content-Range: bytes 998-999/1000"));
        assert!(text.ends_with("--THIS_STRING_SEPARATES--\r\n"));
    }

    #[test]
    fn encoded_len_matches_build() {
        let builder = MultipartBuilder::new("application/octet-stream", 1 << 20)
            .part(r(0, 1023), Body::from(vec![0u8; 1024]))
            .part(r(0, 1023), Body::from(vec![0u8; 1024]))
            .part(r(512, 2047), Body::from(vec![0u8; 1536]));
        assert_eq!(builder.encoded_len(), builder.build().len());
    }

    #[test]
    fn round_trips_through_parse() {
        let builder = MultipartBuilder::new("text/plain", 100)
            .part(r(0, 9), Body::from(vec![b'a'; 10]))
            .part(r(90, 99), Body::from(vec![b'z'; 10]));
        let payload = builder.build();
        let parts = parse(payload.as_bytes(), DEFAULT_BOUNDARY).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].body.as_bytes(), &[b'a'; 10]);
        assert_eq!(
            parts[1].content_range,
            ContentRange::Satisfied {
                range: r(90, 99),
                complete_length: 100
            }
        );
    }

    #[test]
    fn overlapping_parts_are_not_rejected_here() {
        // The builder is policy-free: overlap checking is the CDN's job.
        let n = 64;
        let mut builder = MultipartBuilder::new("text/plain", 1024);
        for _ in 0..n {
            builder = builder.part(r(0, 1023), Body::from(vec![0u8; 1024]));
        }
        let payload = builder.build();
        let parts = parse(payload.as_bytes(), DEFAULT_BOUNDARY).unwrap();
        assert_eq!(parts.len(), n);
        assert!(payload.len() > 1024 * n as u64);
    }

    #[test]
    fn parse_rejects_bad_framing() {
        assert!(parse(b"garbage", DEFAULT_BOUNDARY).is_err());
        let truncated = b"--THIS_STRING_SEPARATES\r\nContent-Type: a/b\r\n";
        assert!(parse(truncated, DEFAULT_BOUNDARY).is_err());
    }

    #[test]
    fn parse_rejects_part_without_content_range() {
        let raw = b"--B\r\nContent-Type: a/b\r\n\r\nxx\r\n--B--\r\n";
        let err = parse(raw, "B").unwrap_err();
        assert!(matches!(err, Error::InvalidMultipart(_)));
    }

    #[test]
    fn custom_boundary_respected() {
        let builder = MultipartBuilder::new("a/b", 10)
            .boundary("xyz")
            .part(r(0, 1), Body::from(vec![1, 2]));
        assert_eq!(
            builder.content_type_header(),
            "multipart/byteranges; boundary=xyz"
        );
        let parts = parse(builder.build().as_bytes(), "xyz").unwrap();
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn zero_parts_is_just_the_closing_delimiter() {
        let builder = MultipartBuilder::new("a/b", 10);
        let payload = builder.build();
        assert_eq!(payload.as_bytes(), b"--THIS_STRING_SEPARATES--\r\n");
        assert!(parse(payload.as_bytes(), DEFAULT_BOUNDARY)
            .unwrap()
            .is_empty());
    }
}
