//! HTTP/2 framing-level byte accounting (paper §VI-B).
//!
//! The paper observes that "the RangeAmp threats in HTTP/1.1 are also
//! applicable to HTTP/2": RFC 7540 "just cites the definition in
//! HTTP/1.1" for range requests, so the *semantics* the attacks exploit
//! are identical — only the wire framing changes. This module computes
//! what the same messages weigh under HTTP/2 framing so the experiments
//! can verify that amplification factors survive the protocol hop:
//!
//! * every frame costs a 9-octet header (RFC 7540 §4.1),
//! * `DATA` payloads are split at the default `SETTINGS_MAX_FRAME_SIZE`
//!   of 16 384 octets (§4.2),
//! * header blocks are HPACK-encoded; we model the dominant effects —
//!   static-table hits for common names and Huffman coding at the
//!   average ≈ 0.75 compression ratio for literals (RFC 7541) — which is
//!   accurate to a few percent on the message shapes the testbed uses.
//!
//! This is an *accounting* model, not a codec: it answers "how many
//! bytes would this exchange put on the wire under h2", which is all the
//! amplification analysis needs.

use crate::{Request, Response};

/// RFC 7540 §4.1: every frame begins with a 9-octet header.
pub const FRAME_HEADER: u64 = 9;
/// RFC 7540 §4.2: default maximum frame payload.
pub const DEFAULT_MAX_FRAME_SIZE: u64 = 16_384;

/// Header names in the HPACK static table (RFC 7541 Appendix A) that the
/// testbed's messages actually use: these cost ~1–2 octets for the name.
const STATIC_TABLE_NAMES: &[&str] = &[
    ":authority",
    ":method",
    ":path",
    ":scheme",
    ":status",
    "accept-ranges",
    "age",
    "cache-control",
    "content-length",
    "content-range",
    "content-type",
    "date",
    "etag",
    "expires",
    "host",
    "if-range",
    "last-modified",
    "range",
    "server",
    "vary",
    "via",
];

/// Average Huffman compression for header literals (RFC 7541 §5.2; the
/// canonical table averages ≈ 5.9 bits/char on HTTP header text).
const HUFFMAN_RATIO: f64 = 0.75;

fn hpack_field_len(name: &str, value: &str) -> u64 {
    let name_cost = if STATIC_TABLE_NAMES.contains(&name.to_ascii_lowercase().as_str()) {
        1 // indexed name
    } else {
        1 + (name.len() as f64 * HUFFMAN_RATIO).ceil() as u64
    };
    let value_cost = 1 + (value.len() as f64 * HUFFMAN_RATIO).ceil() as u64;
    name_cost + value_cost
}

fn data_frames_len(body_len: u64) -> u64 {
    if body_len == 0 {
        return 0;
    }
    let frames = body_len.div_ceil(DEFAULT_MAX_FRAME_SIZE);
    body_len + frames * FRAME_HEADER
}

/// Wire bytes of a request sent as HEADERS (+ DATA) frames.
pub fn request_wire_len(req: &Request) -> u64 {
    // Pseudo-headers: :method, :scheme, :authority (from Host), :path.
    let mut header_block = hpack_field_len(":method", req.method().as_str());
    header_block += hpack_field_len(":scheme", "https");
    header_block += hpack_field_len(":authority", req.headers().get("host").unwrap_or(""));
    header_block += hpack_field_len(":path", &req.uri().to_string());
    for (name, value) in req.headers().iter() {
        if name.lower() == "host" {
            continue; // carried as :authority
        }
        header_block += hpack_field_len(name.lower(), value.as_str());
    }
    let headers_frames = header_block.div_ceil(DEFAULT_MAX_FRAME_SIZE).max(1);
    FRAME_HEADER * headers_frames + header_block + data_frames_len(req.body().len())
}

/// Wire bytes of a response sent as HEADERS + DATA frames.
pub fn response_wire_len(resp: &Response) -> u64 {
    let mut header_block = hpack_field_len(":status", &resp.status().to_string());
    for (name, value) in resp.headers().iter() {
        header_block += hpack_field_len(name.lower(), value.as_str());
    }
    let headers_frames = header_block.div_ceil(DEFAULT_MAX_FRAME_SIZE).max(1);
    FRAME_HEADER * headers_frames + header_block + data_frames_len(resp.body().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Request, Response, StatusCode};

    #[test]
    fn small_request_shrinks_under_h2() {
        // HPACK static-table hits make typical requests smaller than
        // their HTTP/1.1 form.
        let req = Request::get("/f.bin?rnd=1")
            .header("Host", "victim.example")
            .header("Range", "bytes=0-0")
            .build();
        let h2 = request_wire_len(&req);
        assert!(h2 < req.wire_len(), "h2 {h2} vs h1 {}", req.wire_len());
        assert!(h2 > 30, "sanity lower bound");
    }

    #[test]
    fn huge_range_header_dominates_either_way() {
        // The OBR header is one giant literal: h2 saves only the Huffman
        // ratio, so the header-limit arithmetic stays in force.
        let range = crate::range::RangeHeader::overlapping(10_000).to_string();
        let req = Request::get("/f.bin")
            .header("Host", "victim.example")
            .header("Range", range)
            .build();
        let h2 = request_wire_len(&req);
        let h1 = req.wire_len();
        let ratio = h2 as f64 / h1 as f64;
        assert!((0.70..=0.85).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn large_body_costs_one_frame_header_per_16k() {
        let body_len = 1_000_000u64;
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; body_len as usize])
            .build();
        let h2 = response_wire_len(&resp);
        let frames = body_len.div_ceil(DEFAULT_MAX_FRAME_SIZE);
        assert!(h2 >= body_len + frames * FRAME_HEADER);
        // Framing overhead is ~0.055%, so h2 ≈ h1 for megabyte bodies.
        let h1 = resp.wire_len();
        let ratio = h2 as f64 / h1 as f64;
        assert!((0.99..=1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn empty_body_emits_no_data_frames() {
        assert_eq!(data_frames_len(0), 0);
        assert_eq!(data_frames_len(1), 1 + FRAME_HEADER);
        assert_eq!(data_frames_len(16_384), 16_384 + FRAME_HEADER);
        assert_eq!(data_frames_len(16_385), 16_385 + 2 * FRAME_HEADER);
    }
}
