use crate::{Body, HeaderMap, Method, Uri, Version};

/// An HTTP request message.
///
/// # Example
///
/// ```
/// use rangeamp_http::{Request, Method};
///
/// let req = Request::builder(Method::Get, "/25MB.bin")
///     .header("Host", "victim.example")
///     .header("Range", "bytes=0-0")
///     .build();
/// assert_eq!(req.headers().get("range"), Some("bytes=0-0"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    method: Method,
    uri: Uri,
    version: Version,
    headers: HeaderMap,
    body: Body,
}

impl Request {
    /// Starts building a request.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a valid origin-form request target; use
    /// [`RequestBuilder::try_new`] for untrusted targets.
    pub fn builder(method: Method, target: &str) -> RequestBuilder {
        RequestBuilder::try_new(method, target).expect("static request target should be valid")
    }

    /// Convenience constructor for the ubiquitous `GET` request.
    pub fn get(target: &str) -> RequestBuilder {
        Request::builder(Method::Get, target)
    }

    /// Request method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// Request target.
    pub fn uri(&self) -> &Uri {
        &self.uri
    }

    /// Replaces the request target (used for cache-busting rewrites).
    pub fn set_uri(&mut self, uri: Uri) {
        self.uri = uri;
    }

    /// Protocol version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Header fields.
    pub fn headers(&self) -> &HeaderMap {
        &self.headers
    }

    /// Mutable header fields (CDN policies rewrite `Range` here).
    pub fn headers_mut(&mut self) -> &mut HeaderMap {
        &mut self.headers
    }

    /// Message payload.
    pub fn body(&self) -> &Body {
        &self.body
    }

    /// Wire length of the request line in bytes, including CRLF.
    ///
    /// Cloudflare's documented header budget formula
    /// `RL + 2·HHL + RHL ≤ 32411` (paper §V-C) meters exactly this.
    pub fn request_line_len(&self) -> u64 {
        self.method.as_str().len() as u64 + 1 + self.uri.wire_len() + 1 + 8 + 2
    }

    /// Serializes the request to its exact HTTP/1.1 wire bytes.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        crate::wire::encode_request(self)
    }

    /// Total wire size in bytes without materializing the message.
    pub fn wire_len(&self) -> u64 {
        self.request_line_len() + self.headers.wire_len() + 2 + self.body.len()
    }
}

/// Incremental builder for [`Request`].
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    method: Method,
    uri: Uri,
    version: Version,
    headers: HeaderMap,
    body: Body,
}

impl RequestBuilder {
    /// Starts a builder, validating the request target.
    ///
    /// # Errors
    ///
    /// Returns an error if `target` is not valid origin-form.
    pub fn try_new(method: Method, target: &str) -> Result<RequestBuilder, crate::Error> {
        Ok(RequestBuilder {
            method,
            uri: Uri::parse(target)?,
            version: Version::Http11,
            headers: HeaderMap::new(),
            body: Body::empty(),
        })
    }

    /// Sets the protocol version (HTTP/1.1 by default).
    pub fn version(mut self, version: Version) -> RequestBuilder {
        self.version = version;
        self
    }

    /// Appends a header field.
    ///
    /// # Panics
    ///
    /// Panics on invalid header text; builders are for trusted call sites.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> RequestBuilder {
        self.headers.append(name, value);
        self
    }

    /// Sets the payload.
    pub fn body(mut self, body: impl Into<Body>) -> RequestBuilder {
        self.body = body.into();
        self
    }

    /// Finishes the request.
    pub fn build(self) -> Request {
        Request {
            method: self.method,
            uri: self.uri,
            version: self.version,
            headers: self.headers,
            body: self.body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_request() {
        let req = Request::get("/1KB.jpg")
            .header("Host", "example.com")
            .header("Range", "bytes=0-0")
            .build();
        assert_eq!(req.method(), &Method::Get);
        assert_eq!(req.uri().path(), "/1KB.jpg");
        assert_eq!(req.version(), Version::Http11);
        assert_eq!(req.headers().len(), 2);
    }

    #[test]
    fn request_line_len_matches_serialization() {
        let req = Request::get("/x").build();
        // "GET /x HTTP/1.1\r\n" is 17 bytes
        assert_eq!(req.request_line_len(), 17);
    }

    #[test]
    fn wire_len_matches_actual_bytes() {
        let req = Request::get("/1KB.jpg?x=1")
            .header("Host", "example.com")
            .header("Range", "bytes=1-1,-2")
            .body(vec![1u8, 2, 3])
            .build();
        assert_eq!(req.wire_len(), req.to_wire_bytes().len() as u64);
    }

    #[test]
    fn headers_mut_allows_policy_rewrites() {
        let mut req = Request::get("/f").header("Range", "bytes=0-0").build();
        req.headers_mut().remove("Range");
        assert!(!req.headers().contains("range"));
    }
}
