use std::fmt;
use std::str::FromStr;

use crate::Error;

/// Request-target in *origin-form*: an absolute path plus optional query.
///
/// CDN cache keys are derived from this (most CDNs key on path+query, which
/// is exactly why appending a random query string forces a cache miss —
/// paper §II-A), so the query component is first-class here.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Uri {
    path: String,
    query: Option<String>,
}

impl Uri {
    /// Parses an origin-form request target such as `/10MB.bin?x=1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStartLine`] if the target does not begin
    /// with `/` or contains whitespace/control characters.
    pub fn parse(target: &str) -> Result<Uri, Error> {
        if !target.starts_with('/')
            || target
                .bytes()
                .any(|b| b == b' ' || b == b'\t' || b.is_ascii_control())
        {
            return Err(Error::InvalidStartLine(format!(
                "bad request target {target:?}"
            )));
        }
        match target.split_once('?') {
            Some((path, query)) => Ok(Uri {
                path: path.to_string(),
                query: Some(query.to_string()),
            }),
            None => Ok(Uri {
                path: target.to_string(),
                query: None,
            }),
        }
    }

    /// The path component, always beginning with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query component without the leading `?`, if present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Returns a copy with an extra `key=value` pair appended to the query.
    ///
    /// This is the cache-busting primitive: appending a random query string
    /// makes most CDNs treat the URL as a brand-new cache key and forward
    /// the request to the origin (paper §II-A, §IV-B).
    pub fn with_query_param(&self, key: &str, value: &str) -> Uri {
        let pair = format!("{key}={value}");
        let query = match &self.query {
            Some(existing) if !existing.is_empty() => format!("{existing}&{pair}"),
            _ => pair,
        };
        Uri {
            path: self.path.clone(),
            query: Some(query),
        }
    }

    /// Returns a copy with the query stripped (how a CDN configured to
    /// "ignore query strings" normalizes its cache key).
    pub fn without_query(&self) -> Uri {
        Uri {
            path: self.path.clone(),
            query: None,
        }
    }

    /// Wire length of the target in bytes.
    pub fn wire_len(&self) -> u64 {
        self.to_string().len() as u64
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.query {
            Some(query) => write!(f, "{}?{}", self.path, query),
            None => f.write_str(&self.path),
        }
    }
}

impl FromStr for Uri {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self, Error> {
        Uri::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_path_and_query() {
        let uri = Uri::parse("/a/b.bin?x=1&y=2").unwrap();
        assert_eq!(uri.path(), "/a/b.bin");
        assert_eq!(uri.query(), Some("x=1&y=2"));
        assert_eq!(uri.to_string(), "/a/b.bin?x=1&y=2");
    }

    #[test]
    fn plain_path_has_no_query() {
        let uri = Uri::parse("/10MB.bin").unwrap();
        assert_eq!(uri.query(), None);
        assert_eq!(uri.to_string(), "/10MB.bin");
    }

    #[test]
    fn rejects_relative_and_malformed_targets() {
        assert!(Uri::parse("10MB.bin").is_err());
        assert!(Uri::parse("/a b").is_err());
        assert!(Uri::parse("").is_err());
    }

    #[test]
    fn cache_busting_appends_param() {
        let uri = Uri::parse("/f.bin").unwrap();
        let busted = uri.with_query_param("rnd", "123");
        assert_eq!(busted.to_string(), "/f.bin?rnd=123");
        let twice = busted.with_query_param("rnd", "456");
        assert_eq!(twice.to_string(), "/f.bin?rnd=123&rnd=456");
    }

    #[test]
    fn without_query_normalizes() {
        let uri = Uri::parse("/f.bin?rnd=1").unwrap();
        assert_eq!(uri.without_query().to_string(), "/f.bin");
    }

    #[test]
    fn empty_query_component_is_preserved_on_display() {
        let uri = Uri::parse("/f.bin?").unwrap();
        assert_eq!(uri.query(), Some(""));
        assert_eq!(uri.to_string(), "/f.bin?");
    }
}
