use crate::{Body, HeaderMap, StatusCode, Version};

/// An HTTP response message.
///
/// # Example
///
/// ```
/// use rangeamp_http::{Response, StatusCode};
///
/// let resp = Response::builder(StatusCode::PARTIAL_CONTENT)
///     .header("Content-Range", "bytes 0-0/1000")
///     .header("Content-Length", "1")
///     .body(vec![0xff])
///     .build();
/// assert!(resp.status().is_success());
/// assert_eq!(resp.body().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    version: Version,
    status: StatusCode,
    headers: HeaderMap,
    body: Body,
}

impl Response {
    /// Starts building a response with the given status.
    pub fn builder(status: StatusCode) -> ResponseBuilder {
        ResponseBuilder {
            version: Version::Http11,
            status,
            headers: HeaderMap::new(),
            body: Body::empty(),
        }
    }

    /// Protocol version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Status code.
    pub fn status(&self) -> StatusCode {
        self.status
    }

    /// Header fields.
    pub fn headers(&self) -> &HeaderMap {
        &self.headers
    }

    /// Mutable header fields (CDNs add `Via`, `X-Cache`, etc. here).
    pub fn headers_mut(&mut self) -> &mut HeaderMap {
        &mut self.headers
    }

    /// Message payload.
    pub fn body(&self) -> &Body {
        &self.body
    }

    /// Replaces the payload, fixing up `Content-Length` to match.
    pub fn set_body(&mut self, body: impl Into<Body>) {
        self.body = body.into();
        self.headers
            .set("Content-Length", self.body.len().to_string());
    }

    /// Wire length of the status line in bytes, including CRLF.
    pub fn status_line_len(&self) -> u64 {
        8 + 1 + 3 + 1 + self.status.reason_phrase().len() as u64 + 2
    }

    /// Serializes the response to its exact HTTP/1.1 wire bytes.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        crate::wire::encode_response(self)
    }

    /// Total wire size in bytes without materializing the message.
    ///
    /// The amplification factor of an attack is a ratio of response
    /// `wire_len`s on two different segments (paper §V-B).
    pub fn wire_len(&self) -> u64 {
        self.status_line_len() + self.headers.wire_len() + 2 + self.body.len()
    }
}

/// Incremental builder for [`Response`].
#[derive(Debug, Clone)]
pub struct ResponseBuilder {
    version: Version,
    status: StatusCode,
    headers: HeaderMap,
    body: Body,
}

impl ResponseBuilder {
    /// Sets the protocol version (HTTP/1.1 by default).
    pub fn version(mut self, version: Version) -> ResponseBuilder {
        self.version = version;
        self
    }

    /// Appends a header field.
    ///
    /// # Panics
    ///
    /// Panics on invalid header text; builders are for trusted call sites.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> ResponseBuilder {
        self.headers.append(name, value);
        self
    }

    /// Sets the payload without touching `Content-Length`.
    pub fn body(mut self, body: impl Into<Body>) -> ResponseBuilder {
        self.body = body.into();
        self
    }

    /// Sets the payload and a matching `Content-Length` header.
    pub fn sized_body(mut self, body: impl Into<Body>) -> ResponseBuilder {
        self.body = body.into();
        self.headers
            .set("Content-Length", self.body.len().to_string());
        self
    }

    /// Finishes the response.
    pub fn build(self) -> Response {
        Response {
            version: self.version,
            status: self.status,
            headers: self.headers,
            body: self.body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_line_len_matches_serialization() {
        let resp = Response::builder(StatusCode::OK).build();
        // "HTTP/1.1 200 OK\r\n" is 17 bytes
        assert_eq!(resp.status_line_len(), 17);
    }

    #[test]
    fn wire_len_matches_actual_bytes() {
        let resp = Response::builder(StatusCode::PARTIAL_CONTENT)
            .header("Content-Range", "bytes 0-0/1000")
            .sized_body(vec![0xff])
            .build();
        assert_eq!(resp.wire_len(), resp.to_wire_bytes().len() as u64);
    }

    #[test]
    fn sized_body_sets_content_length() {
        let resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 42])
            .build();
        assert_eq!(resp.headers().get("content-length"), Some("42"));
    }

    #[test]
    fn set_body_updates_content_length() {
        let mut resp = Response::builder(StatusCode::OK)
            .sized_body(vec![0u8; 4])
            .build();
        resp.set_body(vec![0u8; 9]);
        assert_eq!(resp.headers().get("content-length"), Some("9"));
        assert_eq!(resp.body().len(), 9);
    }
}
