use std::fmt;
use std::str::FromStr;

use crate::Error;

/// HTTP protocol version carried on the start line.
///
/// The paper's experiments speak HTTP/1.1 on every segment; HTTP/1.0 is
/// kept for origin servers that downgrade, and the RangeAmp threats apply
/// to HTTP/2 unchanged (paper §VI-B) so no semantics here depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Version {
    /// `HTTP/1.0`.
    Http10,
    /// `HTTP/1.1` (default everywhere in the testbed).
    #[default]
    Http11,
}

impl Version {
    /// Wire representation, e.g. `HTTP/1.1`.
    pub fn as_str(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Version {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        match s {
            "HTTP/1.0" => Ok(Version::Http10),
            "HTTP/1.1" => Ok(Version::Http11),
            other => Err(Error::UnsupportedVersion(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert_eq!("HTTP/1.1".parse::<Version>().unwrap(), Version::Http11);
        assert_eq!("HTTP/1.0".parse::<Version>().unwrap(), Version::Http10);
        assert_eq!(Version::Http11.to_string(), "HTTP/1.1");
    }

    #[test]
    fn default_is_http11() {
        assert_eq!(Version::default(), Version::Http11);
    }

    #[test]
    fn rejects_http2_start_line_token() {
        assert!("HTTP/2.0".parse::<Version>().is_err());
        assert!("http/1.1".parse::<Version>().is_err());
    }
}
