//! Set-level operations on resolved ranges: coalescing, span accounting,
//! and the [`RangeSet`] view used by mitigation policies.

use super::ResolvedRange;

/// Merges overlapping or adjacent ranges into a minimal sorted set.
///
/// This is the transformation RFC 7233 §6.1 suggests servers apply to
/// egregious multi-range requests ("coalesce") and is what the mitigated
/// BCDN profiles do instead of emitting an n-part overlapping response.
///
/// # Example
///
/// ```
/// use rangeamp_http::range::{coalesce, ResolvedRange};
///
/// let merged = coalesce(&[
///     ResolvedRange { first: 0, last: 999 },
///     ResolvedRange { first: 0, last: 999 },
///     ResolvedRange { first: 500, last: 1500 },
/// ]);
/// assert_eq!(merged, vec![ResolvedRange { first: 0, last: 1500 }]);
/// ```
pub fn coalesce(ranges: &[ResolvedRange]) -> Vec<ResolvedRange> {
    let mut sorted: Vec<ResolvedRange> = ranges.to_vec();
    sorted.sort();
    let mut merged: Vec<ResolvedRange> = Vec::with_capacity(sorted.len());
    for range in sorted {
        match merged.last_mut() {
            Some(prev) if prev.touches(&range) => {
                prev.last = prev.last.max(range.last);
            }
            _ => merged.push(range),
        }
    }
    merged
}

/// Total number of bytes the ranges cover, counting overlapping bytes once
/// per range (i.e. what a server that does *not* check overlaps transmits).
pub fn total_span(ranges: &[ResolvedRange]) -> u64 {
    ranges.iter().map(ResolvedRange::len).sum()
}

/// An analyzed set of resolved ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeSet {
    ranges: Vec<ResolvedRange>,
    complete_length: u64,
}

impl RangeSet {
    /// Analyzes `ranges` against a representation length.
    pub fn new(ranges: Vec<ResolvedRange>, complete_length: u64) -> RangeSet {
        RangeSet {
            ranges,
            complete_length,
        }
    }

    /// The ranges in request order.
    pub fn ranges(&self) -> &[ResolvedRange] {
        &self.ranges
    }

    /// Complete length of the representation the set was resolved against.
    pub fn complete_length(&self) -> u64 {
        self.complete_length
    }

    /// Whether the set is empty (all specs were unsatisfiable → 416).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Bytes transmitted by a server replying part-per-range without
    /// overlap checking — the quantity the OBR attack inflates.
    pub fn naive_payload(&self) -> u64 {
        total_span(&self.ranges)
    }

    /// Bytes transmitted after coalescing — what a mitigated server sends.
    pub fn coalesced_payload(&self) -> u64 {
        total_span(&coalesce(&self.ranges))
    }

    /// Ratio between the naive and coalesced payloads; this is the
    /// body-level amplification an OBR BCDN hands the attacker.
    pub fn overlap_amplification(&self) -> f64 {
        let coalesced = self.coalesced_payload();
        if coalesced == 0 {
            return 0.0;
        }
        self.naive_payload() as f64 / coalesced as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(first: u64, last: u64) -> ResolvedRange {
        ResolvedRange { first, last }
    }

    #[test]
    fn coalesce_merges_overlaps_and_adjacency() {
        let merged = coalesce(&[r(0, 10), r(5, 20), r(21, 30), r(40, 50)]);
        assert_eq!(merged, vec![r(0, 30), r(40, 50)]);
    }

    #[test]
    fn coalesce_is_idempotent() {
        let once = coalesce(&[r(0, 10), r(2, 3), r(30, 40)]);
        let twice = coalesce(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn coalesce_handles_unsorted_input() {
        let merged = coalesce(&[r(40, 50), r(0, 10), r(5, 20)]);
        assert_eq!(merged, vec![r(0, 20), r(40, 50)]);
    }

    #[test]
    fn coalesce_empty_is_empty() {
        assert!(coalesce(&[]).is_empty());
    }

    #[test]
    fn total_span_counts_duplicates() {
        assert_eq!(total_span(&[r(0, 999), r(0, 999)]), 2000);
    }

    #[test]
    fn obr_amplification_is_n() {
        // n identical full-file ranges amplify the body n times.
        let n = 64;
        let ranges = vec![r(0, 1023); n];
        let set = RangeSet::new(ranges, 1024);
        assert_eq!(set.naive_payload(), 1024 * n as u64);
        assert_eq!(set.coalesced_payload(), 1024);
        assert!((set.overlap_amplification() - n as f64).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_set_has_zero_amplification() {
        let set = RangeSet::new(vec![], 1024);
        assert!(set.is_empty());
        assert_eq!(set.overlap_amplification(), 0.0);
    }
}
