//! RFC 7233 byte-range grammar, resolution, and analysis.
//!
//! Everything RangeAmp exploits lives here: the `Range` request header
//! ([`RangeHeader`]), its resolution against a representation
//! ([`ByteRangeSpec::resolve`]), the `Content-Range` response header
//! ([`ContentRange`]), overlap analysis ([`RangeSet`]) and the RFC 7233
//! security heuristics that well-behaved servers are supposed to apply to
//! multi-range requests (and some CDNs don't — paper §III-B).

mod gen;
mod parse;
mod satisfy;

pub use gen::{
    ParseExpectation, RangeCaseKind, RangeRequestCase, RangeRequestGenerator, RawRangeCase,
    RawRangeFamily,
};
pub use satisfy::{coalesce, total_span, RangeSet};

use std::fmt;

use crate::{Error, Result};

/// One element of a `Range: bytes=...` header, before resolution against a
/// concrete representation length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteRangeSpec {
    /// `first-last`, both inclusive (`bytes=0-0`).
    FromTo {
        /// First byte position.
        first: u64,
        /// Last byte position (inclusive).
        last: u64,
    },
    /// `first-`, open-ended (`bytes=0-`) — the OBR attack's workhorse.
    From {
        /// First byte position.
        first: u64,
    },
    /// `-suffix`, the final `suffix` bytes (`bytes=-1`).
    Suffix {
        /// Number of trailing bytes requested.
        len: u64,
    },
}

impl ByteRangeSpec {
    /// Resolves this spec against a representation of `complete_length`
    /// bytes per RFC 7233 §2.1.
    ///
    /// Returns `None` when the spec is syntactically valid but not
    /// satisfiable for this representation (contributes toward a 416).
    pub fn resolve(&self, complete_length: u64) -> Option<ResolvedRange> {
        match *self {
            ByteRangeSpec::FromTo { first, last } => {
                if first > last || first >= complete_length {
                    return None;
                }
                Some(ResolvedRange {
                    first,
                    last: last.min(complete_length - 1),
                })
            }
            ByteRangeSpec::From { first } => {
                if first >= complete_length {
                    return None;
                }
                Some(ResolvedRange {
                    first,
                    last: complete_length - 1,
                })
            }
            ByteRangeSpec::Suffix { len } => {
                if len == 0 || complete_length == 0 {
                    return None;
                }
                Some(ResolvedRange {
                    first: complete_length.saturating_sub(len),
                    last: complete_length - 1,
                })
            }
        }
    }

    /// Whether the spec is syntactically valid regardless of
    /// representation (a `first-last` with `last < first` is invalid per
    /// the ABNF's semantics and voids the whole header).
    pub fn is_syntactically_valid(&self) -> bool {
        match *self {
            ByteRangeSpec::FromTo { first, last } => first <= last,
            _ => true,
        }
    }
}

impl fmt::Display for ByteRangeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ByteRangeSpec::FromTo { first, last } => write!(f, "{first}-{last}"),
            ByteRangeSpec::From { first } => write!(f, "{first}-"),
            ByteRangeSpec::Suffix { len } => write!(f, "-{len}"),
        }
    }
}

/// A byte range resolved to concrete inclusive positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResolvedRange {
    /// First byte position.
    pub first: u64,
    /// Last byte position (inclusive, `< complete_length`).
    pub last: u64,
}

impl ResolvedRange {
    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.last - self.first + 1
    }

    /// Resolved ranges are never empty; provided for clippy-idiomatic
    /// pairing with [`ResolvedRange::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether two resolved ranges share at least one byte.
    pub fn overlaps(&self, other: &ResolvedRange) -> bool {
        self.first <= other.last && other.first <= self.last
    }

    /// Whether two ranges overlap or are directly adjacent.
    pub fn touches(&self, other: &ResolvedRange) -> bool {
        self.overlaps(other) || self.last + 1 == other.first || other.last + 1 == self.first
    }
}

/// A parsed `Range` header: the `bytes` unit plus one or more specs.
///
/// # Example
///
/// ```
/// use rangeamp_http::range::{RangeHeader, ByteRangeSpec};
///
/// # fn main() -> Result<(), rangeamp_http::Error> {
/// let header = RangeHeader::parse("bytes=1-1,-2")?;
/// assert_eq!(header.specs().len(), 2);
/// assert_eq!(header.specs()[0], ByteRangeSpec::FromTo { first: 1, last: 1 });
/// assert_eq!(header.to_string(), "bytes=1-1,-2");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeHeader {
    specs: Vec<ByteRangeSpec>,
}

impl RangeHeader {
    /// Builds a header from specs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRange`] if `specs` is empty or any spec has
    /// `last < first`.
    pub fn new(specs: Vec<ByteRangeSpec>) -> Result<RangeHeader> {
        if specs.is_empty() {
            return Err(Error::InvalidRange("empty byte-range-set".to_string()));
        }
        if let Some(bad) = specs.iter().find(|s| !s.is_syntactically_valid()) {
            return Err(Error::InvalidRange(format!("last < first in {bad}")));
        }
        Ok(RangeHeader { specs })
    }

    /// Parses a `Range` header value such as `bytes=0-0,-1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRange`] when the value does not match the
    /// RFC 7233 ABNF.
    pub fn parse(value: &str) -> Result<RangeHeader> {
        parse::parse_range_header(value)
    }

    /// Convenience constructor for the single-range `bytes=first-last`.
    pub fn from_to(first: u64, last: u64) -> RangeHeader {
        RangeHeader {
            specs: vec![ByteRangeSpec::FromTo {
                first: first.min(last),
                last: last.max(first),
            }],
        }
    }

    /// Convenience constructor for the single-range `bytes=first-`.
    pub fn from_first(first: u64) -> RangeHeader {
        RangeHeader {
            specs: vec![ByteRangeSpec::From { first }],
        }
    }

    /// Convenience constructor for the single-range `bytes=-len`.
    pub fn suffix(len: u64) -> RangeHeader {
        RangeHeader {
            specs: vec![ByteRangeSpec::Suffix { len }],
        }
    }

    /// Builds the OBR attack header `bytes=0-,0-,...,0-` with `n` specs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn overlapping(n: usize) -> RangeHeader {
        assert!(n > 0, "need at least one range");
        RangeHeader {
            specs: vec![ByteRangeSpec::From { first: 0 }; n],
        }
    }

    /// The specs in header order.
    pub fn specs(&self) -> &[ByteRangeSpec] {
        &self.specs
    }

    /// Whether the header contains more than one spec.
    pub fn is_multi(&self) -> bool {
        self.specs.len() > 1
    }

    /// Resolves every spec against `complete_length`, dropping
    /// unsatisfiable ones.
    pub fn resolve(&self, complete_length: u64) -> Vec<ResolvedRange> {
        self.specs
            .iter()
            .filter_map(|s| s.resolve(complete_length))
            .collect()
    }

    /// Number of pairs of specs that would overlap for a representation of
    /// `complete_length` bytes.
    pub fn overlapping_pairs(&self, complete_length: u64) -> usize {
        let resolved = self.resolve(complete_length);
        let mut pairs = 0;
        for i in 0..resolved.len() {
            for j in (i + 1)..resolved.len() {
                if resolved[i].overlaps(&resolved[j]) {
                    pairs += 1;
                }
            }
        }
        pairs
    }

    /// RFC 7233 §6.1 heuristic: a server "ought to ignore, coalesce, or
    /// reject egregious range requests, such as requests for more than two
    /// overlapping ranges or for many small ranges in a single set".
    ///
    /// Returns `true` when the header trips that heuristic. The mitigated
    /// CDN profiles consult this; the vulnerable ones don't.
    pub fn is_egregious(&self, complete_length: u64) -> bool {
        const MANY_SMALL_RANGES: usize = 32;
        const SMALL_RANGE_BYTES: u64 = 64;
        if self.overlapping_pairs(complete_length) > 2 {
            return true;
        }
        let small = self
            .resolve(complete_length)
            .iter()
            .filter(|r| r.len() <= SMALL_RANGE_BYTES)
            .count();
        small >= MANY_SMALL_RANGES
    }

    /// Serialized length in bytes of the header *value* (`bytes=...`),
    /// which is what single-header size limits meter (paper §V-C).
    pub fn value_len(&self) -> u64 {
        self.to_string().len() as u64
    }
}

impl fmt::Display for RangeHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("bytes=")?;
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for RangeHeader {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        RangeHeader::parse(s)
    }
}

/// A `Content-Range` response header (RFC 7233 §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentRange {
    /// `bytes first-last/complete` on a 206.
    Satisfied {
        /// The delivered range.
        range: ResolvedRange,
        /// Complete length of the representation.
        complete_length: u64,
    },
    /// `bytes */complete` on a 416.
    Unsatisfied {
        /// Complete length of the representation.
        complete_length: u64,
    },
}

impl ContentRange {
    /// Parses a `Content-Range` header value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidContentRange`] on anything that does not
    /// match `bytes first-last/complete` or `bytes */complete`.
    pub fn parse(value: &str) -> Result<ContentRange> {
        parse::parse_content_range(value)
    }
}

impl fmt::Display for ContentRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ContentRange::Satisfied {
                range,
                complete_length,
            } => {
                write!(
                    f,
                    "bytes {}-{}/{}",
                    range.first, range.last, complete_length
                )
            }
            ContentRange::Unsatisfied { complete_length } => {
                write!(f, "bytes */{complete_length}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_from_to_clamps_last() {
        let spec = ByteRangeSpec::FromTo {
            first: 998,
            last: 5000,
        };
        assert_eq!(
            spec.resolve(1000),
            Some(ResolvedRange {
                first: 998,
                last: 999
            })
        );
    }

    #[test]
    fn resolve_rejects_first_past_end() {
        let spec = ByteRangeSpec::FromTo {
            first: 1000,
            last: 1000,
        };
        assert_eq!(spec.resolve(1000), None);
        assert_eq!(ByteRangeSpec::From { first: 1000 }.resolve(1000), None);
    }

    #[test]
    fn resolve_suffix() {
        let spec = ByteRangeSpec::Suffix { len: 2 };
        assert_eq!(
            spec.resolve(1000),
            Some(ResolvedRange {
                first: 998,
                last: 999
            })
        );
        // Suffix longer than the representation covers everything.
        assert_eq!(
            ByteRangeSpec::Suffix { len: 5000 }.resolve(1000),
            Some(ResolvedRange {
                first: 0,
                last: 999
            })
        );
        assert_eq!(ByteRangeSpec::Suffix { len: 0 }.resolve(1000), None);
        assert_eq!(ByteRangeSpec::Suffix { len: 5 }.resolve(0), None);
    }

    #[test]
    fn overlap_detection() {
        let a = ResolvedRange { first: 0, last: 10 };
        let b = ResolvedRange {
            first: 10,
            last: 20,
        };
        let c = ResolvedRange {
            first: 11,
            last: 20,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.touches(&c));
    }

    #[test]
    fn obr_header_shape() {
        let header = RangeHeader::overlapping(3);
        assert_eq!(header.to_string(), "bytes=0-,0-,0-");
        assert_eq!(header.overlapping_pairs(1024), 3);
        assert!(header.is_egregious(1024));
    }

    #[test]
    fn egregious_thresholds() {
        // Two overlapping ranges (one pair) is fine per the RFC wording.
        let two = RangeHeader::new(vec![
            ByteRangeSpec::From { first: 0 },
            ByteRangeSpec::From { first: 0 },
        ])
        .unwrap();
        assert_eq!(two.overlapping_pairs(1024), 1);
        assert!(!two.is_egregious(1024));

        // Many disjoint small ranges trips the heuristic.
        let specs: Vec<_> = (0..40)
            .map(|i| ByteRangeSpec::FromTo {
                first: i * 100,
                last: i * 100,
            })
            .collect();
        let many = RangeHeader::new(specs).unwrap();
        assert!(many.is_egregious(100_000));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for text in [
            "bytes=0-0",
            "bytes=-1",
            "bytes=0-",
            "bytes=1-1,-2",
            "bytes=0-,0-,0-",
        ] {
            let header = RangeHeader::parse(text).unwrap();
            assert_eq!(header.to_string(), text);
        }
    }

    #[test]
    fn content_range_display() {
        let satisfied = ContentRange::Satisfied {
            range: ResolvedRange { first: 0, last: 0 },
            complete_length: 1000,
        };
        assert_eq!(satisfied.to_string(), "bytes 0-0/1000");
        let unsatisfied = ContentRange::Unsatisfied {
            complete_length: 1000,
        };
        assert_eq!(unsatisfied.to_string(), "bytes */1000");
    }

    #[test]
    fn new_rejects_inverted_and_empty() {
        assert!(RangeHeader::new(vec![]).is_err());
        assert!(RangeHeader::new(vec![ByteRangeSpec::FromTo { first: 5, last: 2 }]).is_err());
    }
}
