//! Hand-written parser for the RFC 7233 `Range` and `Content-Range` ABNF.
//!
//! ```text
//! Range             = byte-ranges-specifier / other-ranges-specifier
//! byte-ranges-specifier = bytes-unit "=" byte-range-set
//! byte-range-set    = 1#( byte-range-spec / suffix-byte-range-spec )
//! byte-range-spec   = first-byte-pos "-" [ last-byte-pos ]
//! suffix-byte-range-spec = "-" suffix-length
//! ```
//!
//! Per RFC 7230 §7 the `1#rule` list form tolerates optional whitespace
//! around commas and empty list elements; real CDN parsers accept those, so
//! this parser does too (the generator exercises them).

use super::{ByteRangeSpec, ContentRange, RangeHeader, ResolvedRange};
use crate::{Error, Result};

pub(super) fn parse_range_header(value: &str) -> Result<RangeHeader> {
    let err = || Error::InvalidRange(value.to_string());

    let rest = value.strip_prefix("bytes").ok_or_else(err)?;
    let rest = rest.trim_start_matches(' ');
    let set = rest.strip_prefix('=').ok_or_else(err)?;

    let mut specs = Vec::new();
    for element in set.split(',') {
        let element = element.trim_matches(|c| c == ' ' || c == '\t');
        if element.is_empty() {
            // Empty list elements are tolerated by the list extension.
            continue;
        }
        specs.push(parse_spec(element).ok_or_else(err)?);
    }
    if specs.is_empty() {
        return Err(err());
    }
    RangeHeader::new(specs).map_err(|_| err())
}

fn parse_spec(element: &str) -> Option<ByteRangeSpec> {
    if let Some(suffix) = element.strip_prefix('-') {
        // suffix-byte-range-spec
        let len = parse_decimal(suffix)?;
        return Some(ByteRangeSpec::Suffix { len });
    }
    let (first, last) = element.split_once('-')?;
    let first = parse_decimal(first)?;
    if last.is_empty() {
        Some(ByteRangeSpec::From { first })
    } else {
        let last = parse_decimal(last)?;
        if last < first {
            return None;
        }
        Some(ByteRangeSpec::FromTo { first, last })
    }
}

/// Strict `1*DIGIT` — no signs, no whitespace, no empty string.
fn parse_decimal(digits: &str) -> Option<u64> {
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

pub(super) fn parse_content_range(value: &str) -> Result<ContentRange> {
    let err = || Error::InvalidContentRange(value.to_string());

    let rest = value.strip_prefix("bytes ").ok_or_else(err)?;
    let (range_part, complete_part) = rest.split_once('/').ok_or_else(err)?;
    let complete_length = if complete_part == "*" {
        // `bytes x-y/*` is legal but useless to the testbed; reject so
        // callers notice an origin emitting unknown lengths.
        return Err(err());
    } else {
        parse_decimal(complete_part).ok_or_else(err)?
    };

    if range_part == "*" {
        return Ok(ContentRange::Unsatisfied { complete_length });
    }
    let (first, last) = range_part.split_once('-').ok_or_else(err)?;
    let first = parse_decimal(first).ok_or_else(err)?;
    let last = parse_decimal(last).ok_or_else(err)?;
    if last < first || last >= complete_length {
        return Err(err());
    }
    Ok(ContentRange::Satisfied {
        range: ResolvedRange { first, last },
        complete_length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_spec_forms() {
        let header = parse_range_header("bytes=0-0,5-,-128").unwrap();
        assert_eq!(
            header.specs(),
            &[
                ByteRangeSpec::FromTo { first: 0, last: 0 },
                ByteRangeSpec::From { first: 5 },
                ByteRangeSpec::Suffix { len: 128 },
            ]
        );
    }

    #[test]
    fn tolerates_list_whitespace_and_empty_elements() {
        let header = parse_range_header("bytes=0-0, 1-1 ,,2-2").unwrap();
        assert_eq!(header.specs().len(), 3);
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "bytes",
            "bytes=",
            "bytes=,",
            "bytes=a-b",
            "bytes=5-2",
            "bytes=--5",
            "bytes=0--5",
            "octets=0-0",
            "bytes=0-0x",
            "bytes=+1-2",
            "bytes=1 -2",
        ] {
            assert!(parse_range_header(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn huge_values_parse_up_to_u64() {
        let header = parse_range_header("bytes=0-18446744073709551615").unwrap();
        assert_eq!(
            header.specs()[0],
            ByteRangeSpec::FromTo {
                first: 0,
                last: u64::MAX
            }
        );
        assert!(parse_range_header("bytes=0-18446744073709551616").is_err());
    }

    #[test]
    fn content_range_satisfied() {
        let cr = parse_content_range("bytes 0-0/1000").unwrap();
        assert_eq!(
            cr,
            ContentRange::Satisfied {
                range: ResolvedRange { first: 0, last: 0 },
                complete_length: 1000
            }
        );
    }

    #[test]
    fn content_range_unsatisfied() {
        let cr = parse_content_range("bytes */1000").unwrap();
        assert_eq!(
            cr,
            ContentRange::Unsatisfied {
                complete_length: 1000
            }
        );
    }

    #[test]
    fn content_range_rejects_inconsistent_forms() {
        for bad in [
            "bytes 0-0/*",
            "bytes 5-2/1000",
            "bytes 0-1000/1000",
            "bytes0-0/1000",
            "bytes 0-0",
            "bytes a-b/10",
        ] {
            assert!(parse_content_range(bad).is_err(), "should reject {bad:?}");
        }
    }
}
