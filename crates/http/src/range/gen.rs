//! ABNF-driven random generation of valid range requests.
//!
//! The paper's first experiment feeds each CDN "a large number of valid
//! range requests automatically generated based on the ABNF rules described
//! in the RFCs" (§V-A) and differentially compares what the origin receives.
//! [`RangeRequestGenerator`] is that workload generator: every emitted
//! header is valid per RFC 7233, and the case mix deliberately covers the
//! shapes the vulnerability tables distinguish (small first-last, suffix,
//! open-ended, multi-range, overlapping multi-range).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{ByteRangeSpec, RangeHeader};
use crate::error::{Error, Result};

/// The structural family a generated case belongs to, so the scanner can
/// attribute observed behaviour to a range format (Table I column 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeCaseKind {
    /// `bytes=first-last` with a tiny span.
    SmallFromTo,
    /// `bytes=first-last` with an arbitrary span.
    FromTo,
    /// `bytes=first-` open-ended.
    OpenEnded,
    /// `bytes=-suffix`.
    Suffix,
    /// Multiple disjoint ranges.
    MultiDisjoint,
    /// Multiple overlapping ranges (the OBR shape).
    MultiOverlapping,
}

impl RangeCaseKind {
    /// All kinds, in the order the scanner probes them.
    pub const ALL: [RangeCaseKind; 6] = [
        RangeCaseKind::SmallFromTo,
        RangeCaseKind::FromTo,
        RangeCaseKind::OpenEnded,
        RangeCaseKind::Suffix,
        RangeCaseKind::MultiDisjoint,
        RangeCaseKind::MultiOverlapping,
    ];
}

/// A generated range-request case: the header plus its family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRequestCase {
    /// Which structural family the case exercises.
    pub kind: RangeCaseKind,
    /// The generated header.
    pub header: RangeHeader,
}

/// Seeded generator of valid `Range` headers.
///
/// # Example
///
/// ```
/// use rangeamp_http::range::RangeRequestGenerator;
///
/// let mut gen = RangeRequestGenerator::new(7, 1024 * 1024);
/// let case = gen.next_case();
/// // Every generated header re-parses under the strict ABNF parser.
/// let reparsed = rangeamp_http::range::RangeHeader::parse(&case.header.to_string());
/// assert!(reparsed.is_ok());
/// ```
#[derive(Debug)]
pub struct RangeRequestGenerator {
    rng: StdRng,
    file_size: u64,
}

impl RangeRequestGenerator {
    /// Creates a generator for a representation of `file_size` bytes.
    pub fn new(seed: u64, file_size: u64) -> RangeRequestGenerator {
        RangeRequestGenerator {
            rng: StdRng::seed_from_u64(seed),
            file_size: file_size.max(1),
        }
    }

    /// Generates the next case, cycling uniformly over the kinds.
    pub fn next_case(&mut self) -> RangeRequestCase {
        let kind = RangeCaseKind::ALL[self.rng.gen_range(0..RangeCaseKind::ALL.len())];
        self.case_of_kind(kind)
    }

    /// Fallible [`next_case`](RangeRequestGenerator::next_case): an
    /// [`Error::InvalidRange`] marks a generator/parser disagreement the
    /// fuzzer records as a finding instead of aborting the run.
    pub fn try_next_case(&mut self) -> Result<RangeRequestCase> {
        let kind = RangeCaseKind::ALL[self.rng.gen_range(0..RangeCaseKind::ALL.len())];
        self.try_case_of_kind(kind)
    }

    /// Generates a case of a specific kind.
    ///
    /// # Panics
    ///
    /// Panics if the generated header does not survive the strict-parser
    /// roundtrip — use
    /// [`try_case_of_kind`](RangeRequestGenerator::try_case_of_kind) to
    /// handle that as an error instead.
    pub fn case_of_kind(&mut self, kind: RangeCaseKind) -> RangeRequestCase {
        self.try_case_of_kind(kind)
            .expect("generated header must survive the parser roundtrip")
    }

    /// Fallible [`case_of_kind`](RangeRequestGenerator::case_of_kind):
    /// every constructed header is checked against the strict ABNF parser
    /// (display → parse → compare), and a disagreement comes back as
    /// [`Error::InvalidRange`] rather than a panic.
    pub fn try_case_of_kind(&mut self, kind: RangeCaseKind) -> Result<RangeRequestCase> {
        let header = self.build_header(kind)?;
        let text = header.to_string();
        let reparsed = RangeHeader::parse(&text).map_err(|e| {
            Error::InvalidRange(format!(
                "generated {kind:?} header {text:?} rejected by the parser: {e}"
            ))
        })?;
        if reparsed != header {
            return Err(Error::InvalidRange(format!(
                "generator/parser disagreement on {text:?}: reparsed as {reparsed}"
            )));
        }
        Ok(RangeRequestCase { kind, header })
    }

    fn build_header(&mut self, kind: RangeCaseKind) -> Result<RangeHeader> {
        let header = match kind {
            RangeCaseKind::SmallFromTo => {
                let first = self.rng.gen_range(0..self.file_size);
                let span = self.rng.gen_range(0..4.min(self.file_size - first));
                RangeHeader::from_to(first, first + span)
            }
            RangeCaseKind::FromTo => {
                let first = self.rng.gen_range(0..self.file_size);
                let last = self.rng.gen_range(first..self.file_size);
                RangeHeader::from_to(first, last)
            }
            RangeCaseKind::OpenEnded => {
                RangeHeader::from_first(self.rng.gen_range(0..self.file_size))
            }
            RangeCaseKind::Suffix => RangeHeader::suffix(self.rng.gen_range(1..=self.file_size)),
            RangeCaseKind::MultiDisjoint => {
                let count = self.rng.gen_range(2..=5u64);
                let stride = (self.file_size / (count * 2)).max(2);
                let specs = (0..count)
                    .map(|i| {
                        let first = i * 2 * stride;
                        ByteRangeSpec::FromTo {
                            first,
                            last: first + stride - 1,
                        }
                    })
                    .collect();
                RangeHeader::new(specs)?
            }
            RangeCaseKind::MultiOverlapping => {
                let count = self.rng.gen_range(3..=16usize);
                RangeHeader::overlapping(count)
            }
        };
        Ok(header)
    }

    /// Generates `count` cases.
    pub fn cases(&mut self, count: usize) -> Vec<RangeRequestCase> {
        (0..count).map(|_| self.next_case()).collect()
    }

    /// Generates one case per kind, deterministically ordered — the
    /// scanner's minimal probe set.
    pub fn probe_set(&mut self) -> Vec<RangeRequestCase> {
        RangeCaseKind::ALL
            .iter()
            .map(|&kind| self.case_of_kind(kind))
            .collect()
    }

    /// Generates the next raw-header case, cycling uniformly over
    /// [`RawRangeFamily::ALL`].
    pub fn next_raw_case(&mut self) -> RawRangeCase {
        let family = RawRangeFamily::ALL[self.rng.gen_range(0..RawRangeFamily::ALL.len())];
        self.raw_case_of_family(family)
    }

    /// Generates a raw-header case of a specific family.
    pub fn raw_case_of_family(&mut self, family: RawRangeFamily) -> RawRangeCase {
        use RawRangeFamily::*;
        let fs = self.file_size;
        let value = match family {
            Canonical => self
                .try_next_case()
                .map(|case| case.header.to_string())
                .unwrap_or_else(|_| "bytes=0-0".to_string()),
            SuffixTail => format!("bytes=-{}", self.rng.gen_range(0..=fs.saturating_mul(2))),
            HugeLast => match self.rng.gen_range(0..3u8) {
                0 => "bytes=0-18446744073709551615".to_string(),
                1 => format!("bytes={}-18446744073709551615", self.rng.gen_range(0..fs)),
                _ => "bytes=18446744073709551614-18446744073709551615".to_string(),
            },
            WhitespaceList => {
                let specs: Vec<String> = (0..self.rng.gen_range(2..=4u64))
                    .map(|i| format!("{}-{}", i * 10, i * 10 + self.rng.gen_range(0..5u64)))
                    .collect();
                let sep = [", ", " , ", ",\t", ",,", ", , "][self.rng.gen_range(0..5usize)];
                let unit = ["bytes=", "bytes ="][self.rng.gen_range(0..2usize)];
                format!("{unit}{}", specs.join(sep))
            }
            DescendingSet => {
                let hi = self.rng.gen_range(fs / 2..fs).max(1);
                let lo_last = self.rng.gen_range(0..hi);
                format!("bytes={hi}-{},0-{lo_last}", hi.saturating_add(9))
            }
            ManySmall => {
                let count = self.rng.gen_range(32..=100u64);
                let specs: Vec<String> = (0..count).map(|i| format!("{0}-{0}", i * 2)).collect();
                format!("bytes={}", specs.join(","))
            }
            CaseUnit => {
                let unit = ["Bytes", "BYTES", "bYtEs"][self.rng.gen_range(0..3usize)];
                format!("{unit}=0-{}", self.rng.gen_range(0..fs))
            }
            UnknownUnit => {
                ["bits=0-1", "octets=0-100", "chars=-5"][self.rng.gen_range(0..3usize)].to_string()
            }
            ReversedBounds => {
                let lo = self.rng.gen_range(0..fs);
                format!("bytes={}-{lo}", lo.saturating_add(self.rng.gen_range(1..9)))
            }
            OverflowOffset => [
                "bytes=0-18446744073709551616",
                "bytes=99999999999999999999-",
                "bytes=-18446744073709551616",
            ][self.rng.gen_range(0..3usize)]
            .to_string(),
            BareSuffix => "bytes=-".to_string(),
            EmptySet => ["bytes=", "bytes", "bytes=,", "bytes=, ,"][self.rng.gen_range(0..4usize)]
                .to_string(),
            MissingEquals => format!("bytes 0-{}", self.rng.gen_range(0..fs)),
            PlusSign => "bytes=+1-2".to_string(),
            InnerSpace => ["bytes=1 -2", "bytes=1- 2", "bytes=0 - 0"]
                [self.rng.gen_range(0..3usize)]
            .to_string(),
            DoubleDash => ["bytes=--5", "bytes=0--5"][self.rng.gen_range(0..2usize)].to_string(),
            Garbage => {
                const ALPHABET: &[u8] = b"abz019-,;=~ ";
                let len = self.rng.gen_range(1..=20usize);
                let junk: String = (0..len)
                    .map(|_| ALPHABET[self.rng.gen_range(0..ALPHABET.len())] as char)
                    .collect();
                format!("x-{junk}")
            }
        };
        RawRangeCase {
            family,
            expectation: family.expectation(),
            value,
        }
    }
}

/// The structural family of a raw (possibly malformed) `Range` header
/// value produced for the conformance fuzzer — boundary shapes, syntax
/// torture, and outright garbage, alongside the canonical valid cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RawRangeFamily {
    /// A canonical valid header from the ABNF generator.
    Canonical,
    /// `bytes=-N` suffixes, including the degenerate `bytes=-0`.
    SuffixTail,
    /// Last-byte offsets at the top of the u64 space.
    HugeLast,
    /// Valid sets with RFC 7230 list extensions: optional whitespace and
    /// empty elements around commas, and a space before `=`.
    WhitespaceList,
    /// Valid sets listed in descending byte order.
    DescendingSet,
    /// 32–100 tiny disjoint ranges (the origin's egregious-set shape).
    ManySmall,
    /// `Bytes=`/`BYTES=` unit-case variants (rejected by the strict
    /// parser, so the pipeline must treat the header as absent).
    CaseUnit,
    /// Unknown range units (`bits=`, `octets=`…).
    UnknownUnit,
    /// `bytes=9-2` reversed bounds.
    ReversedBounds,
    /// Offsets that overflow u64.
    OverflowOffset,
    /// The bare `bytes=-`.
    BareSuffix,
    /// Empty or all-empty range sets.
    EmptySet,
    /// Missing `=` after the unit.
    MissingEquals,
    /// Signed decimals (`+1`), invalid per `1*DIGIT`.
    PlusSign,
    /// Whitespace inside a range spec.
    InnerSpace,
    /// Doubled dashes.
    DoubleDash,
    /// Unstructured junk that must never parse.
    Garbage,
}

impl RawRangeFamily {
    /// All families, in generation order.
    pub const ALL: [RawRangeFamily; 17] = [
        RawRangeFamily::Canonical,
        RawRangeFamily::SuffixTail,
        RawRangeFamily::HugeLast,
        RawRangeFamily::WhitespaceList,
        RawRangeFamily::DescendingSet,
        RawRangeFamily::ManySmall,
        RawRangeFamily::CaseUnit,
        RawRangeFamily::UnknownUnit,
        RawRangeFamily::ReversedBounds,
        RawRangeFamily::OverflowOffset,
        RawRangeFamily::BareSuffix,
        RawRangeFamily::EmptySet,
        RawRangeFamily::MissingEquals,
        RawRangeFamily::PlusSign,
        RawRangeFamily::InnerSpace,
        RawRangeFamily::DoubleDash,
        RawRangeFamily::Garbage,
    ];

    /// What the strict parser must do with values of this family.
    pub fn expectation(self) -> ParseExpectation {
        use RawRangeFamily::*;
        match self {
            Canonical | SuffixTail | HugeLast | WhitespaceList | DescendingSet | ManySmall => {
                ParseExpectation::Parses
            }
            _ => ParseExpectation::Rejected,
        }
    }
}

/// The grammar oracle's verdict a [`RawRangeFamily`] is generated under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseExpectation {
    /// [`RangeHeader::parse`] must accept the value.
    Parses,
    /// [`RangeHeader::parse`] must reject the value (and the pipeline
    /// must then ignore the header per RFC 7233 §3.1).
    Rejected,
}

/// A raw `Range` header value plus the family it was drawn from and the
/// parse outcome the grammar demands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRangeCase {
    /// The generation family.
    pub family: RawRangeFamily,
    /// What the parser must do with it.
    pub expectation: ParseExpectation,
    /// The raw header value.
    pub value: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generated_cases_reparse() {
        // The roundtrip check lives inside try_case_of_kind now: a
        // generator/parser disagreement is an Err (a recordable fuzzer
        // finding), never a panic.
        let mut gen = RangeRequestGenerator::new(42, 10 * 1024 * 1024);
        for _ in 0..500 {
            let case = gen
                .try_next_case()
                .expect("generator and parser agree on every seed-42 case");
            assert_eq!(
                RangeHeader::parse(&case.header.to_string()).as_ref(),
                Ok(&case.header)
            );
        }
    }

    #[test]
    fn fallible_and_panicking_paths_agree() {
        let mut a = RangeRequestGenerator::new(11, 1 << 20);
        let mut b = RangeRequestGenerator::new(11, 1 << 20);
        for kind in RangeCaseKind::ALL {
            assert_eq!(a.case_of_kind(kind), b.try_case_of_kind(kind).unwrap());
        }
    }

    #[test]
    fn raw_families_meet_their_parse_expectation() {
        let mut gen = RangeRequestGenerator::new(42, 1 << 20);
        for _ in 0..500 {
            let case = gen.next_raw_case();
            let parsed = RangeHeader::parse(&case.value);
            match case.expectation {
                ParseExpectation::Parses => {
                    let header = parsed.unwrap_or_else(|e| {
                        panic!("{:?} value {:?} must parse: {e}", case.family, case.value)
                    });
                    // Canonical display is parse-stable.
                    assert_eq!(RangeHeader::parse(&header.to_string()), Ok(header));
                }
                ParseExpectation::Rejected => assert!(
                    parsed.is_err(),
                    "{:?} value {:?} must be rejected, parsed as {:?}",
                    case.family,
                    case.value,
                    parsed
                ),
            }
        }
    }

    #[test]
    fn raw_cases_deterministic_for_same_seed() {
        let mut a = RangeRequestGenerator::new(5, 4096);
        let mut b = RangeRequestGenerator::new(5, 4096);
        for _ in 0..200 {
            assert_eq!(a.next_raw_case(), b.next_raw_case());
        }
    }

    #[test]
    fn every_raw_family_is_reachable() {
        let mut gen = RangeRequestGenerator::new(1, 4096);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(gen.next_raw_case().family);
        }
        assert_eq!(seen.len(), RawRangeFamily::ALL.len());
    }

    #[test]
    fn all_generated_cases_satisfiable() {
        let size = 4096;
        let mut gen = RangeRequestGenerator::new(7, size);
        for case in gen.cases(500) {
            assert!(
                !case.header.resolve(size).is_empty(),
                "case {} should be satisfiable for {size}",
                case.header
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = RangeRequestGenerator::new(1, 1024).cases(50);
        let b: Vec<_> = RangeRequestGenerator::new(1, 1024).cases(50);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = RangeRequestGenerator::new(1, 1024).cases(50);
        let b: Vec<_> = RangeRequestGenerator::new(2, 1024).cases(50);
        assert_ne!(a, b);
    }

    #[test]
    fn probe_set_covers_every_kind_once() {
        let mut gen = RangeRequestGenerator::new(3, 1 << 20);
        let probes = gen.probe_set();
        assert_eq!(probes.len(), RangeCaseKind::ALL.len());
        for (case, kind) in probes.iter().zip(RangeCaseKind::ALL) {
            assert_eq!(case.kind, kind);
        }
    }

    #[test]
    fn overlapping_cases_really_overlap() {
        let mut gen = RangeRequestGenerator::new(5, 1 << 16);
        let case = gen.case_of_kind(RangeCaseKind::MultiOverlapping);
        assert!(case.header.overlapping_pairs(1 << 16) > 0);
    }

    #[test]
    fn tiny_file_does_not_panic() {
        let mut gen = RangeRequestGenerator::new(9, 1);
        for case in gen.cases(100) {
            assert!(!case.header.resolve(1).is_empty() || case.header.is_multi());
        }
    }
}
