//! ABNF-driven random generation of valid range requests.
//!
//! The paper's first experiment feeds each CDN "a large number of valid
//! range requests automatically generated based on the ABNF rules described
//! in the RFCs" (§V-A) and differentially compares what the origin receives.
//! [`RangeRequestGenerator`] is that workload generator: every emitted
//! header is valid per RFC 7233, and the case mix deliberately covers the
//! shapes the vulnerability tables distinguish (small first-last, suffix,
//! open-ended, multi-range, overlapping multi-range).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{ByteRangeSpec, RangeHeader};

/// The structural family a generated case belongs to, so the scanner can
/// attribute observed behaviour to a range format (Table I column 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeCaseKind {
    /// `bytes=first-last` with a tiny span.
    SmallFromTo,
    /// `bytes=first-last` with an arbitrary span.
    FromTo,
    /// `bytes=first-` open-ended.
    OpenEnded,
    /// `bytes=-suffix`.
    Suffix,
    /// Multiple disjoint ranges.
    MultiDisjoint,
    /// Multiple overlapping ranges (the OBR shape).
    MultiOverlapping,
}

impl RangeCaseKind {
    /// All kinds, in the order the scanner probes them.
    pub const ALL: [RangeCaseKind; 6] = [
        RangeCaseKind::SmallFromTo,
        RangeCaseKind::FromTo,
        RangeCaseKind::OpenEnded,
        RangeCaseKind::Suffix,
        RangeCaseKind::MultiDisjoint,
        RangeCaseKind::MultiOverlapping,
    ];
}

/// A generated range-request case: the header plus its family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRequestCase {
    /// Which structural family the case exercises.
    pub kind: RangeCaseKind,
    /// The generated header.
    pub header: RangeHeader,
}

/// Seeded generator of valid `Range` headers.
///
/// # Example
///
/// ```
/// use rangeamp_http::range::RangeRequestGenerator;
///
/// let mut gen = RangeRequestGenerator::new(7, 1024 * 1024);
/// let case = gen.next_case();
/// // Every generated header re-parses under the strict ABNF parser.
/// let reparsed = rangeamp_http::range::RangeHeader::parse(&case.header.to_string());
/// assert!(reparsed.is_ok());
/// ```
#[derive(Debug)]
pub struct RangeRequestGenerator {
    rng: StdRng,
    file_size: u64,
}

impl RangeRequestGenerator {
    /// Creates a generator for a representation of `file_size` bytes.
    pub fn new(seed: u64, file_size: u64) -> RangeRequestGenerator {
        RangeRequestGenerator {
            rng: StdRng::seed_from_u64(seed),
            file_size: file_size.max(1),
        }
    }

    /// Generates the next case, cycling uniformly over the kinds.
    pub fn next_case(&mut self) -> RangeRequestCase {
        let kind = RangeCaseKind::ALL[self.rng.gen_range(0..RangeCaseKind::ALL.len())];
        self.case_of_kind(kind)
    }

    /// Generates a case of a specific kind.
    pub fn case_of_kind(&mut self, kind: RangeCaseKind) -> RangeRequestCase {
        let header = match kind {
            RangeCaseKind::SmallFromTo => {
                let first = self.rng.gen_range(0..self.file_size);
                let span = self.rng.gen_range(0..4.min(self.file_size - first));
                RangeHeader::from_to(first, first + span)
            }
            RangeCaseKind::FromTo => {
                let first = self.rng.gen_range(0..self.file_size);
                let last = self.rng.gen_range(first..self.file_size);
                RangeHeader::from_to(first, last)
            }
            RangeCaseKind::OpenEnded => {
                RangeHeader::from_first(self.rng.gen_range(0..self.file_size))
            }
            RangeCaseKind::Suffix => RangeHeader::suffix(self.rng.gen_range(1..=self.file_size)),
            RangeCaseKind::MultiDisjoint => {
                let count = self.rng.gen_range(2..=5u64);
                let stride = (self.file_size / (count * 2)).max(2);
                let specs = (0..count)
                    .map(|i| {
                        let first = i * 2 * stride;
                        ByteRangeSpec::FromTo {
                            first,
                            last: first + stride - 1,
                        }
                    })
                    .collect();
                RangeHeader::new(specs).expect("disjoint specs are valid")
            }
            RangeCaseKind::MultiOverlapping => {
                let count = self.rng.gen_range(3..=16usize);
                RangeHeader::overlapping(count)
            }
        };
        RangeRequestCase { kind, header }
    }

    /// Generates `count` cases.
    pub fn cases(&mut self, count: usize) -> Vec<RangeRequestCase> {
        (0..count).map(|_| self.next_case()).collect()
    }

    /// Generates one case per kind, deterministically ordered — the
    /// scanner's minimal probe set.
    pub fn probe_set(&mut self) -> Vec<RangeRequestCase> {
        RangeCaseKind::ALL
            .iter()
            .map(|&kind| self.case_of_kind(kind))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generated_cases_reparse() {
        let mut gen = RangeRequestGenerator::new(42, 10 * 1024 * 1024);
        for case in gen.cases(500) {
            let text = case.header.to_string();
            let reparsed = RangeHeader::parse(&text)
                .unwrap_or_else(|e| panic!("generated invalid header {text:?}: {e}"));
            assert_eq!(reparsed, case.header);
        }
    }

    #[test]
    fn all_generated_cases_satisfiable() {
        let size = 4096;
        let mut gen = RangeRequestGenerator::new(7, size);
        for case in gen.cases(500) {
            assert!(
                !case.header.resolve(size).is_empty(),
                "case {} should be satisfiable for {size}",
                case.header
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = RangeRequestGenerator::new(1, 1024).cases(50);
        let b: Vec<_> = RangeRequestGenerator::new(1, 1024).cases(50);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = RangeRequestGenerator::new(1, 1024).cases(50);
        let b: Vec<_> = RangeRequestGenerator::new(2, 1024).cases(50);
        assert_ne!(a, b);
    }

    #[test]
    fn probe_set_covers_every_kind_once() {
        let mut gen = RangeRequestGenerator::new(3, 1 << 20);
        let probes = gen.probe_set();
        assert_eq!(probes.len(), RangeCaseKind::ALL.len());
        for (case, kind) in probes.iter().zip(RangeCaseKind::ALL) {
            assert_eq!(case.kind, kind);
        }
    }

    #[test]
    fn overlapping_cases_really_overlap() {
        let mut gen = RangeRequestGenerator::new(5, 1 << 16);
        let case = gen.case_of_kind(RangeCaseKind::MultiOverlapping);
        assert!(case.header.overlapping_pairs(1 << 16) > 0);
    }

    #[test]
    fn tiny_file_does_not_panic() {
        let mut gen = RangeRequestGenerator::new(9, 1);
        for case in gen.cases(100) {
            assert!(!case.header.resolve(1).is_empty() || case.header.is_multi());
        }
    }
}
