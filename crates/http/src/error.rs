use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced while building, parsing, or interpreting HTTP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A header name contained a character outside the RFC 7230 `token`
    /// alphabet.
    InvalidHeaderName(String),
    /// A header value contained a control character other than HTAB.
    InvalidHeaderValue(String),
    /// The request line or status line could not be parsed.
    InvalidStartLine(String),
    /// The message ended before the framing said it should.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A `Range` header did not match the RFC 7233 ABNF.
    InvalidRange(String),
    /// A `Content-Range` header did not match the RFC 7233 ABNF.
    InvalidContentRange(String),
    /// A multipart/byteranges payload was malformed.
    InvalidMultipart(String),
    /// `Content-Length` disagreed with the actual payload, or was not a
    /// number.
    InvalidContentLength(String),
    /// An unsupported HTTP version was encountered.
    UnsupportedVersion(String),
    /// A requested range was not satisfiable for the representation
    /// (maps to a 416 response).
    Unsatisfiable {
        /// Complete length of the selected representation.
        complete_length: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidHeaderName(name) => write!(f, "invalid header name: {name:?}"),
            Error::InvalidHeaderValue(value) => write!(f, "invalid header value: {value:?}"),
            Error::InvalidStartLine(line) => write!(f, "invalid start line: {line:?}"),
            Error::UnexpectedEof { context } => {
                write!(f, "unexpected end of message while reading {context}")
            }
            Error::InvalidRange(raw) => write!(f, "invalid Range header: {raw:?}"),
            Error::InvalidContentRange(raw) => {
                write!(f, "invalid Content-Range header: {raw:?}")
            }
            Error::InvalidMultipart(reason) => {
                write!(f, "invalid multipart/byteranges payload: {reason}")
            }
            Error::InvalidContentLength(raw) => write!(f, "invalid Content-Length: {raw:?}"),
            Error::UnsupportedVersion(raw) => write!(f, "unsupported HTTP version: {raw:?}"),
            Error::Unsatisfiable { complete_length } => write!(
                f,
                "range not satisfiable for representation of {complete_length} bytes"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = Error::InvalidRange("bytes=".to_string());
        let msg = err.to_string();
        assert!(msg.starts_with("invalid Range header"));
        assert!(msg.contains("bytes="));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn unsatisfiable_reports_length() {
        let err = Error::Unsatisfiable {
            complete_length: 1000,
        };
        assert!(err.to_string().contains("1000"));
    }
}
