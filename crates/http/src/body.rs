use bytes::Bytes;
use std::fmt;

/// An HTTP message payload.
///
/// Bodies are cheaply cloneable ([`Bytes`]) because the testbed moves the
/// same multi-megabyte payload across several simulated connections while
/// metering each hop.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Body(Bytes);

impl Body {
    /// An empty body.
    pub fn empty() -> Body {
        Body(Bytes::new())
    }

    /// Wraps existing bytes without copying.
    pub fn from_bytes(bytes: Bytes) -> Body {
        Body(bytes)
    }

    /// Body length in bytes.
    pub fn len(&self) -> u64 {
        self.0.len() as u64
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// View of the payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Zero-copy sub-slice of the payload (used when a CDN slices a cached
    /// full representation down to the client's requested range).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: u64, end_exclusive: u64) -> Body {
        Body(self.0.slice(start as usize..end_exclusive as usize))
    }

    /// Consumes the body, returning the underlying bytes.
    pub fn into_bytes(self) -> Bytes {
        self.0
    }
}

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Body({} bytes)", self.0.len())
    }
}

impl From<Vec<u8>> for Body {
    fn from(bytes: Vec<u8>) -> Body {
        Body(Bytes::from(bytes))
    }
}

impl From<&'static str> for Body {
    fn from(text: &'static str) -> Body {
        Body(Bytes::from_static(text.as_bytes()))
    }
}

impl From<Bytes> for Body {
    fn from(bytes: Bytes) -> Body {
        Body(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_view() {
        let body = Body::from(vec![0u8, 1, 2, 3, 4, 5]);
        let part = body.slice(2, 5);
        assert_eq!(part.as_bytes(), &[2, 3, 4]);
        assert_eq!(part.len(), 3);
    }

    #[test]
    fn empty_body() {
        let body = Body::empty();
        assert!(body.is_empty());
        assert_eq!(body.len(), 0);
    }

    #[test]
    fn debug_shows_length_not_content() {
        let body = Body::from(vec![0u8; 1024]);
        assert_eq!(format!("{body:?}"), "Body(1024 bytes)");
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Body::from(vec![0u8; 4]).slice(2, 10);
    }
}
