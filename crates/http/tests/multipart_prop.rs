//! Property tests for `multipart/byteranges` assembly: encode→decode must
//! preserve part count, part order, `Content-Range` bounds, and part
//! bodies — for empty, single-part, and wide (64-part, OBR-shaped)
//! payloads alike.

use proptest::prelude::*;

use rangeamp_http::multipart::{self, MultipartBuilder, DEFAULT_BOUNDARY};
use rangeamp_http::range::{ContentRange, ResolvedRange};
use rangeamp_http::Body;

/// Deterministic representation bytes, so part bodies are checkable
/// slices rather than opaque blobs.
fn representation(len: u64) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + 7) as u8).collect()
}

/// Builds the payload for `ranges` over a `complete_length`-byte
/// representation, then decodes it and checks every preserved property.
fn roundtrip(ranges: &[ResolvedRange], complete_length: u64) {
    let data = representation(complete_length);
    let mut builder = MultipartBuilder::new("application/octet-stream", complete_length);
    for r in ranges {
        let body = Body::from(data[r.first as usize..=r.last as usize].to_vec());
        builder = builder.part(*r, body);
    }
    assert_eq!(builder.part_count(), ranges.len());
    let payload = builder.build();
    let content_type = builder.content_type_header();
    let boundary = content_type
        .strip_prefix("multipart/byteranges; boundary=")
        .expect("canonical content type");
    assert_eq!(boundary, DEFAULT_BOUNDARY);

    let parts = multipart::parse(payload.as_bytes(), boundary).expect("payload parses back");
    assert_eq!(parts.len(), ranges.len(), "part count preserved");
    for (part, range) in parts.iter().zip(ranges) {
        assert_eq!(part.content_type, "application/octet-stream");
        assert_eq!(
            part.content_range,
            ContentRange::Satisfied {
                range: *range,
                complete_length
            },
            "Content-Range bounds preserved"
        );
        assert_eq!(
            part.body.as_bytes(),
            &data[range.first as usize..=range.last as usize],
            "part body preserved"
        );
    }
}

#[test]
fn zero_part_payload_roundtrips() {
    // RFC 2046 requires at least the closing boundary even with no parts;
    // the decoder must yield an empty part list, not an error.
    roundtrip(&[], 1024);
}

#[test]
fn sixty_four_identical_parts_roundtrip() {
    // The OBR shape: many copies of the same small range. 64 parts is
    // the Azure/Apache per-request ceiling exercised elsewhere.
    let ranges = vec![ResolvedRange { first: 0, last: 9 }; 64];
    roundtrip(&ranges, 1024);
}

proptest! {
    #[test]
    fn arbitrary_part_sets_roundtrip(
        complete_length in 1u64..4096,
        raw in proptest::collection::vec((0u64..4096, 1u64..64), 0..64),
    ) {
        // Clamp the raw (start, len) pairs into valid ranges; duplicates
        // and overlaps are intentionally allowed (the builder is
        // policy-free by design).
        let ranges: Vec<ResolvedRange> = raw
            .iter()
            .map(|&(start, len)| {
                let first = start % complete_length;
                let last = (first + len - 1).min(complete_length - 1);
                ResolvedRange { first, last }
            })
            .collect();
        roundtrip(&ranges, complete_length);
    }

    #[test]
    fn single_part_roundtrips_at_any_offset(
        complete_length in 1u64..65536,
        start in 0u64..65536,
    ) {
        let first = start % complete_length;
        let last = complete_length - 1;
        roundtrip(&[ResolvedRange { first, last }], complete_length);
    }
}
