//! Property tests for the HTTP grammar layers: the parsers must be total
//! (never panic), strict (reject what they can't re-emit), and
//! round-trip-stable.

use proptest::prelude::*;

use rangeamp_http::range::{ByteRangeSpec, ContentRange, RangeHeader};
use rangeamp_http::{wire, HeaderMap, HeaderName, HeaderValue, Request, Uri};

proptest! {
    #[test]
    fn range_parser_is_total(input in ".{0,128}") {
        // Arbitrary input never panics; success implies display/parse
        // round trip.
        if let Ok(header) = RangeHeader::parse(&input) {
            let echoed = header.to_string();
            let reparsed = RangeHeader::parse(&echoed).expect("canonical form reparses");
            prop_assert_eq!(reparsed, header);
        }
    }

    #[test]
    fn range_parser_is_total_on_byteish_input(input in "bytes=[-,0-9 ]{0,64}") {
        let _ = RangeHeader::parse(&input);
    }

    #[test]
    fn content_range_parser_is_total(input in ".{0,64}") {
        if let Ok(cr) = ContentRange::parse(&input) {
            let echoed = cr.to_string();
            prop_assert_eq!(ContentRange::parse(&echoed).expect("reparses"), cr);
        }
    }

    #[test]
    fn header_name_validation_matches_token_alphabet(input in ".{0,32}") {
        let ok = !input.is_empty()
            && input.bytes().all(|b| {
                b.is_ascii_alphanumeric()
                    || matches!(b, b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*'
                        | b'+' | b'-' | b'.' | b'^' | b'_' | b'`' | b'|' | b'~')
            });
        prop_assert_eq!(HeaderName::new(input.clone()).is_ok(), ok, "{:?}", input);
    }

    #[test]
    fn header_values_reject_crlf_injection(prefix in "[a-z]{0,8}", suffix in "[a-z]{0,8}") {
        for poison in ["\r", "\n", "\r\n", "\0"] {
            let value = format!("{prefix}{poison}{suffix}");
            prop_assert!(HeaderValue::new(value).is_err());
        }
    }

    #[test]
    fn uri_query_round_trip(path in "[a-z0-9/._-]{1,24}", query in proptest::option::of("[a-z0-9=&]{1,24}")) {
        let text = match &query {
            Some(q) => format!("/{path}?{q}"),
            None => format!("/{path}"),
        };
        let uri = Uri::parse(&text).expect("valid uri");
        prop_assert_eq!(uri.to_string(), text);
    }

    #[test]
    fn request_decoder_is_total(input in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode_request(&input);
        let _ = wire::decode_response(&input);
    }

    #[test]
    fn wire_len_is_exact_for_arbitrary_headers(
        names in proptest::collection::vec("[A-Za-z][A-Za-z0-9-]{0,12}", 0..8),
        value in "[a-zA-Z0-9 =,;/]{0,32}",
    ) {
        let mut headers = HeaderMap::new();
        for name in &names {
            headers.append(name, value.clone());
        }
        let mut req = Request::get("/x").build();
        for (n, v) in headers.iter() {
            req.headers_mut().append(n.as_str(), v.as_str().to_string());
        }
        prop_assert_eq!(req.to_wire_bytes().len() as u64, req.wire_len());
    }

    #[test]
    fn spec_resolution_never_panics(
        first in any::<u64>(),
        last in any::<u64>(),
        len in any::<u64>(),
    ) {
        let _ = ByteRangeSpec::FromTo { first, last: last.max(first) }.resolve(len);
        let _ = ByteRangeSpec::From { first }.resolve(len);
        let _ = ByteRangeSpec::Suffix { len: last }.resolve(len);
    }
}
