//! Integration tests for the deterministic telemetry layer: golden
//! byte-for-byte determinism of the Chrome-trace and metrics exports,
//! span parent/child nesting across the client → edge → origin call
//! tree, observation-does-not-perturb guarantees, and the
//! metrics-match-[`ResilienceStats`] invariant.

use rangeamp::attack::exploited_range_case;
use rangeamp::chaos::{run_obr_chaos_with, run_sbr_chaos_with, ChaosConfig};
use rangeamp::net::SpanKind;
use rangeamp::{Telemetry, Testbed, TARGET_HOST, TARGET_PATH};
use rangeamp_cdn::Vendor;
use rangeamp_http::Request;

const MB: u64 = 1024 * 1024;

/// Runs one SBR chaos vendor plus one OBR cascade into a fresh
/// telemetry bundle and returns both export artifacts.
fn seeded_campaign_exports(seed: u64) -> (String, String) {
    let telemetry = Telemetry::seeded(seed);
    let config = ChaosConfig {
        seed,
        rounds: 6,
        ..ChaosConfig::default()
    };
    run_sbr_chaos_with(Vendor::Akamai, &config, Some(&telemetry));
    run_obr_chaos_with(
        Vendor::CloudFront,
        Vendor::Fastly,
        &config,
        Some(&telemetry),
    );
    (
        telemetry.tracer().chrome_trace_json(),
        telemetry.metrics().snapshot().to_jsonl(),
    )
}

#[test]
fn golden_exports_are_byte_identical_across_runs() {
    let (trace_a, metrics_a) = seeded_campaign_exports(7);
    let (trace_b, metrics_b) = seeded_campaign_exports(7);
    assert_eq!(trace_a, trace_b, "same seed must give an identical trace");
    assert_eq!(
        metrics_a, metrics_b,
        "same seed must give identical metrics"
    );
    assert!(trace_a.starts_with("{\"displayTimeUnit\":\"ms\""));
    assert!(trace_a.contains("\"traceEvents\":["));

    let (trace_c, _) = seeded_campaign_exports(8);
    assert_ne!(trace_a, trace_c, "a different seed must change trace ids");
}

#[test]
fn sbr_request_spans_nest_client_edge_origin() {
    let telemetry = Telemetry::seeded(42);
    let bed = Testbed::builder()
        .vendor(Vendor::Akamai)
        .resource(TARGET_PATH, MB)
        .telemetry(telemetry.clone())
        .build();
    let case = exploited_range_case(Vendor::Akamai, MB);
    let req = Request::get(TARGET_PATH)
        .header("Host", TARGET_HOST)
        .header("Range", case.ranges[0].to_string())
        .build();
    let resp = bed.request(&req);
    assert_eq!(resp.status().as_u16(), 206);

    let spans = telemetry.tracer().finished_spans();
    let root = spans
        .iter()
        .find(|s| s.kind == SpanKind::Request)
        .expect("root client-request span");
    let edge = spans
        .iter()
        .find(|s| s.kind == SpanKind::Edge)
        .expect("edge-handle span");
    let hop = spans
        .iter()
        .find(|s| s.kind == SpanKind::Hop)
        .expect("upstream-fetch hop span");
    let origin = spans
        .iter()
        .find(|s| s.kind == SpanKind::Origin)
        .expect("origin-handle span");

    // Parent/child chain: client-request → edge-handle → upstream-fetch
    // → origin-handle, all on one trace.
    assert_eq!(root.parent, None);
    assert_eq!(edge.parent, Some(root.id));
    assert_eq!(hop.parent, Some(edge.id));
    assert_eq!(origin.parent, Some(hop.id));
    for span in [root, edge, hop, origin] {
        assert_eq!(span.trace, root.trace, "one request, one trace id");
    }

    // Byte accounting reproduces the measured amplification factor.
    let client_bytes = bed.client_segment().stats().response_bytes;
    let origin_bytes = bed.origin_segment().stats().response_bytes;
    assert_eq!(root.bytes_out, client_bytes);
    assert_eq!(hop.bytes_in, origin_bytes);
    assert!(origin_bytes / client_bytes.max(1) > 1000, "3 orders SBR");

    // The cache lookup (a miss, cold cache) sits under the edge span.
    let lookup = spans
        .iter()
        .find(|s| s.kind == SpanKind::CacheLookup)
        .expect("cache-lookup span");
    assert_eq!(lookup.parent, Some(edge.id));
    assert_eq!(lookup.attr("result"), Some("miss"));
}

#[test]
fn tracing_does_not_perturb_measured_traffic() {
    let run = |telemetry: Option<Telemetry>| {
        let mut builder = Testbed::builder()
            .vendor(Vendor::CloudFront)
            .resource(TARGET_PATH, MB);
        if let Some(tel) = telemetry {
            builder = builder.telemetry(tel);
        }
        let bed = builder.build();
        let case = exploited_range_case(Vendor::CloudFront, MB);
        let req = Request::get(TARGET_PATH)
            .header("Host", TARGET_HOST)
            .header("Range", case.ranges[0].to_string())
            .build();
        bed.request(&req);
        (bed.client_segment().stats(), bed.origin_segment().stats())
    };
    let untraced = run(None);
    let traced = run(Some(Telemetry::seeded(1)));
    assert_eq!(untraced, traced, "observation must not change the bytes");
}

#[test]
fn chaos_metrics_match_resilience_stats() {
    let telemetry = Telemetry::seeded(11);
    let config = ChaosConfig {
        seed: 11,
        rounds: 12,
        ..ChaosConfig::default()
    };
    let report = run_sbr_chaos_with(Vendor::Akamai, &config, Some(&telemetry));

    let metrics = telemetry.metrics();
    let labels = [("vendor", "Akamai")];
    assert_eq!(
        metrics.counter_value("chaos_attempts_total", &labels),
        report.resilience.attempts
    );
    assert_eq!(
        metrics.counter_value("chaos_retries_total", &labels),
        report.resilience.retries
    );
    assert_eq!(
        metrics.counter_value("chaos_stale_serves_total", &labels),
        report.resilience.stale_serves
    );
    assert_eq!(
        metrics.counter_value("cache_hits_total", &labels),
        report.cache_hits
    );
    assert_eq!(
        metrics.counter_value("cache_misses_total", &labels),
        report.cache_misses
    );
    let rpr = metrics
        .gauge_value("retries_per_request", &labels)
        .expect("retries_per_request gauge");
    assert!((rpr - report.retries_per_request()).abs() < 1e-9);
    let chr = metrics
        .gauge_value("cache_hit_ratio", &labels)
        .expect("cache_hit_ratio gauge");
    assert!((chr - report.cache_hit_ratio()).abs() < 1e-9);

    // The live per-attempt counter agrees with the end-of-run stats.
    assert_eq!(
        metrics.counter_value("upstream_attempts_total", &[("segment", "cdn-origin")]),
        report.resilience.attempts
    );
}

#[test]
fn obr_cascade_trace_covers_both_edges() {
    let telemetry = Telemetry::seeded(3);
    let config = ChaosConfig {
        seed: 3,
        rounds: 2,
        ..ChaosConfig::default()
    };
    run_obr_chaos_with(
        Vendor::CloudFront,
        Vendor::Fastly,
        &config,
        Some(&telemetry),
    );
    let spans = telemetry.tracer().finished_spans();
    let edge_names: Vec<&str> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Edge)
        .filter_map(|s| s.attr("vendor"))
        .collect();
    assert!(edge_names.contains(&"CloudFront"), "FCDN edge traced");
    assert!(edge_names.contains(&"Fastly"), "BCDN edge traced");
    assert!(
        spans.iter().any(|s| s.kind == SpanKind::Origin),
        "origin traced at the end of the cascade"
    );
}
