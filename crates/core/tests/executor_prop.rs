//! Property tests for the deterministic parallel executor (DESIGN.md
//! §8): the shard merge is a pure function of the `(unit index, result)`
//! pairs — shard arrival order is irrelevant — and a sharded campaign's
//! report *and* telemetry are byte-identical at any thread count.

use proptest::prelude::*;

use rangeamp::chaos::{run_sbr_campaign_exec, ChaosConfig};
use rangeamp::executor::{merge_shard_results, splitmix64, unit_seed, Executor};
use rangeamp::Telemetry;

/// Deterministic Fisher–Yates driven by splitmix64 (the tests can't use
/// ambient randomness any more than the executor can).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        state = splitmix64(state.wrapping_add(rangeamp::executor::SEED_GAMMA));
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
}

/// Deals `values` into `shards` lists the way the executor does: unit
/// `i` goes to shard `i % shards`, keeping ascending index order within
/// each shard.
fn round_robin(values: &[u64], shards: usize) -> Vec<Vec<(usize, u64)>> {
    let mut out = vec![Vec::new(); shards];
    for (index, value) in values.iter().enumerate() {
        out[index % shards].push((index, *value));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shuffling the order shard outputs arrive in (the real-world
    /// nondeterminism the merge exists to erase) never changes the
    /// merged result.
    #[test]
    fn merge_is_independent_of_shard_arrival_order(
        values in proptest::collection::vec(any::<u64>(), 0..64),
        shards in 1usize..9,
        shuffle_seed in any::<u64>(),
    ) {
        let reference = merge_shard_results(round_robin(&values, shards));
        prop_assert_eq!(&reference, &values, "merge restores input order");

        let mut shuffled = round_robin(&values, shards);
        shuffle(&mut shuffled, shuffle_seed);
        prop_assert_eq!(merge_shard_results(shuffled), reference);
    }

    /// The merge also tolerates units arriving out of order *within* a
    /// shard (a shard is free to process its units in any order as long
    /// as it tags each result with the unit index).
    #[test]
    fn merge_is_independent_of_intra_shard_order(
        values in proptest::collection::vec(any::<u64>(), 0..64),
        shards in 1usize..9,
        shuffle_seed in any::<u64>(),
    ) {
        let mut scrambled = round_robin(&values, shards);
        for (lane, shard) in scrambled.iter_mut().enumerate() {
            shuffle(shard, shuffle_seed ^ lane as u64);
        }
        prop_assert_eq!(merge_shard_results(scrambled), values);
    }

    /// Per-unit seeds depend only on the campaign seed and the unit
    /// index — never on how units land on shards — so re-sharding can't
    /// change any unit's randomness.
    #[test]
    fn unit_seeds_ignore_shard_layout(
        seed in any::<u64>(),
        a in 0usize..4096,
        b in 0usize..4096,
    ) {
        prop_assume!(a != b);
        prop_assert_eq!(unit_seed(seed, a), unit_seed(seed, a));
        prop_assert!(unit_seed(seed, a) != unit_seed(seed, b),
            "distinct units draw distinct seed streams");
    }

    /// `Executor::map` at any thread count equals the sequential map.
    #[test]
    fn map_matches_sequential_at_any_thread_count(
        values in proptest::collection::vec(any::<u64>(), 0..48),
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        let work = |ctx: &rangeamp::executor::UnitCtx, value: u64| {
            (ctx.index, value.wrapping_mul(ctx.seed | 1))
        };
        let sequential = Executor::sequential().map(seed, values.clone(), work);
        let parallel = Executor::new(threads).map(seed, values, work);
        prop_assert_eq!(parallel, sequential);
    }
}

proptest! {
    // Full campaigns are heavier; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End to end: an SBR chaos campaign's reports, metrics snapshot and
    /// Chrome trace are all byte-identical whether it runs on one shard
    /// or many — for arbitrary campaign seeds, not just the goldens.
    #[test]
    fn campaign_report_and_telemetry_are_thread_count_invariant(
        seed in any::<u64>(),
        threads in 2usize..9,
    ) {
        let config = ChaosConfig {
            seed,
            rounds: 2,
            ..ChaosConfig::default()
        };

        let digest = |executor: &Executor| {
            let telemetry = Telemetry::seeded(config.seed);
            let reports = run_sbr_campaign_exec(&config, Some(&telemetry), executor);
            (
                format!("{reports:?}"),
                telemetry.metrics().snapshot().render(),
                telemetry.tracer().chrome_trace_json(),
            )
        };

        let (reports_1, metrics_1, trace_1) = digest(&Executor::sequential());
        let (reports_n, metrics_n, trace_n) = digest(&Executor::new(threads));
        prop_assert_eq!(reports_1, reports_n);
        prop_assert_eq!(metrics_1, metrics_n);
        prop_assert_eq!(trace_1, trace_n);
    }
}
