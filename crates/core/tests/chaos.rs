//! Integration tests for the edge-resilience layer: serve-stale,
//! circuit-breaker scheduling on the virtual clock, testbed-level chaos
//! determinism, and the no-panic guarantee for malformed upstream
//! responses.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use rangeamp::{Testbed, TARGET_HOST, TARGET_PATH};
use rangeamp_cdn::{
    BreakerConfig, Cache, EdgeNode, Resilience, RetryPolicy, UpstreamError, UpstreamService, Vendor,
};
use rangeamp_http::{Request, Response, StatusCode};
use rangeamp_net::{FaultPlan, Segment, SegmentName, SharedClock};

/// Serves a fixed body until `failing` is flipped, then times out.
#[derive(Debug)]
struct FlakySwitch {
    body: Vec<u8>,
    failing: AtomicBool,
}

impl FlakySwitch {
    fn new(size: usize) -> FlakySwitch {
        FlakySwitch {
            body: vec![0xAB; size],
            failing: AtomicBool::new(false),
        }
    }

    fn fail_from_now_on(&self) {
        self.failing.store(true, Ordering::SeqCst);
    }
}

impl UpstreamService for FlakySwitch {
    fn handle(&self, _req: &Request) -> Result<Response, UpstreamError> {
        if self.failing.load(Ordering::SeqCst) {
            Err(UpstreamError::Timeout)
        } else {
            Ok(Response::builder(StatusCode::OK)
                .sized_body(self.body.clone())
                .build())
        }
    }

    fn resource_size(&self, _path: &str) -> Option<u64> {
        Some(self.body.len() as u64)
    }
}

fn plain_get(path: &str) -> Request {
    Request::get(path).header("Host", TARGET_HOST).build()
}

#[test]
fn serve_stale_covers_origin_outage_after_ttl_expiry() {
    let upstream = Arc::new(FlakySwitch::new(64 * 1024));
    let clock = SharedClock::new();
    let edge = EdgeNode::new(
        Vendor::Cloudflare.profile(),
        upstream.clone(),
        Segment::new(SegmentName::CdnOrigin),
    )
    .with_resilience(Resilience::new(
        RetryPolicy::none(),
        BreakerConfig::default(),
        clock.clone(),
    ))
    .with_cache(Cache::new().with_ttl(5_000));

    // Populate the cache while the origin is healthy.
    let first = edge.handle(&plain_get(TARGET_PATH));
    assert_eq!(first.status(), StatusCode::OK);
    assert!(first.headers().get("X-Cache").unwrap().starts_with("MISS"));

    // Within the TTL the entry is fresh: no upstream contact needed even
    // though the origin is already down.
    upstream.fail_from_now_on();
    clock.advance_millis(1_000);
    let fresh = edge.handle(&plain_get(TARGET_PATH));
    assert_eq!(fresh.status(), StatusCode::OK);
    assert!(fresh.headers().get("X-Cache").unwrap().starts_with("HIT"));

    // Past the TTL the entry has expired; the refetch fails, and the
    // edge falls back to the stale copy instead of surfacing the 5xx.
    clock.advance_millis(10_000);
    let stale = edge.handle(&plain_get(TARGET_PATH));
    assert_eq!(stale.status(), StatusCode::OK);
    assert!(stale.headers().get("X-Cache").unwrap().starts_with("STALE"));
    assert_eq!(
        stale.headers().get("Warning"),
        Some("110 - \"Response is Stale\"")
    );
    assert_eq!(edge.resilience().stats().stale_serves, 1);
}

#[test]
fn breaker_opens_and_half_opens_on_the_virtual_clock() {
    let upstream = Arc::new(FlakySwitch::new(1024));
    upstream.fail_from_now_on();
    let clock = SharedClock::new();
    let breaker = BreakerConfig {
        failure_threshold: 3,
        open_ms: 30_000,
        half_open_probes: 1,
    };
    let edge = EdgeNode::new(
        Vendor::Cloudflare.profile(),
        upstream.clone(),
        Segment::new(SegmentName::CdnOrigin),
    )
    .with_resilience(Resilience::new(RetryPolicy::none(), breaker, clock.clone()));

    // Three consecutive failures (cache-busted so every request is a
    // miss) trip the breaker open.
    for i in 0..3 {
        let resp = edge.handle(&plain_get(&format!("/miss-{i}.bin")));
        assert!(resp.status().as_u16() >= 500);
    }
    assert_eq!(edge.resilience().breaker_state(), "open");
    assert_eq!(edge.resilience().breaker_opens(), 1);

    // While open, requests fail fast without touching the upstream.
    let short_circuited = edge.handle(&plain_get("/miss-open.bin"));
    assert!(short_circuited.status().as_u16() >= 500);
    assert_eq!(edge.resilience().stats().breaker_short_circuits, 1);

    // Still open just before the window elapses...
    clock.advance_millis(29_999);
    edge.handle(&plain_get("/miss-still-open.bin"));
    assert_eq!(edge.resilience().stats().breaker_short_circuits, 2);

    // ...then the window elapses and a probe goes through. It fails, so
    // the breaker reopens for another full window.
    clock.advance_millis(1);
    edge.handle(&plain_get("/miss-probe-fail.bin"));
    assert_eq!(edge.resilience().breaker_state(), "open");
    assert_eq!(edge.resilience().breaker_opens(), 2);

    // After the second window a successful probe recloses it.
    upstream.failing.store(false, Ordering::SeqCst);
    clock.advance_millis(30_000);
    let recovered = edge.handle(&plain_get("/miss-probe-ok.bin"));
    assert_eq!(recovered.status(), StatusCode::OK);
    assert_eq!(edge.resilience().breaker_state(), "closed");
}

/// Runs one flaky SBR round against a freshly built chaos testbed and
/// returns the observable traffic counters.
fn flaky_round(seed: u64) -> (u64, u64, u64, u64) {
    let bed = Testbed::builder()
        .vendor(Vendor::CloudFront)
        .resource(TARGET_PATH, 256 * 1024)
        .fault_plan(FaultPlan::flaky_origin(seed))
        .breaker(BreakerConfig::default())
        .cache_ttl_ms(60_000)
        .build();
    for i in 0..24u32 {
        let req = Request::get(&format!("{TARGET_PATH}?rnd={i:08x}"))
            .header("Host", TARGET_HOST)
            .header("Range", "bytes=0-0")
            .build();
        bed.request(&req);
    }
    let stats = bed.edge().resilience().stats();
    (
        bed.client_segment().stats().response_bytes,
        bed.origin_segment().stats().response_bytes,
        stats.attempts,
        stats.retries,
    )
}

#[test]
fn testbed_chaos_runs_are_deterministic() {
    let a = flaky_round(0xFEED);
    let b = flaky_round(0xFEED);
    assert_eq!(a, b, "same seed must reproduce identical traffic");
    assert!(
        a.2 >= 24,
        "every client request costs at least one upstream attempt"
    );

    let c = flaky_round(0xBEEF);
    assert_ne!(a, c, "different seeds should produce different schedules");
}

/// Always replies 206 with a Content-Range window that disagrees with
/// the body it actually ships.
#[derive(Debug)]
struct MalformedUpstream {
    window_len: u64,
    body_len: u64,
    total: u64,
}

impl UpstreamService for MalformedUpstream {
    fn handle(&self, _req: &Request) -> Result<Response, UpstreamError> {
        Ok(Response::builder(StatusCode::PARTIAL_CONTENT)
            .header(
                "Content-Range",
                format!("bytes 0-{}/{}", self.window_len - 1, self.total),
            )
            .sized_body(vec![0u8; self.body_len as usize])
            .build())
    }

    fn resource_size(&self, _path: &str) -> Option<u64> {
        Some(self.total)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A self-inconsistent upstream response must surface as an HTTP
    /// error, never as a panic or as assembled client data.
    #[test]
    fn malformed_content_range_never_panics(
        window_len in 1u64..100_000,
        body_len in 1u64..100_000,
        extra_total in 0u64..100_000,
        vendor_idx in 0usize..13,
    ) {
        prop_assume!(window_len != body_len);
        let vendor = Vendor::ALL[vendor_idx];
        let upstream = Arc::new(MalformedUpstream {
            window_len,
            body_len,
            total: window_len + extra_total,
        });
        let edge = EdgeNode::new(
            vendor.profile(),
            upstream,
            Segment::new(SegmentName::CdnOrigin),
        );
        let req = Request::get(TARGET_PATH)
            .header("Host", TARGET_HOST)
            .header("Range", "bytes=0-0")
            .build();
        let resp = edge.handle(&req);
        prop_assert!(
            resp.status().as_u16() >= 500,
            "{}: expected upstream error status, got {}",
            vendor.name(),
            resp.status().as_u16()
        );
    }
}

#[test]
fn unparseable_content_range_is_rejected_cleanly() {
    #[derive(Debug)]
    struct Garbage;
    impl UpstreamService for Garbage {
        fn handle(&self, _req: &Request) -> Result<Response, UpstreamError> {
            Ok(Response::builder(StatusCode::PARTIAL_CONTENT)
                .header("Content-Range", "bytes these-are-not/numbers")
                .sized_body(vec![0u8; 16])
                .build())
        }
        fn resource_size(&self, _path: &str) -> Option<u64> {
            Some(16)
        }
    }

    let edge = EdgeNode::new(
        Vendor::Cloudflare.profile(),
        Arc::new(Garbage),
        Segment::new(SegmentName::CdnOrigin),
    );
    let resp = edge.handle(&plain_get(TARGET_PATH));
    assert_eq!(resp.status(), StatusCode::BAD_GATEWAY);
}
