//! The vulnerability scanner (paper §V-A, experiment 1).
//!
//! The paper sends each CDN "a large number of valid range requests
//! automatically generated based on the ABNF rules" and differentially
//! compares what the client sent, what the origin received, and what each
//! side's responses weighed. This module does the same against the
//! emulated vendor profiles and *derives* Tables I–III from the observed
//! behaviour — the tables are outputs of probing, not constants.

use rangeamp_cdn::{ObrRangeCase, RangePolicy, Vendor};
use rangeamp_http::range::{RangeCaseKind, RangeRequestGenerator};
use rangeamp_http::{Request, StatusCode};
use serde::Serialize;

use crate::executor::Executor;
use crate::testbed::{Testbed, TARGET_HOST, TARGET_PATH};

const MB: u64 = 1024 * 1024;

/// One differential observation: a probe request and what happened on
/// both sides of the CDN.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeObservation {
    /// Vendor probed.
    pub vendor: String,
    /// The probe's `Range` value.
    pub probe_range: String,
    /// Target resource size.
    pub file_size: u64,
    /// `Range` values of each back-to-origin request (in order).
    pub forwarded: Vec<Option<String>>,
    /// Total origin-side response bytes.
    pub origin_response_bytes: u64,
    /// Total client-side response bytes.
    pub client_response_bytes: u64,
    /// Client response status.
    pub client_status: u16,
}

impl ProbeObservation {
    /// SBR vulnerability signal: the origin shipped far more response
    /// traffic than the attacker received.
    pub fn is_amplifying(&self) -> bool {
        self.client_response_bytes > 0
            && self.origin_response_bytes > 3 * self.client_response_bytes
    }

    /// Whether the origin shipped at least one complete copy.
    pub fn fetched_full_copy(&self) -> bool {
        self.origin_response_bytes >= self.file_size
    }

    /// The observed forwarding policy of the *first* back-to-origin
    /// request (§III-B vocabulary).
    pub fn policy(&self) -> Option<RangePolicy> {
        match self.forwarded.first() {
            None => None,
            Some(None) => Some(RangePolicy::Deletion),
            Some(Some(value)) if *value == self.probe_range => Some(RangePolicy::Laziness),
            Some(Some(_)) => Some(RangePolicy::Expansion),
        }
    }

    /// Renders the forwarded sequence in the paper's Table I notation,
    /// generalizing concrete values (`None`, `bytes=first-last`,
    /// `bytes=first'-last'`).
    pub fn forwarded_description(&self, family: &str) -> String {
        let parts: Vec<String> = self
            .forwarded
            .iter()
            .map(|f| match f {
                None => "None".to_string(),
                Some(value) if *value == self.probe_range => family.to_string(),
                Some(_) => "bytes=first'-last'".to_string(),
            })
            .collect();
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(" & ")
        }
    }
}

/// A derived Table I row: a range format a vendor handles in an
/// SBR-amplifying way.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Vendor name.
    pub vendor: String,
    /// Vulnerable range format (with size qualifier when conditional).
    pub vulnerable_format: String,
    /// Forwarded range format.
    pub forwarded_format: String,
}

/// A derived Table II row: a vendor that relays multi-range headers
/// unchanged (OBR FCDN).
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Vendor name.
    pub vendor: String,
    /// The multi-range format relayed verbatim.
    pub vulnerable_format: String,
    /// Always `Unchanged` (that is the vulnerability).
    pub forwarded_format: String,
}

/// A derived Table III row: a vendor that answers overlapping multi-range
/// requests with one part per range (OBR BCDN).
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Vendor name.
    pub vendor: String,
    /// The multi-range format that triggers it (with n-limit qualifier).
    pub vulnerable_format: String,
    /// Response shape description.
    pub response_format: String,
}

/// The scanner. Probes are deterministic; `seed` only varies the
/// ABNF-generated fuzz corpus of [`Scanner::fuzz_vendor`].
///
/// # Example
///
/// ```
/// use rangeamp::scanner::Scanner;
/// use rangeamp_cdn::{RangePolicy, Vendor};
///
/// let scanner = Scanner::default();
/// let (probe, _) = scanner.probe(Vendor::Akamai, 1024 * 1024, "bytes=0-0");
/// assert_eq!(probe.policy(), Some(RangePolicy::Deletion));
/// assert!(probe.is_amplifying());
/// ```
#[derive(Debug, Clone)]
pub struct Scanner {
    seed: u64,
}

impl Default for Scanner {
    fn default() -> Scanner {
        Scanner::new(7)
    }
}

impl Scanner {
    /// Creates a scanner.
    pub fn new(seed: u64) -> Scanner {
        Scanner { seed }
    }

    /// Sends one probe (twice, same URL — some behaviours like KeyCDN's
    /// only fire on the second identical request) and records both
    /// rounds. The returned pair is (first round, second round).
    pub fn probe(
        &self,
        vendor: Vendor,
        file_size: u64,
        range: &str,
    ) -> (ProbeObservation, ProbeObservation) {
        let bed = Testbed::builder()
            .vendor(vendor)
            .resource(TARGET_PATH, file_size)
            .build();
        let uri = format!("{TARGET_PATH}?scan={:x}", self.seed);
        let first = self.observe(&bed, vendor, &uri, range, file_size);
        let second = self.observe(&bed, vendor, &uri, range, file_size);
        (first, second)
    }

    fn observe(
        &self,
        bed: &Testbed,
        vendor: Vendor,
        uri: &str,
        range: &str,
        file_size: u64,
    ) -> ProbeObservation {
        bed.reset_traffic();
        let req = Request::get(uri)
            .header("Host", TARGET_HOST)
            .header("Range", range)
            .build();
        let resp = bed.request(&req);
        ProbeObservation {
            vendor: vendor.name().to_string(),
            probe_range: range.to_string(),
            file_size,
            forwarded: bed.origin_segment().capture().forwarded_ranges(),
            origin_response_bytes: bed.origin_segment().stats().response_bytes,
            client_response_bytes: bed.client_segment().stats().response_bytes,
            client_status: resp.status().as_u16(),
        }
    }

    /// The paper's §III-B preliminary: disable range support at the
    /// origin and send a valid range request — every CDN still answers
    /// `206` with `Accept-Ranges: bytes`, proving the CDNs implement
    /// ranges themselves. Returns the vendors that do.
    pub fn scan_range_support(&self) -> Vec<String> {
        Vendor::ALL
            .iter()
            .filter_map(|&vendor| {
                let bed = Testbed::builder()
                    .vendor(vendor)
                    .resource(TARGET_PATH, 4096)
                    .origin_config(rangeamp_origin::OriginConfig::ranges_disabled())
                    .build();
                let req = Request::get(&format!("{TARGET_PATH}?scan={:x}", self.seed))
                    .header("Host", TARGET_HOST)
                    .header("Range", "bytes=0-0")
                    .build();
                let resp = bed.request(&req);
                let supports = resp.status() == StatusCode::PARTIAL_CONTENT
                    && resp.headers().get("accept-ranges") == Some("bytes");
                supports.then(|| vendor.name().to_string())
            })
            .collect()
    }

    /// Probes every vendor with the Table I case matrix and derives the
    /// vulnerable rows.
    pub fn scan_table1(&self) -> Vec<Table1Row> {
        self.scan_table1_exec(&Executor::sequential())
    }

    /// [`Scanner::scan_table1`] with each vendor's probe matrix run as
    /// one executor unit. Every probe builds its own testbed and the
    /// rows concatenate in [`Vendor::ALL`] order, so the output is
    /// byte-identical at any thread count.
    pub fn scan_table1_exec(&self, executor: &Executor) -> Vec<Table1Row> {
        executor
            .map(self.seed, Vendor::ALL.to_vec(), |_, vendor| {
                self.scan_vendor_table1(vendor)
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Classifies one (vendor, range, size) probe into a Table I outcome.
    fn classify(&self, vendor: Vendor, size: u64, range: &str, family: &str) -> Option<String> {
        let (first, second) = self.probe(vendor, size, range);
        if first.is_amplifying() {
            Some(first.forwarded_description(family))
        } else if second.is_amplifying() {
            Some(format!(
                "{} (& {})",
                first.forwarded_description(family),
                second.forwarded_description(family)
            ))
        } else {
            None
        }
    }

    /// Bisects (at 1 MB granularity) the file size at which the outcome of
    /// probing `range` stops matching `desc`. `lo` is a member size, `hi`
    /// a non-member size.
    fn bisect_size(
        &self,
        vendor: Vendor,
        range: &str,
        family: &str,
        desc: &str,
        mut lo: u64,
        mut hi: u64,
    ) -> u64 {
        while hi - lo > MB {
            let mid = (lo / MB + hi / MB) / 2 * MB;
            if self.classify(vendor, mid, range, family).as_deref() == Some(desc) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Bisects the smallest `first` for which `bytes=first-first` stops
    /// matching `desc` (the CDN77 `first < 1024` rule).
    fn bisect_first(&self, vendor: Vendor, size: u64, family: &str, desc: &str) -> u64 {
        let mut lo = 0u64; // member
        let mut hi = 1500u64; // non-member
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let range = format!("bytes={mid}-{mid}");
            if self.classify(vendor, size, &range, family).as_deref() == Some(desc) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Table I derivation for one vendor.
    pub fn scan_vendor_table1(&self, vendor: Vendor) -> Vec<Table1Row> {
        /// (family label, canonical probe, extra probes: (range, size)).
        type FamilySpec = (&'static str, &'static str, &'static [(&'static str, u64)]);
        let canonical_sizes: [u64; 4] = [MB, 9 * MB, 12 * MB, 25 * MB];
        let families: [FamilySpec; 3] = [
            (
                "bytes=first-last",
                "bytes=0-0",
                &[("bytes=1500-1500", MB), ("bytes=8388608-8388608", 25 * MB)],
            ),
            ("bytes=-suffix", "bytes=-1", &[]),
            (
                "bytes=first1-last1,...,firstn-lastn",
                "bytes=0-0,9437184-9437184",
                &[],
            ),
        ];
        let mut rows: Vec<Table1Row> = Vec::new();
        for (family, canonical, extras) in families {
            // Classify every probe of the family.
            let mut outcomes: Vec<(String, u64, Option<String>)> = Vec::new();
            for &size in &canonical_sizes {
                outcomes.push((
                    canonical.to_string(),
                    size,
                    self.classify(vendor, size, canonical, family),
                ));
            }
            for &(range, size) in extras {
                outcomes.push((
                    range.to_string(),
                    size,
                    self.classify(vendor, size, range, family),
                ));
            }

            // One row per distinct vulnerable description.
            let mut descs: Vec<String> =
                outcomes.iter().filter_map(|(_, _, d)| d.clone()).collect();
            descs.dedup();
            descs = {
                let mut unique = Vec::new();
                for d in descs {
                    if !unique.contains(&d) {
                        unique.push(d);
                    }
                }
                unique
            };

            for desc in descs {
                let members: Vec<&(String, u64, Option<String>)> = outcomes
                    .iter()
                    .filter(|(_, _, d)| d.as_deref() == Some(desc.as_str()))
                    .collect();

                // Size qualifier, from the canonical-range probes.
                let canon_members: Vec<u64> = members
                    .iter()
                    .filter(|(r, _, _)| r == canonical)
                    .map(|(_, s, _)| *s)
                    .collect();
                let size_qualifier =
                    if canon_members.is_empty() || canon_members.len() == canonical_sizes.len() {
                        String::new()
                    } else {
                        let max_member = *canon_members.iter().max().expect("non-empty");
                        let min_member = *canon_members.iter().min().expect("non-empty");
                        let above = canonical_sizes.iter().copied().find(|s| *s > max_member);
                        let below = canonical_sizes
                            .iter()
                            .copied()
                            .filter(|s| *s < min_member)
                            .max();
                        match (below, above) {
                            (None, Some(hi)) => {
                                let boundary = self
                                    .bisect_size(vendor, canonical, family, &desc, max_member, hi);
                                format!(" (F < {}MB)", boundary / MB)
                            }
                            (Some(lo), None) => {
                                // Member region is the high side: bisect where
                                // membership *begins*.
                                let mut lo = lo;
                                let mut hi = min_member;
                                while hi - lo > MB {
                                    let mid = (lo / MB + hi / MB) / 2 * MB;
                                    if self.classify(vendor, mid, canonical, family).as_deref()
                                        == Some(desc.as_str())
                                    {
                                        hi = mid;
                                    } else {
                                        lo = mid;
                                    }
                                }
                                format!(" (F ≥ {}MB)", hi / MB)
                            }
                            _ => String::new(),
                        }
                    };

                // First-byte qualifier: canonical (first = 0) is a member
                // but the first=1500 probe at the same size is not.
                let first_qualifier = if family == "bytes=first-last"
                    && canon_members.contains(&MB)
                    && !members
                        .iter()
                        .any(|(r, s, _)| r == "bytes=1500-1500" && *s == MB)
                {
                    let boundary = self.bisect_first(vendor, MB, family, &desc);
                    if boundary == 1 {
                        // Only first = 0 qualifies: the paper writes this
                        // as `bytes=0-last` (CDNsun).
                        None
                    } else {
                        Some(format!(" (first < {boundary})"))
                    }
                } else {
                    Some(String::new())
                };

                // Format cell: a group made up entirely of one non-canonical
                // probe reads better concretely (Azure's window case).
                let all_same_extra = members
                    .iter()
                    .all(|(r, _, _)| r != canonical)
                    .then(|| members.first().map(|(r, _, _)| r.clone()))
                    .flatten()
                    .filter(|_| members.windows(2).all(|w| w[0].0 == w[1].0));
                let format = match (all_same_extra, first_qualifier) {
                    (Some(concrete), _) => format!("{concrete}{size_qualifier}"),
                    (None, None) => format!("bytes=0-last{size_qualifier}"),
                    (None, Some(first_q)) => format!("{family}{first_q}{size_qualifier}"),
                };
                let row = Table1Row {
                    vendor: vendor.name().to_string(),
                    vulnerable_format: format,
                    forwarded_format: desc.clone(),
                };
                if !rows.iter().any(|r: &Table1Row| {
                    r.vulnerable_format == row.vulnerable_format
                        && r.forwarded_format == row.forwarded_format
                }) {
                    rows.push(row);
                }
            }
        }
        rows
    }

    /// Probes every vendor's FCDN eligibility (Table II): does it relay
    /// overlapping multi-range headers verbatim?
    pub fn scan_table2(&self) -> Vec<Table2Row> {
        self.scan_table2_exec(&Executor::sequential())
    }

    /// [`Scanner::scan_table2`] with one executor unit per vendor.
    pub fn scan_table2_exec(&self, executor: &Executor) -> Vec<Table2Row> {
        executor
            .map(self.seed, Vendor::ALL.to_vec(), |_, vendor| {
                self.scan_vendor_table2(vendor)
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Table II derivation for one vendor.
    fn scan_vendor_table2(&self, vendor: Vendor) -> Option<Table2Row> {
        let shapes = [
            (ObrRangeCase::AllZeroOpen, "start1 = 0"),
            (ObrRangeCase::OneThenZero, "start1 ≥ 1"),
            (ObrRangeCase::SuffixThenZero, "leading suffix"),
        ];
        let mut relayed: Vec<&str> = Vec::new();
        for (case, label) in shapes {
            let range = case.header(3).to_string();
            let bed = Testbed::builder()
                .profile(vendor.fcdn_profile())
                .resource(TARGET_PATH, 4096)
                .build();
            let req = Request::get(&format!("{TARGET_PATH}?scan={:x}", self.seed))
                .header("Host", TARGET_HOST)
                .header("Range", range.clone())
                .build();
            bed.request(&req);
            let forwarded = bed.origin_segment().capture().forwarded_ranges();
            if forwarded.first() == Some(&Some(range)) {
                relayed.push(label);
            }
        }
        if relayed.is_empty() {
            return None;
        }
        let format = if relayed.len() == shapes.len() {
            "bytes=start1-,start2-,...,startn-".to_string()
        } else {
            format!("bytes=start1-,start2-,...,startn- ({})", relayed.join(", "))
        };
        Some(Table2Row {
            vendor: vendor.name().to_string(),
            vulnerable_format: format,
            forwarded_format: "Unchanged".to_string(),
        })
    }

    /// Probes every vendor's BCDN eligibility (Table III): with range
    /// support disabled at the origin, does an overlapping multi-range
    /// request come back as one part per range?
    pub fn scan_table3(&self) -> Vec<Table3Row> {
        self.scan_table3_exec(&Executor::sequential())
    }

    /// [`Scanner::scan_table3`] with one executor unit per vendor.
    pub fn scan_table3_exec(&self, executor: &Executor) -> Vec<Table3Row> {
        executor
            .map(self.seed, Vendor::ALL.to_vec(), |_, vendor| {
                self.scan_vendor_table3(vendor)
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Table III derivation for one vendor.
    fn scan_vendor_table3(&self, vendor: Vendor) -> Option<Table3Row> {
        let n_small = 4usize;
        if !self.replies_n_part(vendor, n_small) {
            return None;
        }
        // Find whether an n-limit exists (Azure: 64).
        let qualifier = if self.replies_n_part(vendor, 65) {
            String::new()
        } else {
            let limit = (n_small..=64)
                .rev()
                .find(|&n| self.replies_n_part(vendor, n))
                .unwrap_or(n_small);
            format!(" (n ≤ {limit})")
        };
        Some(Table3Row {
            vendor: vendor.name().to_string(),
            vulnerable_format: format!("bytes=start1-,start2-,...,startn-{qualifier}"),
            response_format: "n-part response (overlapping)".to_string(),
        })
    }

    fn replies_n_part(&self, vendor: Vendor, n: usize) -> bool {
        let size = 1024u64;
        let bed = Testbed::builder()
            .vendor(vendor)
            .resource(TARGET_PATH, size)
            .origin_config(rangeamp_origin::OriginConfig::ranges_disabled())
            .build();
        let range = ObrRangeCase::AllZeroOpen.header(n).to_string();
        let req = Request::get(&format!("{TARGET_PATH}?scan={:x}", self.seed))
            .header("Host", TARGET_HOST)
            .header("Range", range)
            .build();
        let resp = bed.request(&req);
        resp.status() == StatusCode::PARTIAL_CONTENT && resp.body().len() >= (n as u64) * size
    }

    /// Fuzzes a vendor with ABNF-generated valid range requests (the
    /// paper's randomized corpus) and returns every observation, for
    /// robustness analysis beyond the fixed Table I matrix.
    pub fn fuzz_vendor(&self, vendor: Vendor, count: usize) -> Vec<ProbeObservation> {
        let size = 4 * MB;
        let mut generator = RangeRequestGenerator::new(self.seed, size);
        let mut observations = Vec::with_capacity(count);
        for _ in 0..count {
            let case = generator.next_case();
            let (first, _) = self.probe(vendor, size, &case.header.to_string());
            observations.push(first);
        }
        observations
    }

    /// Convenience: fuzz kinds only (used in property tests).
    pub fn fuzz_kind(&self, vendor: Vendor, kind: RangeCaseKind) -> ProbeObservation {
        let size = 4 * MB;
        let mut generator = RangeRequestGenerator::new(self.seed, size);
        let case = generator.case_of_kind(kind);
        self.probe(vendor, size, &case.header.to_string()).0
    }

    /// Runs a fuzz campaign of `per_kind` random probes per structural
    /// family and summarizes the observed policy distribution — the
    /// aggregate view of the paper's randomized first experiment.
    pub fn fuzz_report(&self, vendor: Vendor, per_kind: usize) -> Vec<FuzzSummary> {
        let size = 4 * MB;
        let mut generator = RangeRequestGenerator::new(self.seed, size);
        RangeCaseKind::ALL
            .iter()
            .map(|&kind| {
                let mut summary = FuzzSummary {
                    vendor: vendor.name().to_string(),
                    kind: format!("{kind:?}"),
                    probes: per_kind,
                    laziness: 0,
                    deletion: 0,
                    expansion: 0,
                    amplifying: 0,
                };
                for _ in 0..per_kind {
                    let case = generator.case_of_kind(kind);
                    let (obs, _) = self.probe(vendor, size, &case.header.to_string());
                    match obs.policy() {
                        Some(RangePolicy::Laziness) => summary.laziness += 1,
                        Some(RangePolicy::Deletion) => summary.deletion += 1,
                        Some(RangePolicy::Expansion) => summary.expansion += 1,
                        None => {}
                    }
                    if obs.is_amplifying() {
                        summary.amplifying += 1;
                    }
                }
                summary
            })
            .collect()
    }
}

/// Aggregate of a fuzz campaign over one structural range-request family.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzSummary {
    /// Vendor probed.
    pub vendor: String,
    /// Structural family (Debug form of [`RangeCaseKind`]).
    pub kind: String,
    /// Probes sent.
    pub probes: usize,
    /// Probes forwarded unchanged.
    pub laziness: usize,
    /// Probes forwarded with the `Range` header removed.
    pub deletion: usize,
    /// Probes forwarded with a rewritten `Range` header.
    pub expansion: usize,
    /// Probes that produced SBR-grade traffic asymmetry.
    pub amplifying: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_13_vendors() {
        let rows = Scanner::default().scan_table1();
        let mut vendors: Vec<&str> = rows.iter().map(|r| r.vendor.as_str()).collect();
        vendors.sort_unstable();
        vendors.dedup();
        assert_eq!(
            vendors.len(),
            13,
            "paper: all 13 CDNs SBR-vulnerable\n{rows:#?}"
        );
    }

    #[test]
    fn table1_akamai_rows_match_paper() {
        let rows = Scanner::default().scan_vendor_table1(Vendor::Akamai);
        let formats: Vec<&str> = rows.iter().map(|r| r.vulnerable_format.as_str()).collect();
        assert!(formats.contains(&"bytes=first-last"), "{rows:#?}");
        assert!(formats.contains(&"bytes=-suffix"), "{rows:#?}");
        assert!(rows.iter().all(|r| r.forwarded_format == "None"));
    }

    #[test]
    fn table1_cloudfront_shows_expansion() {
        let rows = Scanner::default().scan_vendor_table1(Vendor::CloudFront);
        assert!(
            rows.iter()
                .any(|r| r.forwarded_format == "bytes=first'-last'"),
            "{rows:#?}"
        );
    }

    #[test]
    fn table1_keycdn_shows_two_step() {
        let rows = Scanner::default().scan_vendor_table1(Vendor::KeyCdn);
        assert!(
            rows.iter().any(|r| r.forwarded_format.contains("(& None)")),
            "{rows:#?}"
        );
    }

    #[test]
    fn table1_huawei_has_size_conditions() {
        let rows = Scanner::default().scan_vendor_table1(Vendor::HuaweiCloud);
        let has_suffix_condition = rows.iter().any(|r| {
            r.vulnerable_format.starts_with("bytes=-suffix") && r.vulnerable_format.contains("F <")
        });
        assert!(has_suffix_condition, "{rows:#?}");
        let has_double_fetch = rows.iter().any(|r| r.forwarded_format == "None & None");
        assert!(has_double_fetch, "{rows:#?}");
    }

    #[test]
    fn table2_matches_paper_fcdns() {
        let rows = Scanner::default().scan_table2();
        let mut vendors: Vec<&str> = rows.iter().map(|r| r.vendor.as_str()).collect();
        vendors.sort_unstable();
        assert_eq!(
            vendors,
            vec!["CDN77", "CDNsun", "Cloudflare", "StackPath"],
            "{rows:#?}"
        );
        let cdnsun = rows.iter().find(|r| r.vendor == "CDNsun").expect("present");
        assert!(cdnsun.vulnerable_format.contains("start1 ≥ 1"), "{rows:#?}");
    }

    #[test]
    fn table3_matches_paper_bcdns() {
        let rows = Scanner::default().scan_table3();
        let mut vendors: Vec<&str> = rows.iter().map(|r| r.vendor.as_str()).collect();
        vendors.sort_unstable();
        assert_eq!(vendors, vec!["Akamai", "Azure", "StackPath"], "{rows:#?}");
        let azure = rows.iter().find(|r| r.vendor == "Azure").expect("present");
        assert!(azure.vulnerable_format.contains("n ≤ 64"), "{rows:#?}");
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let scanner = Scanner::default();
        let digest = |rows: &[Table1Row]| -> Vec<String> {
            rows.iter()
                .map(|r| {
                    format!(
                        "{}|{}|{}",
                        r.vendor, r.vulnerable_format, r.forwarded_format
                    )
                })
                .collect()
        };
        let seq = digest(&scanner.scan_table1());
        let par = digest(&scanner.scan_table1_exec(&Executor::new(8)));
        assert_eq!(seq, par);
    }

    #[test]
    fn fuzz_probes_are_all_valid_and_classified() {
        let scanner = Scanner::new(42);
        for obs in scanner.fuzz_vendor(Vendor::Fastly, 20) {
            assert!(
                obs.client_status == 206 || obs.client_status == 200,
                "{obs:?}"
            );
            assert!(
                obs.policy().is_some(),
                "every probe reaches the origin: {obs:?}"
            );
        }
    }

    #[test]
    fn all_13_cdns_implement_range_requests_themselves() {
        // §III-B: "our origin server always returns a 200 response with no
        // Accept-Range header, but all CDNs return a 206 response".
        let supporting = Scanner::default().scan_range_support();
        assert_eq!(supporting.len(), 13, "{supporting:?}");
    }

    #[test]
    fn fuzz_report_shows_fastly_deleting_small_ranges() {
        let report = Scanner::new(7).fuzz_report(Vendor::Fastly, 8);
        let small = report
            .iter()
            .find(|s| s.kind == "SmallFromTo")
            .expect("family present");
        assert_eq!(small.deletion, 8, "{small:?}");
        assert_eq!(small.amplifying, 8, "{small:?}");
        let open = report
            .iter()
            .find(|s| s.kind == "OpenEnded")
            .expect("family present");
        assert_eq!(open.laziness, 8, "{open:?}");
    }
}
