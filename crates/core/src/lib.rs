//! # RangeAmp
//!
//! A complete, library-grade reproduction of **"CDN Backfired:
//! Amplification Attacks Based on HTTP Range Requests"** (DSN 2020):
//! the Small Byte Range (SBR) and Overlapping Byte Ranges (OBR)
//! amplification attacks, the testbed they run on, the vulnerability
//! scanner that rediscovers the paper's Tables I–III from behaviour, and
//! the mitigation suite of §VI-C.
//!
//! ## Architecture
//!
//! * [`Testbed`] wires a client, one emulated CDN edge
//!   ([`rangeamp_cdn::EdgeNode`]) and an Apache-like origin
//!   ([`rangeamp_origin::OriginServer`]) with byte-metered segments.
//! * [`CascadeTestbed`] wires the FCDN → BCDN chain of the OBR attack.
//! * [`attack::SbrAttack`] / [`attack::ObrAttack`] select each vendor's
//!   exploited range case (Table IV/V), force cache misses, and measure
//!   amplification.
//! * [`attack::FloodExperiment`] drives the flow-level bandwidth
//!   simulation of Fig 7.
//! * [`scanner::Scanner`] probes vendor profiles with generated range
//!   requests and classifies their policies (experiment 1).
//! * [`mitigation`] re-runs the attacks under the paper's proposed
//!   defenses; [`severity`] projects the monetary damage (§V-E);
//!   [`workload`] generates benign range traffic for the §VI-C
//!   detectability analysis.
//! * [`defense_eval`] evaluates the online detection-and-enforcement
//!   layer of [`rangeamp_defense`] against mixed benign + Table IV/V
//!   attack workloads (DESIGN.md §12).
//! * [`executor::Executor`] shards every campaign across OS threads
//!   with byte-identical output at any `--threads N` (DESIGN.md §8).
//! * [`conformance`] cross-checks the whole range-rewrite pipeline
//!   against an independent model of the paper's Tables I/II with a
//!   structure-aware fuzzer, and replays its minimised findings from a
//!   committed corpus (DESIGN.md §9).
//!
//! ## Quickstart
//!
//! ```
//! use rangeamp::attack::SbrAttack;
//! use rangeamp_cdn::Vendor;
//!
//! let attack = SbrAttack::new(Vendor::Akamai, 1024 * 1024);
//! let report = attack.run();
//! assert!(report.amplification_factor() > 1000.0, "three orders of magnitude");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod amplification;
pub mod attack;
pub mod chaos;
pub mod conformance;
pub mod defense_eval;
pub mod executor;
pub mod mitigation;
pub mod report;
pub mod scanner;
pub mod severity;
mod testbed;
pub mod workload;

pub use amplification::{AmplificationMeasurement, TrafficBreakdown};
pub use executor::Executor;
pub use rangeamp_net::{MetricsRegistry, Telemetry, Tracer};
pub use testbed::{CascadeTestbed, Testbed, TestbedBuilder, TARGET_HOST, TARGET_PATH};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use rangeamp_cdn as cdn;
pub use rangeamp_defense as defense;
pub use rangeamp_http as http;
pub use rangeamp_net as net;
pub use rangeamp_origin as origin;
