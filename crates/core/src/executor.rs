//! Deterministic parallel campaign executor.
//!
//! Every sweep in this workspace — the 13-vendor SBR campaigns, the
//! 13×13 OBR cascades, the scanner's probe matrix, the chaos campaigns —
//! is an *embarrassingly parallel* list of independent units: each unit
//! builds its own testbed, runs to completion and yields one result.
//! This module runs such lists across OS threads while keeping the
//! repo's core guarantee intact: **byte-identical reports at any
//! `--threads N`**.
//!
//! The determinism contract (DESIGN.md §8) rests on three rules:
//!
//! 1. **Fixed shard→unit assignment.** Unit `i` always runs on shard
//!    `i % threads`. There is no work-stealing queue whose pop order
//!    could depend on timing — a shard's unit list is a pure function
//!    of `(unit count, thread count)`.
//! 2. **Per-unit seeds, not per-shard streams.** Each unit's RNG seed
//!    derives from the campaign seed and the unit's *index* via a
//!    [`splitmix64`] mix, so the randomness a unit sees is independent
//!    of which shard ran it or how many shards exist.
//! 3. **Order-independent merge.** Shards return `(unit index, result)`
//!    pairs; the merge concatenates whatever order the shards finished
//!    in and re-sorts by unit index. Shuffling the shard outputs cannot
//!    change the merged vector (property-tested in
//!    `crates/core/tests/executor_prop.rs`).
//!
//! Telemetry in parallel campaigns follows the same shape: each unit
//! writes spans and metrics into its *own* [`Telemetry`] bundle (seeded
//! per unit), and the campaign merges the bundles back into the
//! caller's bundle in unit order after the barrier
//! ([`rangeamp_net::Telemetry::absorb`]). Counters and histograms merge
//! additively, gauges last-write-wins in unit order, and span ids/
//! sequence numbers are re-based on absorption — so the exported trace
//! and metrics files are byte-identical at any thread count.
//!
//! [`Telemetry`]: rangeamp_net::Telemetry

use std::num::NonZeroUsize;
use std::thread;

/// splitmix64 finalizer (public-domain constants) — the workspace-wide
/// seed mixer. Deriving sub-seeds through it keeps neighbouring unit
/// indices from producing correlated fault schedules.
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The golden-ratio increment used to space unit seeds before mixing.
pub const SEED_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed for unit `index` of a campaign seeded with `seed`.
///
/// This is the only seed-derivation scheme the executor supports — every
/// parallel campaign uses it, so a unit's randomness depends only on
/// `(campaign seed, unit index)`, never on shard layout.
pub fn unit_seed(seed: u64, index: usize) -> u64 {
    splitmix64(seed.wrapping_add((index as u64 + 1).wrapping_mul(SEED_GAMMA)))
}

/// Context handed to the unit closure: where the unit sits in the
/// campaign and the seed derived for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitCtx {
    /// The unit's index in the input list (also its merge key).
    pub index: usize,
    /// The shard (thread) the unit was assigned to: `index % threads`.
    pub shard: usize,
    /// Per-unit seed derived via [`unit_seed`] from the campaign seed.
    pub seed: u64,
}

/// A deterministic parallel executor over a fixed number of shards.
///
/// # Example
///
/// ```
/// use rangeamp::executor::Executor;
///
/// let inputs: Vec<u64> = (0..100).collect();
/// let seq = Executor::sequential().map(7, inputs.clone(), |ctx, x| x * 2 + ctx.seed % 1);
/// let par = Executor::new(8).map(7, inputs, |ctx, x| x * 2 + ctx.seed % 1);
/// assert_eq!(seq, par, "results are identical at any thread count");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: NonZeroUsize,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::sequential()
    }
}

impl Executor {
    /// An executor over `threads` shards (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero"),
        }
    }

    /// The single-shard executor: runs units in order on the calling
    /// thread, through the same seed-derivation and merge path as the
    /// parallel shards.
    pub fn sequential() -> Executor {
        Executor::new(1)
    }

    /// An executor sized to the machine (`std::thread::available_parallelism`).
    pub fn available_parallelism() -> Executor {
        Executor::new(thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// The shard count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Runs `f` over every unit and returns the results in input order.
    ///
    /// Unit `i` runs on shard `i % threads` with seed
    /// [`unit_seed`]`(seed, i)`; shards process their units in ascending
    /// index order, and the merge re-sorts `(index, result)` pairs so
    /// the output is byte-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Propagates the first (lowest-shard) panic raised by a unit.
    pub fn map<T, R, F>(&self, seed: u64, units: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&UnitCtx, T) -> R + Sync,
    {
        let threads = self.threads.get().min(units.len().max(1));
        if threads <= 1 {
            return units
                .into_iter()
                .enumerate()
                .map(|(index, unit)| {
                    let ctx = UnitCtx {
                        index,
                        shard: 0,
                        seed: unit_seed(seed, index),
                    };
                    f(&ctx, unit)
                })
                .collect();
        }

        // Fixed assignment: deal the units round-robin into shard-local
        // lists, remembering each unit's original index as its merge key.
        let mut shard_inputs: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
        for (index, unit) in units.into_iter().enumerate() {
            shard_inputs[index % threads].push((index, unit));
        }

        let f = &f;
        let shard_outputs: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = shard_inputs
                .into_iter()
                .enumerate()
                .map(|(shard, inputs)| {
                    scope.spawn(move || {
                        inputs
                            .into_iter()
                            .map(|(index, unit)| {
                                let ctx = UnitCtx {
                                    index,
                                    shard,
                                    seed: unit_seed(seed, index),
                                };
                                (index, f(&ctx, unit))
                            })
                            .collect::<Vec<(usize, R)>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(results) => results,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        merge_shard_results(shard_outputs)
    }
}

/// The executor's merge step, exposed for property tests: concatenates
/// per-shard `(unit index, result)` lists — in *any* order — and
/// re-sorts by unit index, so shard completion order cannot leak into
/// the output.
pub fn merge_shard_results<R>(shard_outputs: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut merged: Vec<(usize, R)> = shard_outputs.into_iter().flatten().collect();
    merged.sort_by_key(|(index, _)| *index);
    merged.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_seed_depends_on_index_not_shard_count() {
        let base = unit_seed(7, 3);
        assert_eq!(base, unit_seed(7, 3));
        assert_ne!(base, unit_seed(7, 4));
        assert_ne!(base, unit_seed(8, 3));
    }

    #[test]
    fn map_results_are_identical_across_thread_counts() {
        let inputs: Vec<usize> = (0..37).collect();
        let run = |threads: usize| {
            Executor::new(threads).map(99, inputs.clone(), |ctx, x| {
                assert_eq!(ctx.index, x);
                (x, ctx.seed)
            })
        };
        let reference = run(1);
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn shard_assignment_is_round_robin() {
        let shards = Executor::new(3).map(0, (0..9).collect::<Vec<usize>>(), |ctx, _| ctx.shard);
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u8> = Vec::new();
        assert!(Executor::new(8).map(0, empty, |_, x| x).is_empty());
        assert_eq!(Executor::new(8).map(0, vec![5u8], |_, x| x), vec![5]);
    }

    #[test]
    fn merge_is_shard_order_independent() {
        let a = vec![vec![(0, 'a'), (2, 'c')], vec![(1, 'b'), (3, 'd')]];
        let b = vec![vec![(1, 'b'), (3, 'd')], vec![(0, 'a'), (2, 'c')]];
        assert_eq!(merge_shard_results(a), vec!['a', 'b', 'c', 'd']);
        assert_eq!(merge_shard_results(b), vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn threads_clamped_to_at_least_one() {
        assert_eq!(Executor::new(0).threads(), 1);
    }
}
