//! Severity assessment: the monetary dimension of RangeAmp (paper §V-E).
//!
//! > "Most CDNs charge their website customers by traffic consumption
//! > [...] When a website is hosted on a vulnerable CDN, its opponent can
//! > abuse the CDN to perform a RangeAmp attack against it, causing a
//! > very high CDN service fee to the website."
//!
//! Two cost channels are modeled:
//!
//! * **origin egress** — the victim's hosting provider bills the origin's
//!   outgoing traffic, which the SBR attack is designed to maximize;
//! * **CDN traffic billing** — the ten vendors the paper names as
//!   traffic-billed charge the website for CDN-side traffic.
//!
//! Prices are *illustrative public list prices circa the paper's writing*
//! (its refs 17–21); they parameterize the model and are clearly not
//! measurements.

use rangeamp_cdn::Vendor;
use serde::Serialize;

use crate::amplification::AmplificationMeasurement;

/// How a CDN bills the hosted website (paper §V-E).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum BillingModel {
    /// Billed per GB of traffic (the paper lists ten such vendors).
    PerGb(f64),
    /// Flat-rate plans (Cloudflare, StackPath, G-Core entry plans):
    /// no marginal traffic fee, but plan limits still apply.
    FlatRate,
}

impl BillingModel {
    /// The billing model the paper attributes to each vendor, with
    /// illustrative list prices (USD/GB).
    pub fn for_vendor(vendor: Vendor) -> BillingModel {
        match vendor {
            Vendor::Akamai => BillingModel::PerGb(0.049),
            Vendor::AlibabaCloud => BillingModel::PerGb(0.074),
            Vendor::Azure => BillingModel::PerGb(0.081),
            Vendor::Cdn77 => BillingModel::PerGb(0.049),
            Vendor::CdnSun => BillingModel::PerGb(0.049),
            Vendor::Cloudflare => BillingModel::FlatRate,
            Vendor::CloudFront => BillingModel::PerGb(0.085),
            Vendor::Fastly => BillingModel::PerGb(0.120),
            Vendor::GCoreLabs => BillingModel::FlatRate,
            Vendor::HuaweiCloud => BillingModel::PerGb(0.077),
            Vendor::KeyCdn => BillingModel::PerGb(0.040),
            Vendor::StackPath => BillingModel::FlatRate,
            Vendor::TencentCloud => BillingModel::PerGb(0.094),
        }
    }

    /// Whether the vendor bills traffic at all.
    pub fn is_traffic_billed(&self) -> bool {
        matches!(self, BillingModel::PerGb(_))
    }
}

/// Cost-model parameters.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CostModel {
    /// What the victim's hosting provider charges for origin egress
    /// (USD/GB; typical cloud egress ≈ $0.09/GB).
    pub origin_egress_usd_per_gb: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            origin_egress_usd_per_gb: 0.09,
        }
    }
}

/// Estimated cost of a sustained attack.
#[derive(Debug, Clone, Serialize)]
pub struct AttackCost {
    /// Vendor abused.
    pub vendor: String,
    /// Attack rate (requests per second).
    pub requests_per_sec: u32,
    /// Attack duration in hours.
    pub hours: f64,
    /// Victim-side origin egress, GB.
    pub origin_gb: f64,
    /// Victim's origin egress bill, USD.
    pub origin_egress_usd: f64,
    /// Victim's CDN traffic bill, USD (0 for flat-rate vendors).
    pub cdn_traffic_usd: f64,
    /// Attacker-side traffic, GB (what the attacker pays bandwidth for).
    pub attacker_gb: f64,
}

impl AttackCost {
    /// Total victim cost.
    pub fn victim_usd(&self) -> f64 {
        self.origin_egress_usd + self.cdn_traffic_usd
    }

    /// Victim dollars per attacker gigabyte — the economic asymmetry.
    pub fn cost_asymmetry(&self) -> f64 {
        if self.attacker_gb == 0.0 {
            return 0.0;
        }
        self.victim_usd() / self.attacker_gb
    }
}

/// Projects the cost of sustaining the measured attack round at
/// `requests_per_sec` for `hours`.
///
/// # Example
///
/// ```
/// use rangeamp::attack::SbrAttack;
/// use rangeamp::severity::{project_cost, CostModel};
/// use rangeamp_cdn::Vendor;
///
/// let round = SbrAttack::new(Vendor::Fastly, 10 * 1024 * 1024).run();
/// let cost = project_cost(Vendor::Fastly, &round, 10, 1.0, &CostModel::default());
/// assert!(cost.victim_usd() > cost.attacker_gb); // dollars vs gigabytes
/// ```
pub fn project_cost(
    vendor: Vendor,
    measurement: &AmplificationMeasurement,
    requests_per_sec: u32,
    hours: f64,
    model: &CostModel,
) -> AttackCost {
    const GB: f64 = 1e9;
    let rounds = requests_per_sec as f64 * hours * 3600.0;
    // One measured round may span several requests (KeyCDN); scale by
    // round, not by request.
    let origin_bytes = measurement.traffic.victim_response_bytes as f64 * rounds;
    let attacker_bytes = (measurement.traffic.attacker_response_bytes
        + measurement.traffic.attacker_request_bytes) as f64
        * rounds;
    let origin_gb = origin_bytes / GB;
    let cdn_traffic_usd = match BillingModel::for_vendor(vendor) {
        // Traffic-billed vendors meter the CDN-side traffic the attack
        // induces; the back-to-origin volume equals the origin egress.
        BillingModel::PerGb(price) => origin_gb * price,
        BillingModel::FlatRate => 0.0,
    };
    AttackCost {
        vendor: vendor.name().to_string(),
        requests_per_sec,
        hours,
        origin_gb,
        origin_egress_usd: origin_gb * model.origin_egress_usd_per_gb,
        cdn_traffic_usd,
        attacker_gb: attacker_bytes / GB,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::SbrAttack;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn paper_lists_ten_traffic_billed_vendors() {
        let billed = Vendor::ALL
            .iter()
            .filter(|v| BillingModel::for_vendor(**v).is_traffic_billed())
            .count();
        assert_eq!(billed, 10, "§V-E names ten traffic-billed vendors");
    }

    #[test]
    fn one_hour_of_sbr_costs_the_victim_real_money() {
        let measurement = SbrAttack::new(Vendor::CloudFront, 10 * MB).run();
        let cost = project_cost(
            Vendor::CloudFront,
            &measurement,
            10,
            1.0,
            &CostModel::default(),
        );
        // 10 req/s × 3600 s × ~10 MB ≈ 360+ GB of origin egress.
        assert!(cost.origin_gb > 300.0, "got {} GB", cost.origin_gb);
        assert!(cost.victim_usd() > 30.0, "got ${}", cost.victim_usd());
        // ...while the attacker moves a fraction of a GB.
        assert!(cost.attacker_gb < 0.2, "got {} GB", cost.attacker_gb);
        assert!(cost.cost_asymmetry() > 100.0);
    }

    #[test]
    fn flat_rate_vendors_shift_cost_to_origin_egress_only() {
        let measurement = SbrAttack::new(Vendor::Cloudflare, 10 * MB).run();
        let cost = project_cost(
            Vendor::Cloudflare,
            &measurement,
            10,
            1.0,
            &CostModel::default(),
        );
        assert_eq!(cost.cdn_traffic_usd, 0.0);
        assert!(cost.origin_egress_usd > 25.0);
    }

    #[test]
    fn cost_scales_linearly_with_rate_and_time() {
        let measurement = SbrAttack::new(Vendor::Akamai, MB).run();
        let model = CostModel::default();
        let base = project_cost(Vendor::Akamai, &measurement, 1, 1.0, &model);
        let double_rate = project_cost(Vendor::Akamai, &measurement, 2, 1.0, &model);
        let double_time = project_cost(Vendor::Akamai, &measurement, 1, 2.0, &model);
        assert!((double_rate.victim_usd() / base.victim_usd() - 2.0).abs() < 1e-9);
        assert!((double_time.victim_usd() / base.victim_usd() - 2.0).abs() < 1e-9);
    }
}
