//! Testbed wiring: client ↔ CDN(s) ↔ origin with byte-metered segments.

use std::sync::Arc;

use rangeamp_cdn::{
    BreakerConfig, Cache, ClockedOrigin, DefenseHook, EdgeNode, FaultyUpstream, Resilience,
    UpstreamService, Vendor, VendorProfile,
};
use rangeamp_http::{Request, Response};
use rangeamp_net::metrics::{FACTOR_BUCKETS, LATENCY_BUCKETS_MS};
use rangeamp_net::{FaultPlan, Segment, SegmentName, SharedClock, SpanKind, Telemetry};
use rangeamp_origin::{OriginConfig, OriginServer, ResourceStore};

/// Default target path used by the attack builders.
pub const TARGET_PATH: &str = "/target.bin";
/// Default Host header of the victim site.
pub const TARGET_HOST: &str = "victim.example";

/// A single-CDN deployment (paper Fig 3a): client → CDN → origin.
///
/// # Example
///
/// ```
/// use rangeamp::Testbed;
/// use rangeamp_cdn::Vendor;
/// use rangeamp_http::Request;
///
/// let bed = Testbed::builder()
///     .vendor(Vendor::Fastly)
///     .resource("/f.bin", 1024 * 1024)
///     .build();
/// let req = Request::get("/f.bin?r=1")
///     .header("Host", "victim.example")
///     .header("Range", "bytes=0-0")
///     .build();
/// let resp = bed.request(&req);
/// assert_eq!(resp.body().len(), 1);
/// assert!(bed.origin_segment().stats().response_bytes > 1024 * 1024);
/// ```
#[derive(Debug)]
pub struct Testbed {
    client_segment: Segment,
    edge: EdgeNode,
    origin: Arc<OriginServer>,
}

impl Testbed {
    /// Starts a builder with Akamai and a 1 MB `/target.bin`.
    pub fn builder() -> TestbedBuilder {
        TestbedBuilder::default()
    }

    /// Sends one client request through the CDN, metering both segments.
    ///
    /// With telemetry attached (see [`TestbedBuilder::telemetry`]) the
    /// request roots a new trace: a `client-request` span wraps the whole
    /// exchange, the edge/fetch/origin spans nest beneath it, and the
    /// per-request amplification factor (victim-segment response bytes ÷
    /// attacker-segment response bytes) lands in the
    /// `amplification_factor{vendor=…}` histogram.
    pub fn request(&self, req: &Request) -> Response {
        match self.edge.telemetry().cloned() {
            Some(tel) => self.traced_request(&tel, req, None),
            None => {
                self.client_segment.send_request(req);
                let resp = self.edge.handle(req);
                self.client_segment.send_response(&resp);
                resp
            }
        }
    }

    /// Sends one client request and immediately aborts the front-end
    /// connection after `received` response bytes (the Triukose et al.
    /// dropped-connection attack the paper evaluates in §VIII). The edge
    /// node decides — per vendor — whether the back-end transfer survives.
    pub fn request_aborted(&self, req: &Request, received: u64) -> Response {
        match self.edge.telemetry().cloned() {
            Some(tel) => self.traced_request(&tel, req, Some(received)),
            None => {
                self.client_segment.send_request(req);
                let resp = self.edge.handle_with_client_abort(req, received);
                self.client_segment.send_response_truncated(&resp, received);
                resp
            }
        }
    }

    /// The traced twin of `request`/`request_aborted`: identical metering
    /// calls in identical order, plus a root span and per-request metrics
    /// derived from the same segment counters the reports use.
    fn traced_request(&self, tel: &Telemetry, req: &Request, abort: Option<u64>) -> Response {
        let clock = self.edge.resilience().clock().clone();
        let vendor = self.edge.profile().vendor.to_string();
        let origin_before = self.edge.origin_segment().stats();
        let start_ms = clock.now_millis();

        self.client_segment.send_request(req);
        let mut span = tel
            .tracer()
            .start_trace("client-request", SpanKind::Request, start_ms);
        span.attr("vendor", vendor.clone());
        span.attr("uri", req.uri().to_string());
        if let Some(range) = req.headers().get("range") {
            span.attr("range", range);
        }
        span.add_bytes_in(req.wire_len());

        let resp = match abort {
            None => self.edge.handle(req),
            Some(received) => self.edge.handle_with_client_abort(req, received),
        };

        let delivered = match abort {
            None => resp.wire_len(),
            Some(received) => {
                span.attr("aborted_after", received.to_string());
                resp.wire_len().min(received)
            }
        };
        span.add_bytes_out(delivered);
        span.attr("status", resp.status().as_u16().to_string());
        span.finish(clock.now_millis());
        match abort {
            None => self.client_segment.send_response(&resp),
            Some(received) => self.client_segment.send_response_truncated(&resp, received),
        }

        let victim_bytes =
            self.edge.origin_segment().stats().response_bytes - origin_before.response_bytes;
        let metrics = tel.metrics();
        let labels = [("vendor", vendor.as_str())];
        metrics.counter_add("client_requests_total", &labels, 1);
        metrics.counter_add("client_request_bytes_total", &labels, req.wire_len());
        metrics.counter_add("client_response_bytes_total", &labels, delivered);
        metrics.observe_with(
            "amplification_factor",
            &labels,
            &FACTOR_BUCKETS,
            victim_bytes / delivered.max(1),
        );
        metrics.observe_with(
            "request_virtual_latency_ms",
            &labels,
            &LATENCY_BUCKETS_MS,
            clock.now_millis() - start_ms,
        );
        resp
    }

    /// The attacker-facing segment (`client-cdn`).
    pub fn client_segment(&self) -> &Segment {
        &self.client_segment
    }

    /// The victim segment (`cdn-origin`).
    pub fn origin_segment(&self) -> &Segment {
        self.edge.origin_segment()
    }

    /// The edge node.
    pub fn edge(&self) -> &EdgeNode {
        &self.edge
    }

    /// The origin server.
    pub fn origin(&self) -> &Arc<OriginServer> {
        &self.origin
    }

    /// Zeroes traffic counters on both segments (between iterations).
    pub fn reset_traffic(&self) {
        self.client_segment.reset();
        self.edge.origin_segment().reset();
    }
}

/// Builder for [`Testbed`].
#[derive(Debug)]
pub struct TestbedBuilder {
    profile: VendorProfile,
    resources: Vec<(String, u64, &'static str)>,
    origin_config: OriginConfig,
    prebuilt_store: Option<ResourceStore>,
    fault_plan: Option<Arc<FaultPlan>>,
    breaker: Option<BreakerConfig>,
    cache_ttl_ms: Option<u64>,
    telemetry: Option<Telemetry>,
    defense: Option<Arc<dyn DefenseHook>>,
}

impl Default for TestbedBuilder {
    fn default() -> TestbedBuilder {
        TestbedBuilder {
            profile: Vendor::Akamai.profile(),
            resources: vec![(
                TARGET_PATH.to_string(),
                1024 * 1024,
                "application/octet-stream",
            )],
            origin_config: OriginConfig::apache_default(),
            prebuilt_store: None,
            fault_plan: None,
            breaker: None,
            cache_ttl_ms: None,
            telemetry: None,
            defense: None,
        }
    }
}

impl TestbedBuilder {
    /// Uses the given vendor's default (vulnerable) profile.
    pub fn vendor(mut self, vendor: Vendor) -> TestbedBuilder {
        self.profile = vendor.profile();
        self
    }

    /// Uses an explicit profile (e.g. a mitigated one).
    pub fn profile(mut self, profile: VendorProfile) -> TestbedBuilder {
        self.profile = profile;
        self
    }

    /// Replaces the resource set with a single synthetic resource.
    pub fn resource(mut self, path: &str, size: u64) -> TestbedBuilder {
        self.resources = vec![(path.to_string(), size, "application/octet-stream")];
        self
    }

    /// Adds a synthetic resource.
    pub fn add_resource(mut self, path: &str, size: u64) -> TestbedBuilder {
        self.resources
            .push((path.to_string(), size, "application/octet-stream"));
        self
    }

    /// Overrides the origin configuration (e.g. ranges disabled).
    pub fn origin_config(mut self, config: OriginConfig) -> TestbedBuilder {
        self.origin_config = config;
        self
    }

    /// Uses a pre-built resource store (shares synthetic content across
    /// testbeds — resource bodies are reference-counted).
    pub fn store(mut self, store: ResourceStore) -> TestbedBuilder {
        self.prebuilt_store = Some(store);
        self
    }

    /// Injects faults on the CDN → origin path according to `plan`
    /// (chaos experiments). The edge is wired onto a shared virtual
    /// clock so retries, breaker windows and origin load-shedding line
    /// up deterministically.
    pub fn fault_plan(mut self, plan: FaultPlan) -> TestbedBuilder {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Overrides the edge's circuit-breaker configuration.
    pub fn breaker(mut self, config: BreakerConfig) -> TestbedBuilder {
        self.breaker = Some(config);
        self
    }

    /// Gives the edge cache a freshness TTL (virtual ms), enabling
    /// serve-stale: expired entries are served with `Warning: 110` when
    /// the upstream fails.
    pub fn cache_ttl_ms(mut self, ttl_ms: u64) -> TestbedBuilder {
        self.cache_ttl_ms = Some(ttl_ms);
        self
    }

    /// Attaches a telemetry bundle: the origin and edge record spans and
    /// metrics for every request, the segments stamp captures with the
    /// shared virtual clock, and [`Testbed::request`] roots one trace per
    /// client request.
    pub fn telemetry(mut self, telemetry: Telemetry) -> TestbedBuilder {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches an online defense hook to the edge: it is consulted for
    /// an enforcement action before every admitted request and observes
    /// the per-request origin/client byte outcome (DESIGN.md §12).
    pub fn defense(mut self, hook: Arc<dyn DefenseHook>) -> TestbedBuilder {
        self.defense = Some(hook);
        self
    }

    /// Wires everything together.
    pub fn build(self) -> Testbed {
        let store = match self.prebuilt_store {
            Some(store) => store,
            None => {
                let mut store = ResourceStore::new();
                for (path, size, ct) in &self.resources {
                    store.add_synthetic(path, *size, ct);
                }
                store
            }
        };
        let mut origin_server = OriginServer::with_config(store, self.origin_config);
        if let Some(tel) = &self.telemetry {
            origin_server = origin_server.with_telemetry(tel.clone());
        }
        let origin = Arc::new(origin_server);
        let origin_segment = Segment::new(SegmentName::CdnOrigin);
        let chaos_wired =
            self.fault_plan.is_some() || self.breaker.is_some() || self.cache_ttl_ms.is_some();
        let mut edge = if chaos_wired {
            let clock = SharedClock::new();
            let clocked: Arc<dyn UpstreamService> =
                Arc::new(ClockedOrigin::new(origin.clone(), clock.clone()));
            let upstream: Arc<dyn UpstreamService> = match &self.fault_plan {
                Some(plan) => Arc::new(FaultyUpstream::new(clocked, plan.clone())),
                None => clocked,
            };
            let resilience =
                Resilience::new(self.profile.retry, self.breaker.unwrap_or_default(), clock);
            let mut edge =
                EdgeNode::new(self.profile, upstream, origin_segment).with_resilience(resilience);
            if let Some(ttl) = self.cache_ttl_ms {
                edge = edge.with_cache(Cache::new().with_ttl(ttl));
            }
            edge
        } else {
            EdgeNode::new(self.profile, origin.clone(), origin_segment)
        };
        if let Some(tel) = self.telemetry {
            edge = edge.with_telemetry(tel);
        }
        if let Some(hook) = self.defense {
            edge = edge.with_defense(hook);
        }
        // Both segments stamp captures off the edge's clock, so client-
        // and origin-side captures interleave into one timeline.
        let clock = edge.resilience().clock().clone();
        let client_segment = Segment::new(SegmentName::ClientCdn);
        client_segment.attach_clock(clock.clone());
        edge.origin_segment().attach_clock(clock);
        Testbed {
            client_segment,
            edge,
            origin,
        }
    }
}

/// A cascaded two-CDN deployment (paper Fig 3b):
/// client → FCDN → BCDN → origin.
///
/// The attacker controls the wiring: the FCDN's origin is set to a BCDN
/// ingress node, and the origin (the attacker's own) has range support
/// disabled so the BCDN always receives a complete 200 (§IV-C).
#[derive(Debug)]
pub struct CascadeTestbed {
    client_segment: Segment,
    fcdn: EdgeNode,
    bcdn: Arc<EdgeNode>,
    origin: Arc<OriginServer>,
}

impl CascadeTestbed {
    /// Wires `fcdn` in front of `bcdn` over a 1 KB target resource, the
    /// Table V configuration.
    pub fn new(fcdn: Vendor, bcdn: Vendor) -> CascadeTestbed {
        CascadeTestbed::with_resource(fcdn, bcdn, 1024)
    }

    /// Same, with an explicit resource size.
    pub fn with_resource(fcdn: Vendor, bcdn: Vendor, size: u64) -> CascadeTestbed {
        CascadeTestbed::with_profiles(fcdn.fcdn_profile(), bcdn.profile(), size)
    }

    /// Full control over both profiles (mitigation ablations).
    pub fn with_profiles(
        fcdn_profile: VendorProfile,
        bcdn_profile: VendorProfile,
        size: u64,
    ) -> CascadeTestbed {
        CascadeTestbed::with_profiles_telemetry(fcdn_profile, bcdn_profile, size, None)
    }

    /// [`CascadeTestbed::with_profiles`] with an optional telemetry
    /// bundle shared by both edges and the origin. The BCDN sits behind
    /// an `Arc`, so telemetry must be injected at construction time —
    /// it cannot be attached to a built cascade.
    pub fn with_profiles_telemetry(
        fcdn_profile: VendorProfile,
        bcdn_profile: VendorProfile,
        size: u64,
        telemetry: Option<Telemetry>,
    ) -> CascadeTestbed {
        let origin = Arc::new(CascadeTestbed::cascade_origin(size, telemetry.as_ref()));
        let bcdn_segment = Segment::new(SegmentName::BcdnOrigin);
        let mut bcdn = EdgeNode::new(bcdn_profile, origin.clone(), bcdn_segment);
        if let Some(tel) = &telemetry {
            bcdn = bcdn.with_telemetry(tel.clone());
        }
        let bcdn_node = Arc::new(bcdn);
        let fcdn_segment = Segment::new(SegmentName::FcdnBcdn);
        let mut fcdn = EdgeNode::new(fcdn_profile, bcdn_node.clone(), fcdn_segment);
        if let Some(tel) = &telemetry {
            fcdn = fcdn.with_telemetry(tel.clone());
        }
        CascadeTestbed::assemble(fcdn, bcdn_node, origin)
    }

    /// Cascade with an online defense hook on the FCDN — the edge whose
    /// origin-facing segment (`fcdn-bcdn`) is the OBR victim link. Both
    /// edges share one virtual clock so the defense's sliding windows
    /// advance consistently across the cascade; the client id header is
    /// forwarded upstream wholesale, so the BCDN could attach its own
    /// hook the same way.
    pub fn with_profiles_defense(
        fcdn_profile: VendorProfile,
        bcdn_profile: VendorProfile,
        size: u64,
        defense: Arc<dyn DefenseHook>,
    ) -> CascadeTestbed {
        let origin = Arc::new(CascadeTestbed::cascade_origin(size, None));
        let clock = SharedClock::new();
        let bcdn_segment = Segment::new(SegmentName::BcdnOrigin);
        let bcdn_resilience =
            Resilience::new(bcdn_profile.retry, BreakerConfig::default(), clock.clone());
        let bcdn = EdgeNode::new(bcdn_profile, origin.clone(), bcdn_segment)
            .with_resilience(bcdn_resilience);
        let bcdn_node = Arc::new(bcdn);
        let fcdn_segment = Segment::new(SegmentName::FcdnBcdn);
        let fcdn_resilience = Resilience::new(fcdn_profile.retry, BreakerConfig::default(), clock);
        let fcdn = EdgeNode::new(fcdn_profile, bcdn_node.clone(), fcdn_segment)
            .with_resilience(fcdn_resilience)
            .with_defense(defense);
        CascadeTestbed::assemble(fcdn, bcdn_node, origin)
    }

    /// Cascade with fault injection on the `bcdn-origin` path. Both
    /// edges run their vendor retry policies and circuit breakers on one
    /// shared virtual clock, so an FCDN retrying into a broken BCDN is
    /// observable end to end (retry amplification across the cascade).
    pub fn with_chaos(
        fcdn_profile: VendorProfile,
        bcdn_profile: VendorProfile,
        size: u64,
        plan: FaultPlan,
        breaker: BreakerConfig,
    ) -> CascadeTestbed {
        CascadeTestbed::with_chaos_telemetry(fcdn_profile, bcdn_profile, size, plan, breaker, None)
    }

    /// [`CascadeTestbed::with_chaos`] with an optional telemetry bundle.
    pub fn with_chaos_telemetry(
        fcdn_profile: VendorProfile,
        bcdn_profile: VendorProfile,
        size: u64,
        plan: FaultPlan,
        breaker: BreakerConfig,
        telemetry: Option<Telemetry>,
    ) -> CascadeTestbed {
        let origin = Arc::new(CascadeTestbed::cascade_origin(size, telemetry.as_ref()));
        let clock = SharedClock::new();
        let clocked: Arc<dyn UpstreamService> =
            Arc::new(ClockedOrigin::new(origin.clone(), clock.clone()));
        let faulty: Arc<dyn UpstreamService> =
            Arc::new(FaultyUpstream::new(clocked, Arc::new(plan)));
        let bcdn_segment = Segment::new(SegmentName::BcdnOrigin);
        let bcdn_resilience = Resilience::new(bcdn_profile.retry, breaker, clock.clone());
        let mut bcdn =
            EdgeNode::new(bcdn_profile, faulty, bcdn_segment).with_resilience(bcdn_resilience);
        if let Some(tel) = &telemetry {
            bcdn = bcdn.with_telemetry(tel.clone());
        }
        let bcdn_node = Arc::new(bcdn);
        let fcdn_segment = Segment::new(SegmentName::FcdnBcdn);
        let fcdn_resilience = Resilience::new(fcdn_profile.retry, breaker, clock);
        let mut fcdn = EdgeNode::new(fcdn_profile, bcdn_node.clone(), fcdn_segment)
            .with_resilience(fcdn_resilience);
        if let Some(tel) = &telemetry {
            fcdn = fcdn.with_telemetry(tel.clone());
        }
        CascadeTestbed::assemble(fcdn, bcdn_node, origin)
    }

    fn cascade_origin(size: u64, telemetry: Option<&Telemetry>) -> OriginServer {
        let mut store = ResourceStore::new();
        store.add_synthetic(TARGET_PATH, size, "application/octet-stream");
        let mut origin = OriginServer::with_config(store, OriginConfig::ranges_disabled());
        if let Some(tel) = telemetry {
            origin = origin.with_telemetry(tel.clone());
        }
        origin
    }

    /// Final wiring shared by all constructors: create the client
    /// segment and stamp every segment's captures off the FCDN's clock
    /// (in chaos cascades all edges share one clock already).
    fn assemble(fcdn: EdgeNode, bcdn: Arc<EdgeNode>, origin: Arc<OriginServer>) -> CascadeTestbed {
        let clock = fcdn.resilience().clock().clone();
        let client_segment = Segment::new(SegmentName::ClientFcdn);
        client_segment.attach_clock(clock.clone());
        fcdn.origin_segment().attach_clock(clock.clone());
        bcdn.origin_segment().attach_clock(clock);
        CascadeTestbed {
            client_segment,
            fcdn,
            bcdn,
            origin,
        }
    }

    /// Sends one client request through the cascade. With telemetry
    /// attached, the request roots a new trace whose spans cover
    /// client→FCDN, FCDN→BCDN and BCDN→origin, and the OBR amplification
    /// factor (victim `fcdn-bcdn` bytes ÷ attacker bytes) is recorded.
    pub fn request(&self, req: &Request) -> Response {
        let Some(tel) = self.fcdn.telemetry().cloned() else {
            self.client_segment.send_request(req);
            let resp = self.fcdn.handle(req);
            self.client_segment.send_response(&resp);
            return resp;
        };
        let clock = self.fcdn.resilience().clock().clone();
        let start_ms = clock.now_millis();
        let middle_before = self.fcdn.origin_segment().stats();

        self.client_segment.send_request(req);
        let mut span = tel
            .tracer()
            .start_trace("client-request", SpanKind::Request, start_ms);
        let fcdn_vendor = self.fcdn.profile().vendor.to_string();
        span.attr("fcdn", fcdn_vendor.clone());
        span.attr("bcdn", self.bcdn.profile().vendor.to_string());
        span.attr("uri", req.uri().to_string());
        if let Some(range) = req.headers().get("range") {
            span.attr("range", range);
        }
        span.add_bytes_in(req.wire_len());
        let resp = self.fcdn.handle(req);
        span.add_bytes_out(resp.wire_len());
        span.attr("status", resp.status().as_u16().to_string());
        span.finish(clock.now_millis());
        self.client_segment.send_response(&resp);

        let victim_bytes =
            self.fcdn.origin_segment().stats().response_bytes - middle_before.response_bytes;
        let labels = [("fcdn", fcdn_vendor.as_str())];
        tel.metrics()
            .counter_add("client_requests_total", &labels, 1);
        tel.metrics().observe_with(
            "amplification_factor",
            &labels,
            &FACTOR_BUCKETS,
            victim_bytes / resp.wire_len().max(1),
        );
        resp
    }

    /// Like [`CascadeTestbed::request`], but the attacker only receives
    /// `receive_window` bytes of the response before aborting (§IV-C's
    /// small-TCP-window / early-abort trick).
    pub fn request_with_small_window(&self, req: &Request, receive_window: u64) -> Response {
        self.client_segment.send_request(req);
        let resp = self.fcdn.handle(req);
        self.client_segment
            .send_response_truncated(&resp, receive_window);
        resp
    }

    /// The attacker-facing segment (`client-fcdn`).
    pub fn client_segment(&self) -> &Segment {
        &self.client_segment
    }

    /// The victim segment of the OBR attack (`fcdn-bcdn`).
    pub fn fcdn_bcdn_segment(&self) -> &Segment {
        self.fcdn.origin_segment()
    }

    /// The `bcdn-origin` segment.
    pub fn bcdn_origin_segment(&self) -> &Segment {
        self.bcdn.origin_segment()
    }

    /// The FCDN node.
    pub fn fcdn(&self) -> &EdgeNode {
        &self.fcdn
    }

    /// The BCDN node.
    pub fn bcdn(&self) -> &Arc<EdgeNode> {
        &self.bcdn
    }

    /// The origin server (the attacker's, range support off).
    pub fn origin(&self) -> &Arc<OriginServer> {
        &self.origin
    }

    /// Zeroes all traffic counters.
    pub fn reset_traffic(&self) {
        self.client_segment.reset();
        self.fcdn.origin_segment().reset();
        self.bcdn.origin_segment().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rangeamp_http::StatusCode;

    #[test]
    fn testbed_meters_both_segments() {
        let bed = Testbed::builder()
            .vendor(Vendor::Akamai)
            .resource("/f.bin", 100_000)
            .build();
        let req = Request::get("/f.bin?r=1")
            .header("Host", TARGET_HOST)
            .header("Range", "bytes=0-0")
            .build();
        let resp = bed.request(&req);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        assert_eq!(bed.client_segment().stats().requests, 1);
        assert_eq!(bed.origin_segment().stats().requests, 1);
        assert!(bed.origin_segment().stats().response_bytes > 100_000);
        assert!(bed.client_segment().stats().response_bytes < 2000);
    }

    #[test]
    fn reset_traffic_zeroes_counters() {
        let bed = Testbed::builder().build();
        let req = Request::get(TARGET_PATH)
            .header("Host", TARGET_HOST)
            .build();
        bed.request(&req);
        bed.reset_traffic();
        assert_eq!(bed.client_segment().stats().requests, 0);
        assert_eq!(bed.origin_segment().stats().requests, 0);
    }

    #[test]
    fn cascade_routes_through_both_cdns() {
        let bed = CascadeTestbed::new(Vendor::Cloudflare, Vendor::Akamai);
        let req = Request::get(TARGET_PATH)
            .header("Host", TARGET_HOST)
            .header("Range", "bytes=0-,0-,0-")
            .build();
        let resp = bed.request(&req);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        // Origin shipped 1 KB once; the fcdn-bcdn link carried ~3 KB.
        let origin_bytes = bed.bcdn_origin_segment().stats().response_bytes;
        let middle_bytes = bed.fcdn_bcdn_segment().stats().response_bytes;
        assert!(origin_bytes < 2_500, "origin sent {origin_bytes}");
        assert!(middle_bytes > 3_000, "middle carried {middle_bytes}");
    }

    #[test]
    fn small_receive_window_caps_attacker_cost() {
        let bed = CascadeTestbed::new(Vendor::StackPath, Vendor::Akamai);
        let req = Request::get(TARGET_PATH)
            .header("Host", TARGET_HOST)
            .header("Range", "bytes=0-,0-,0-,0-")
            .build();
        bed.request_with_small_window(&req, 512);
        assert_eq!(bed.client_segment().stats().response_bytes, 512);
        assert!(bed.client_segment().is_aborted());
    }
}
