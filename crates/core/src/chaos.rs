//! Chaos campaigns: the paper's amplification experiments re-run under
//! deterministic fault injection, with retry-amplification accounting.
//!
//! The paper's steady-state numbers (Tables IV/V) assume the CDN → origin
//! path never fails. Real edges retry failed fetches, trip circuit
//! breakers, and fall back to stale cache entries — and every *retry* of
//! an amplified fetch multiplies the origin-side damage again. A chaos
//! campaign replays a vendor's exploited range case for many rounds under
//! a seeded [`FaultPlan`] and reports how much of the back-to-origin
//! traffic was retry traffic.
//!
//! Everything is deterministic: the fault schedule is seeded per vendor,
//! backoff advances a virtual clock, and reports iterate vendors in
//! [`Vendor::ALL`] order — the same seed always produces byte-identical
//! output.

use rangeamp_cdn::{BreakerConfig, ResilienceStats, Vendor};
use rangeamp_http::Request;
use rangeamp_net::{FaultPlan, FaultRates, SegmentStats, Telemetry};

use crate::attack::{exploited_range_case, obr_combos, ObrAttack};
use crate::executor::Executor;
use crate::testbed::{CascadeTestbed, Testbed, TARGET_HOST, TARGET_PATH};

/// Parameters of a chaos campaign.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Base RNG seed; each vendor's fault schedule derives from it.
    pub seed: u64,
    /// Attack rounds per vendor (each round is one exploited case, one
    /// cache-busted URL).
    pub rounds: u32,
    /// Target resource size in bytes.
    pub resource_size: u64,
    /// Per-transfer fault probabilities on the CDN → origin path.
    pub rates: FaultRates,
    /// Circuit-breaker configuration for every edge in the campaign.
    pub breaker: BreakerConfig,
    /// Edge-cache TTL in virtual ms; `None` keeps entries fresh forever
    /// (serve-stale then never triggers).
    pub cache_ttl_ms: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xCD4_BACF1,
            rounds: 32,
            resource_size: 1024 * 1024,
            rates: FaultRates {
                origin_5xx: 0.15,
                timeout: 0.08,
                connection_reset: 0.08,
                truncation: 0.05,
                slow_link: 0.04,
            },
            breaker: BreakerConfig::default(),
            cache_ttl_ms: None,
        }
    }
}

impl ChaosConfig {
    /// The fault-schedule seed for `vendor`: distinct per vendor but a
    /// pure function of the base seed, so campaigns are reproducible
    /// vendor by vendor.
    pub fn vendor_seed(&self, vendor: Vendor) -> u64 {
        let index = Vendor::ALL
            .iter()
            .position(|v| *v == vendor)
            .expect("vendor is in Vendor::ALL") as u64;
        self.seed ^ (index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Outcome of one vendor's SBR chaos campaign.
#[derive(Debug, Clone, Copy)]
pub struct VendorChaosReport {
    /// The vendor under test.
    pub vendor: Vendor,
    /// Rounds executed.
    pub rounds: u32,
    /// Attacker-side (`client-cdn`) traffic counters.
    pub client: SegmentStats,
    /// Victim-side (`cdn-origin`) traffic counters.
    pub origin: SegmentStats,
    /// Retry/breaker/stale counters from the edge's resilience layer.
    pub resilience: ResilienceStats,
    /// Times the edge's circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Client-facing responses with status ≥ 500 (failures that survived
    /// retries, breaker short-circuits and serve-stale).
    pub client_errors: u64,
    /// Edge-cache lookups answered from a fresh entry.
    pub cache_hits: u64,
    /// Edge-cache lookups that missed (or found only an expired entry).
    pub cache_misses: u64,
}

impl VendorChaosReport {
    /// Back-to-origin response bytes attributable to first attempts
    /// (total minus retry traffic).
    pub fn first_attempt_origin_bytes(&self) -> u64 {
        self.origin
            .response_bytes
            .saturating_sub(self.resilience.retry_response_bytes)
    }

    /// The retry-amplification factor: total origin response bytes over
    /// first-attempt origin response bytes. `1.0` means no retry ever
    /// re-shipped data; `1.3` means retries inflated the origin's damage
    /// by 30% on top of the range-amplification itself.
    pub fn retry_amplification(&self) -> f64 {
        let first = self.first_attempt_origin_bytes();
        if first == 0 {
            return 1.0;
        }
        self.origin.response_bytes as f64 / first as f64
    }

    /// Mean upstream attempts per logical fetch.
    pub fn attempts_per_fetch(&self) -> f64 {
        let fetches = self.resilience.attempts - self.resilience.retries;
        if fetches == 0 {
            return 0.0;
        }
        self.resilience.attempts as f64 / fetches as f64
    }

    /// Fraction of client responses that were not 5xx.
    pub fn availability(&self) -> f64 {
        if self.client.responses == 0 {
            return 1.0;
        }
        1.0 - self.client_errors as f64 / self.client.responses as f64
    }

    /// Mean retries per client request.
    pub fn retries_per_request(&self) -> f64 {
        if self.client.requests == 0 {
            return 0.0;
        }
        self.resilience.retries as f64 / self.client.requests as f64
    }

    /// Fraction of edge-cache lookups answered from a fresh entry.
    pub fn cache_hit_ratio(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / lookups as f64
    }
}

/// Runs one vendor's exploited SBR case for `config.rounds` rounds under
/// that vendor's derived fault schedule.
pub fn run_sbr_chaos(vendor: Vendor, config: &ChaosConfig) -> VendorChaosReport {
    run_sbr_chaos_with(vendor, config, None)
}

/// [`run_sbr_chaos`] with an optional telemetry bundle: every round is
/// traced end to end, and after the run the campaign publishes gauges
/// (`retries_per_request`, `cache_hit_ratio`) computed from the *same*
/// authoritative counters the report carries, so metrics and
/// [`ResilienceStats`] can never disagree.
pub fn run_sbr_chaos_with(
    vendor: Vendor,
    config: &ChaosConfig,
    telemetry: Option<&Telemetry>,
) -> VendorChaosReport {
    let plan = FaultPlan::with_rates(config.vendor_seed(vendor), config.rates);
    let mut builder = Testbed::builder()
        .vendor(vendor)
        .resource(TARGET_PATH, config.resource_size)
        .fault_plan(plan)
        .breaker(config.breaker);
    if let Some(ttl) = config.cache_ttl_ms {
        builder = builder.cache_ttl_ms(ttl);
    }
    if let Some(tel) = telemetry {
        builder = builder.telemetry(tel.clone());
    }
    let bed = builder.build();
    let case = exploited_range_case(vendor, config.resource_size);
    let mut client_errors = 0u64;
    for round in 0..config.rounds {
        let uri = format!("{TARGET_PATH}?rnd={round:08x}");
        for range in &case.ranges {
            let req = Request::get(&uri)
                .header("Host", TARGET_HOST)
                .header("Range", range.to_string())
                .build();
            let resp = bed.request(&req);
            if resp.status().as_u16() >= 500 {
                client_errors += 1;
            }
        }
    }
    let resilience = bed.edge().resilience();
    let (cache_hits, cache_misses) = bed.edge().cache().stats();
    let report = VendorChaosReport {
        vendor,
        rounds: config.rounds,
        client: bed.client_segment().stats(),
        origin: bed.origin_segment().stats(),
        resilience: resilience.stats(),
        breaker_opens: resilience.breaker_opens(),
        client_errors,
        cache_hits,
        cache_misses,
    };
    if let Some(tel) = telemetry {
        publish_vendor_metrics(tel, &report);
    }
    report
}

/// Publishes a finished vendor report into the metrics registry, keyed
/// per vendor, from the report's own counters.
fn publish_vendor_metrics(tel: &Telemetry, report: &VendorChaosReport) {
    let vendor = report.vendor.to_string();
    let labels = [("vendor", vendor.as_str())];
    let metrics = tel.metrics();
    metrics.counter_add("chaos_attempts_total", &labels, report.resilience.attempts);
    metrics.counter_add("chaos_retries_total", &labels, report.resilience.retries);
    metrics.counter_add("chaos_breaker_opens_total", &labels, report.breaker_opens);
    metrics.counter_add(
        "chaos_stale_serves_total",
        &labels,
        report.resilience.stale_serves,
    );
    metrics.counter_add("chaos_client_errors_total", &labels, report.client_errors);
    metrics.counter_add("cache_hits_total", &labels, report.cache_hits);
    metrics.counter_add("cache_misses_total", &labels, report.cache_misses);
    metrics.gauge_set("retries_per_request", &labels, report.retries_per_request());
    metrics.gauge_set("cache_hit_ratio", &labels, report.cache_hit_ratio());
    metrics.gauge_set("retry_amplification", &labels, report.retry_amplification());
    metrics.gauge_set("availability", &labels, report.availability());
}

/// Runs [`run_sbr_chaos`] for every vendor, in [`Vendor::ALL`] order.
pub fn run_sbr_campaign(config: &ChaosConfig) -> Vec<VendorChaosReport> {
    run_sbr_campaign_with(config, None)
}

/// [`run_sbr_campaign`] with an optional telemetry bundle threaded into
/// every vendor's run (single-shard executor).
pub fn run_sbr_campaign_with(
    config: &ChaosConfig,
    telemetry: Option<&Telemetry>,
) -> Vec<VendorChaosReport> {
    run_sbr_campaign_exec(config, telemetry, &Executor::sequential())
}

/// [`run_sbr_campaign`] sharded over a deterministic [`Executor`].
///
/// Each vendor is one unit: its fault schedule still derives from
/// [`ChaosConfig::vendor_seed`] (unchanged by parallelism), and when a
/// telemetry bundle is supplied every unit traces into its *own* bundle
/// seeded from the executor's per-unit seed stream; the bundles are
/// absorbed into `telemetry` in vendor order after the parallel section.
/// Reports, rendered tables, metrics snapshots and Chrome-trace exports
/// are therefore byte-identical at any thread count.
pub fn run_sbr_campaign_exec(
    config: &ChaosConfig,
    telemetry: Option<&Telemetry>,
    executor: &Executor,
) -> Vec<VendorChaosReport> {
    let traced = telemetry.is_some();
    let results = executor.map(config.seed, Vendor::ALL.to_vec(), |ctx, vendor| {
        let unit_tel = traced.then(|| Telemetry::seeded(ctx.seed));
        let report = run_sbr_chaos_with(vendor, config, unit_tel.as_ref());
        (report, unit_tel)
    });
    let mut reports = Vec::with_capacity(results.len());
    for (report, unit_tel) in results {
        if let (Some(main), Some(unit)) = (telemetry, unit_tel.as_ref()) {
            main.absorb(unit);
        }
        reports.push(report);
    }
    reports
}

/// Runs [`run_obr_chaos`] for every vulnerable FCDN → BCDN combination
/// (the paper's 11 Table V cascades), in [`obr_combos`] order.
pub fn run_obr_campaign(config: &ChaosConfig) -> Vec<CascadeChaosReport> {
    run_obr_campaign_exec(config, None, &Executor::sequential())
}

/// [`run_obr_campaign`] sharded over a deterministic [`Executor`], with
/// an optional telemetry bundle absorbed in combo order (same contract
/// as [`run_sbr_campaign_exec`]).
pub fn run_obr_campaign_exec(
    config: &ChaosConfig,
    telemetry: Option<&Telemetry>,
    executor: &Executor,
) -> Vec<CascadeChaosReport> {
    let traced = telemetry.is_some();
    let results = executor.map(config.seed, obr_combos(), |ctx, (fcdn, bcdn)| {
        let unit_tel = traced.then(|| Telemetry::seeded(ctx.seed));
        let report = run_obr_chaos_with(fcdn, bcdn, config, unit_tel.as_ref());
        (report, unit_tel)
    });
    let mut reports = Vec::with_capacity(results.len());
    for (report, unit_tel) in results {
        if let (Some(main), Some(unit)) = (telemetry, unit_tel.as_ref()) {
            main.absorb(unit);
        }
        reports.push(report);
    }
    reports
}

/// Outcome of one cascaded OBR chaos run.
#[derive(Debug, Clone, Copy)]
pub struct CascadeChaosReport {
    /// Front-end CDN.
    pub fcdn: Vendor,
    /// Back-end CDN.
    pub bcdn: Vendor,
    /// Rounds executed.
    pub rounds: u32,
    /// `fcdn-bcdn` (victim link) traffic counters.
    pub middle: SegmentStats,
    /// `bcdn-origin` traffic counters.
    pub origin: SegmentStats,
    /// The FCDN edge's resilience counters (retries into the BCDN).
    pub fcdn_resilience: ResilienceStats,
    /// The BCDN edge's resilience counters (retries into the origin).
    pub bcdn_resilience: ResilienceStats,
    /// Breaker trips at the FCDN.
    pub fcdn_breaker_opens: u64,
    /// Breaker trips at the BCDN.
    pub bcdn_breaker_opens: u64,
}

impl CascadeChaosReport {
    /// Retry amplification on the victim (`fcdn-bcdn`) link: every FCDN
    /// retry re-ships the BCDN's n-part overlapping response.
    pub fn middle_retry_amplification(&self) -> f64 {
        let first = self
            .middle
            .response_bytes
            .saturating_sub(self.fcdn_resilience.retry_response_bytes);
        if first == 0 {
            return 1.0;
        }
        self.middle.response_bytes as f64 / first as f64
    }
}

/// Runs an OBR cascade for `config.rounds` rounds with faults injected
/// on the `bcdn-origin` path. The OBR `n` is kept small (the damage
/// under study is the *retry* multiplier, not the part count).
pub fn run_obr_chaos(fcdn: Vendor, bcdn: Vendor, config: &ChaosConfig) -> CascadeChaosReport {
    run_obr_chaos_with(fcdn, bcdn, config, None)
}

/// [`run_obr_chaos`] with an optional telemetry bundle shared by both
/// edges and the origin.
pub fn run_obr_chaos_with(
    fcdn: Vendor,
    bcdn: Vendor,
    config: &ChaosConfig,
    telemetry: Option<&Telemetry>,
) -> CascadeChaosReport {
    let seed = config.vendor_seed(fcdn) ^ config.vendor_seed(bcdn).rotate_left(17);
    let plan = FaultPlan::with_rates(seed, config.rates);
    let bed = CascadeTestbed::with_chaos_telemetry(
        fcdn.fcdn_profile(),
        bcdn.profile(),
        1024,
        plan,
        config.breaker,
        telemetry.cloned(),
    );
    let attack = ObrAttack::new(fcdn, bcdn).overlapping_ranges(16);
    let case = attack.range_case();
    for round in 0..config.rounds {
        let req = Request::get(&format!("{TARGET_PATH}?rnd={round:08x}"))
            .header("Host", TARGET_HOST)
            .header("Range", case.header(16).to_string())
            .build();
        bed.request(&req);
    }
    let fcdn_res = bed.fcdn().resilience();
    let bcdn_res = bed.bcdn().resilience();
    CascadeChaosReport {
        fcdn,
        bcdn,
        rounds: config.rounds,
        middle: bed.fcdn_bcdn_segment().stats(),
        origin: bed.bcdn_origin_segment().stats(),
        fcdn_resilience: fcdn_res.stats(),
        bcdn_resilience: bcdn_res.stats(),
        fcdn_breaker_opens: fcdn_res.breaker_opens(),
        bcdn_breaker_opens: bcdn_res.breaker_opens(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ChaosConfig {
        ChaosConfig {
            rounds: 12,
            resource_size: 64 * 1024,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn same_seed_same_bytes() {
        let config = small_config();
        let a = run_sbr_chaos(Vendor::Akamai, &config);
        let b = run_sbr_chaos(Vendor::Akamai, &config);
        assert_eq!(a.client, b.client);
        assert_eq!(a.origin, b.origin);
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a.client_errors, b.client_errors);
    }

    #[test]
    fn different_seeds_diverge() {
        let config = small_config();
        let other = ChaosConfig {
            seed: config.seed + 1,
            ..config
        };
        let a = run_sbr_chaos(Vendor::Akamai, &config);
        let b = run_sbr_chaos(Vendor::Akamai, &other);
        // Fault schedules differ, so some counter must differ.
        assert!(
            a.origin != b.origin || a.resilience != b.resilience,
            "distinct seeds should produce distinct campaigns"
        );
    }

    #[test]
    fn healthy_rates_mean_no_retries() {
        let config = ChaosConfig {
            rates: FaultRates::HEALTHY,
            ..small_config()
        };
        let report = run_sbr_chaos(Vendor::Akamai, &config);
        assert_eq!(report.resilience.retries, 0);
        assert_eq!(report.resilience.upstream_failures, 0);
        assert_eq!(report.breaker_opens, 0);
        assert_eq!(report.client_errors, 0);
        assert!((report.retry_amplification() - 1.0).abs() < f64::EPSILON);
        assert!((report.availability() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn flaky_origin_inflates_retry_amplification() {
        let report = run_sbr_chaos(Vendor::Akamai, &small_config());
        assert!(
            report.resilience.upstream_failures > 0,
            "faults should fire"
        );
        assert!(report.resilience.retries > 0, "Akamai retries failures");
        assert!(
            report.retry_amplification() > 1.0,
            "retries re-ship amplified fetches: {}",
            report.retry_amplification()
        );
        assert!(report.attempts_per_fetch() > 1.0);
    }

    #[test]
    fn fastly_never_retries() {
        // Fastly's policy is fail-fast (RetryPolicy::none()).
        let report = run_sbr_chaos(Vendor::Fastly, &small_config());
        assert_eq!(report.resilience.retries, 0);
        assert!((report.retry_amplification() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn campaign_covers_all_vendors_in_order() {
        let config = ChaosConfig {
            rounds: 2,
            resource_size: 16 * 1024,
            ..ChaosConfig::default()
        };
        let reports = run_sbr_campaign(&config);
        assert_eq!(reports.len(), Vendor::ALL.len());
        for (report, vendor) in reports.iter().zip(Vendor::ALL) {
            assert_eq!(report.vendor, vendor);
        }
    }

    #[test]
    fn campaign_is_byte_identical_across_thread_counts() {
        let config = ChaosConfig {
            rounds: 4,
            resource_size: 32 * 1024,
            ..ChaosConfig::default()
        };
        let run = |threads: usize| {
            let tel = Telemetry::seeded(config.seed);
            let reports = run_sbr_campaign_exec(&config, Some(&tel), &Executor::new(threads));
            let digest: Vec<String> = reports.iter().map(|r| format!("{r:?}")).collect();
            (
                digest,
                tel.metrics().snapshot().render(),
                tel.tracer().chrome_trace_json(),
            )
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn obr_campaign_covers_all_combos_at_any_thread_count() {
        let config = ChaosConfig {
            rounds: 2,
            ..ChaosConfig::default()
        };
        let seq = run_obr_campaign(&config);
        assert_eq!(seq.len(), crate::attack::obr_combos().len());
        let par = run_obr_campaign_exec(&config, None, &Executor::new(5));
        let digest = |rs: &[CascadeChaosReport]| -> Vec<String> {
            rs.iter().map(|r| format!("{r:?}")).collect()
        };
        assert_eq!(digest(&seq), digest(&par));
    }

    #[test]
    fn obr_chaos_is_deterministic() {
        let config = ChaosConfig {
            rounds: 6,
            ..ChaosConfig::default()
        };
        let a = run_obr_chaos(Vendor::Cloudflare, Vendor::Akamai, &config);
        let b = run_obr_chaos(Vendor::Cloudflare, Vendor::Akamai, &config);
        assert_eq!(a.middle, b.middle);
        assert_eq!(a.origin, b.origin);
        assert_eq!(a.fcdn_resilience, b.fcdn_resilience);
        assert_eq!(a.bcdn_resilience, b.bcdn_resilience);
    }
}
