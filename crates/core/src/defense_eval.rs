//! Evaluation harness for the online defense layer (DESIGN.md §12).
//!
//! Each scenario replays a mixed workload — the four benign client
//! archetypes of §II-B plus one attacker running a Table IV SBR case or
//! a Table V OBR cascade — against a testbed twice: once undefended and
//! once with a fresh [`DefenseLayer`] attached to the victim-facing
//! edge. Requests follow a virtual-time schedule (the edge clock is
//! advanced to each event's timestamp), so the defense's sliding
//! windows, token buckets and calm-window de-escalation behave exactly
//! as they would online.
//!
//! The harness reports, per scenario: whether the attacker was
//! detected and how long detection took, precision/recall of suspect
//! verdicts over the labeled request stream, how far enforcement cut
//! the victim-link bytes versus the undefended twin, and the residual
//! amplification the attacker retained while enforcement was active.
//!
//! Scenarios are independent [`Executor`] units — reports are
//! byte-identical at any thread count.

use std::sync::Arc;

use rangeamp_cdn::{DefenseAction, Vendor};
use rangeamp_defense::{DefenseLayer, EnforceConfig};
use rangeamp_http::Request;
use serde::Serialize;

use crate::attack::{exploited_range_case, obr_combos, ObrAttack};
use crate::executor::{splitmix64, Executor};
use crate::testbed::{CascadeTestbed, Testbed, TARGET_HOST, TARGET_PATH};
use crate::workload::{BenignClient, WorkloadGenerator};

/// One scenario of the defense evaluation campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseScenario {
    /// A Table IV SBR attacker against one vendor's edge.
    Sbr(Vendor),
    /// A Table V OBR attacker against an FCDN→BCDN cascade; the
    /// defense sits on the FCDN, whose origin-facing segment is the
    /// victim link.
    Obr(Vendor, Vendor),
}

impl DefenseScenario {
    /// Stable human-readable label (also the report's sort identity).
    pub fn label(&self) -> String {
        match self {
            DefenseScenario::Sbr(vendor) => format!("sbr {}", vendor.name()),
            DefenseScenario::Obr(fcdn, bcdn) => {
                format!("obr {} -> {}", fcdn.name(), bcdn.name())
            }
        }
    }

    /// The full campaign: 13 SBR scenarios + the 11 OBR combos.
    pub fn all() -> Vec<DefenseScenario> {
        let mut scenarios: Vec<DefenseScenario> = Vendor::ALL
            .iter()
            .copied()
            .map(DefenseScenario::Sbr)
            .collect();
        scenarios.extend(
            obr_combos()
                .into_iter()
                .map(|(fcdn, bcdn)| DefenseScenario::Obr(fcdn, bcdn)),
        );
        scenarios
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseEvalConfig {
    /// SBR target resource size (Table IV uses multi-MB files; 1 MB
    /// keeps every vendor's exploited case shape intact).
    pub sbr_resource_size: u64,
    /// OBR target resource size (Table V's 1 KB configuration).
    pub obr_resource_size: u64,
    /// Total virtual duration of one scenario.
    pub duration_ms: u64,
    /// Attack burst start (benign-only warmup before it).
    pub attack_start_ms: u64,
    /// Attack burst end (benign-only cooldown after it).
    pub attack_end_ms: u64,
    /// Virtual interval between one benign client's requests.
    pub benign_interval_ms: u64,
    /// Virtual interval between attack rounds.
    pub attack_interval_ms: u64,
    /// Overlapping ranges per OBR round (capped by the header solver).
    pub obr_ranges: usize,
    /// Enforcement configuration for the defended run.
    pub enforce: EnforceConfig,
}

impl Default for DefenseEvalConfig {
    fn default() -> DefenseEvalConfig {
        DefenseEvalConfig {
            sbr_resource_size: 1024 * 1024,
            obr_resource_size: 1024,
            duration_ms: 40_000,
            attack_start_ms: 10_000,
            attack_end_ms: 30_000,
            benign_interval_ms: 1_000,
            attack_interval_ms: 500,
            obr_ranges: 32,
            enforce: EnforceConfig::default(),
        }
    }
}

/// Per-action request counts for the attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub struct ActionCounts {
    /// Requests decided Allow.
    pub allowed: u64,
    /// Requests handled under Deflate.
    pub deflated: u64,
    /// Requests handled under Throttle.
    pub throttled: u64,
    /// Requests answered 429.
    pub blocked: u64,
}

/// One row of the defense evaluation table.
#[derive(Debug, Clone, Serialize)]
pub struct DefenseScenarioReport {
    /// Scenario label (`sbr <vendor>` / `obr <fcdn> -> <bcdn>`).
    pub scenario: String,
    /// `"sbr"` or `"obr"`.
    pub kind: String,
    /// The exploited range case the attacker used.
    pub exploited_case: String,
    /// Attack requests sent (KeyCDN rounds send two).
    pub attack_requests: u64,
    /// Benign requests sent across the four archetype clients.
    pub benign_requests: u64,
    /// Whether the attacker accumulated any suspect verdict.
    pub detected: bool,
    /// Virtual ms from burst start to the first suspect verdict.
    pub detection_latency_ms: Option<u64>,
    /// Suspect verdicts on attacker requests (true positives).
    pub attacker_suspect_verdicts: u64,
    /// Suspect verdicts on benign requests (false positives).
    pub benign_suspect_verdicts: u64,
    /// Benign requests answered 429 — must stay zero.
    pub benign_requests_blocked: u64,
    /// Suspect-verdict precision over the labeled stream.
    pub precision: f64,
    /// Fraction of attack requests carrying a suspect verdict.
    pub recall: f64,
    /// The most severe action the attacker reached.
    pub peak_action: String,
    /// Victim-link response bytes without the defense.
    pub undefended_victim_bytes: u64,
    /// Victim-link response bytes with the defense attached.
    pub defended_victim_bytes: u64,
    /// Origin bytes per attacker request byte while enforcement was
    /// active (0 if enforcement never engaged).
    pub residual_amplification: f64,
    /// Attacker request counts per action.
    pub actions: ActionCounts,
}

impl DefenseScenarioReport {
    /// `defended / undefended` victim bytes (1.0 when undefended is 0).
    pub fn victim_byte_ratio(&self) -> f64 {
        if self.undefended_victim_bytes == 0 {
            1.0
        } else {
            self.defended_victim_bytes as f64 / self.undefended_victim_bytes as f64
        }
    }
}

/// The attacker's client id in every scenario.
pub const ATTACKER_ID: &str = "mallory";

/// One scheduled request of a scenario's virtual-time timeline.
#[derive(Debug, Clone)]
struct ScheduledEvent {
    at_ms: u64,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone)]
enum EventKind {
    Benign(BenignClient),
    AttackRound(u64),
}

fn benign_client_id(client: BenignClient) -> &'static str {
    match client {
        BenignClient::FullDownload => "alice",
        BenignClient::ResumeFromBreakpoint => "bob",
        BenignClient::MediaSeek => "carol",
        BenignClient::MultiThreadDownload => "dave",
    }
}

/// Builds the deterministic schedule: each benign archetype fires every
/// `benign_interval_ms` for the whole run, the attacker every
/// `attack_interval_ms` inside the burst window. Ties at one timestamp
/// resolve by construction order (benign archetypes first, then the
/// attacker), fixed by the `seq` key.
fn build_schedule(config: &DefenseEvalConfig) -> Vec<ScheduledEvent> {
    let mut events = Vec::new();
    let mut seq = 0u64;
    for (slot, client) in BenignClient::ALL.iter().enumerate() {
        // Stagger archetypes inside the interval so they do not all
        // land on the same virtual millisecond.
        let offset = (slot as u64 * config.benign_interval_ms) / BenignClient::ALL.len() as u64;
        let mut t = offset;
        while t < config.duration_ms {
            events.push(ScheduledEvent {
                at_ms: t,
                seq,
                kind: EventKind::Benign(*client),
            });
            seq += 1;
            t += config.benign_interval_ms;
        }
    }
    let mut round = 0u64;
    let mut t = config.attack_start_ms;
    while t < config.attack_end_ms {
        events.push(ScheduledEvent {
            at_ms: t,
            seq,
            kind: EventKind::AttackRound(round),
        });
        seq += 1;
        round += 1;
        t += config.attack_interval_ms;
    }
    events.sort_by_key(|event| (event.at_ms, event.seq));
    events
}

/// The two testbed shapes a scenario can run on.
enum ScenarioBed {
    Single(Testbed),
    Cascade(CascadeTestbed),
}

impl ScenarioBed {
    fn advance_to(&self, at_ms: u64) {
        let clock = match self {
            ScenarioBed::Single(bed) => bed.edge().resilience().clock().clone(),
            ScenarioBed::Cascade(bed) => bed.fcdn().resilience().clock().clone(),
        };
        let now = clock.now_millis();
        if at_ms > now {
            clock.advance_millis(at_ms - now);
        }
    }

    fn request(&self, req: &Request) {
        match self {
            ScenarioBed::Single(bed) => {
                bed.request(req);
            }
            ScenarioBed::Cascade(bed) => {
                bed.request(req);
            }
        }
    }

    /// The OBR attacker caps their own cost with a small receive
    /// window (§IV-C); the SBR attacker reads the short reply whole.
    fn attack_request(&self, req: &Request) {
        match self {
            ScenarioBed::Single(bed) => {
                bed.request(req);
            }
            ScenarioBed::Cascade(bed) => {
                bed.request_with_small_window(req, 1024);
            }
        }
    }

    fn victim_bytes(&self) -> u64 {
        match self {
            ScenarioBed::Single(bed) => bed.origin_segment().stats().response_bytes,
            ScenarioBed::Cascade(bed) => bed.fcdn_bcdn_segment().stats().response_bytes,
        }
    }
}

fn build_bed(
    scenario: DefenseScenario,
    config: &DefenseEvalConfig,
    defense: Option<Arc<DefenseLayer>>,
) -> ScenarioBed {
    match scenario {
        DefenseScenario::Sbr(vendor) => {
            let mut builder = Testbed::builder()
                .vendor(vendor)
                .resource(TARGET_PATH, config.sbr_resource_size);
            if let Some(layer) = defense {
                builder = builder.defense(layer);
            }
            ScenarioBed::Single(builder.build())
        }
        DefenseScenario::Obr(fcdn, bcdn) => ScenarioBed::Cascade(match defense {
            Some(layer) => CascadeTestbed::with_profiles_defense(
                fcdn.fcdn_profile(),
                bcdn.profile(),
                config.obr_resource_size,
                layer,
            ),
            None => CascadeTestbed::with_profiles(
                fcdn.fcdn_profile(),
                bcdn.profile(),
                config.obr_resource_size,
            ),
        }),
    }
}

/// One run of a scenario's schedule; returns
/// `(attack_requests, benign_requests, victim_bytes)`.
fn drive_schedule(
    bed: &ScenarioBed,
    scenario: DefenseScenario,
    config: &DefenseEvalConfig,
    seed: u64,
    generator: &mut WorkloadGenerator,
) -> (u64, u64, u64) {
    let mut attack_requests = 0u64;
    let mut benign_requests = 0u64;
    for event in build_schedule(config) {
        bed.advance_to(event.at_ms);
        match event.kind {
            EventKind::Benign(client) => {
                let labeled = generator
                    .benign(client)
                    .with_client_id(benign_client_id(client));
                bed.request(&labeled.request);
                benign_requests += 1;
            }
            EventKind::AttackRound(round) => match scenario {
                DefenseScenario::Sbr(vendor) => {
                    let case = exploited_range_case(vendor, config.sbr_resource_size);
                    let rnd = splitmix64(seed ^ round.wrapping_mul(0x9E37));
                    let uri = format!("{TARGET_PATH}?rnd={rnd:016x}");
                    for range in &case.ranges {
                        let req = Request::get(&uri)
                            .header("Host", TARGET_HOST)
                            .header("X-Client-Id", ATTACKER_ID)
                            .header("Range", range.to_string())
                            .build();
                        bed.attack_request(&req);
                        attack_requests += 1;
                    }
                }
                DefenseScenario::Obr(fcdn, bcdn) => {
                    let attack = ObrAttack::new(fcdn, bcdn);
                    let n = config.obr_ranges.min(attack.max_n()).max(2);
                    let rnd = splitmix64(seed ^ round.wrapping_mul(0x9E37));
                    let uri = format!("{TARGET_PATH}?rnd={rnd:016x}");
                    let req = Request::get(&uri)
                        .header("Host", TARGET_HOST)
                        .header("X-Client-Id", ATTACKER_ID)
                        .header("Range", attack.range_case().header(n).to_string())
                        .build();
                    bed.attack_request(&req);
                    attack_requests += 1;
                }
            },
        }
    }
    (attack_requests, benign_requests, bed.victim_bytes())
}

/// Runs one scenario: an undefended and a defended twin over the same
/// schedule and workload seed, then assembles the report row.
pub fn run_scenario(
    scenario: DefenseScenario,
    config: &DefenseEvalConfig,
    seed: u64,
) -> DefenseScenarioReport {
    let resource_size = match scenario {
        DefenseScenario::Sbr(_) => config.sbr_resource_size,
        DefenseScenario::Obr(..) => config.obr_resource_size,
    };

    let undefended_bed = build_bed(scenario, config, None);
    let mut generator = WorkloadGenerator::new(seed, resource_size);
    let (_, _, undefended_victim_bytes) =
        drive_schedule(&undefended_bed, scenario, config, seed, &mut generator);

    let layer = Arc::new(DefenseLayer::new(config.enforce));
    let defended_bed = build_bed(scenario, config, Some(layer.clone()));
    let mut generator = WorkloadGenerator::new(seed, resource_size);
    let (attack_requests, benign_requests, defended_victim_bytes) =
        drive_schedule(&defended_bed, scenario, config, seed, &mut generator);

    let attacker = layer.client_report(ATTACKER_ID).unwrap_or_default();
    let mut benign_suspect_verdicts = 0u64;
    let mut benign_requests_blocked = 0u64;
    for report in layer.report() {
        if report.client != ATTACKER_ID {
            benign_suspect_verdicts += report.suspects;
            benign_requests_blocked += report.blocked;
        }
    }

    let exploited_case = match scenario {
        DefenseScenario::Sbr(vendor) => {
            exploited_range_case(vendor, config.sbr_resource_size).description
        }
        DefenseScenario::Obr(fcdn, bcdn) => ObrAttack::new(fcdn, bcdn)
            .range_case()
            .describe()
            .to_string(),
    };

    let tp = attacker.suspects;
    let precision = if tp + benign_suspect_verdicts == 0 {
        1.0
    } else {
        tp as f64 / (tp + benign_suspect_verdicts) as f64
    };
    let recall = if attack_requests == 0 {
        0.0
    } else {
        tp as f64 / attack_requests as f64
    };

    DefenseScenarioReport {
        scenario: scenario.label(),
        kind: match scenario {
            DefenseScenario::Sbr(_) => "sbr".to_string(),
            DefenseScenario::Obr(..) => "obr".to_string(),
        },
        exploited_case,
        attack_requests,
        benign_requests,
        detected: attacker.first_flag_ms.is_some(),
        detection_latency_ms: attacker
            .first_flag_ms
            .map(|at| at.saturating_sub(config.attack_start_ms)),
        attacker_suspect_verdicts: tp,
        benign_suspect_verdicts,
        benign_requests_blocked,
        precision,
        recall,
        peak_action: attacker
            .peak_action
            .unwrap_or(DefenseAction::Allow)
            .as_str()
            .to_string(),
        undefended_victim_bytes,
        defended_victim_bytes,
        residual_amplification: attacker.residual_amplification(),
        actions: ActionCounts {
            allowed: attacker.allowed,
            deflated: attacker.deflated,
            throttled: attacker.throttled,
            blocked: attacker.blocked,
        },
    }
}

/// Runs the full campaign (all 24 scenarios) on the executor. Each
/// scenario is one unit; reports come back in scenario order and are
/// byte-identical at any thread count.
pub fn run_defense_eval(
    config: &DefenseEvalConfig,
    executor: &Executor,
    seed: u64,
) -> Vec<DefenseScenarioReport> {
    executor.map(seed, DefenseScenario::all(), |ctx, scenario| {
        run_scenario(scenario, config, ctx.seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small config for unit tests: shorter run, fewer rounds.
    fn quick_config() -> DefenseEvalConfig {
        DefenseEvalConfig {
            duration_ms: 16_000,
            attack_start_ms: 4_000,
            attack_end_ms: 12_000,
            benign_interval_ms: 1_000,
            attack_interval_ms: 500,
            ..DefenseEvalConfig::default()
        }
    }

    #[test]
    fn schedule_is_sorted_and_covers_both_phases() {
        let config = quick_config();
        let events = build_schedule(&config);
        assert!(events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let attacks = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::AttackRound(_)))
            .count();
        assert_eq!(attacks, 16, "8 s burst at 500 ms intervals");
        let benign = events.len() - attacks;
        assert_eq!(benign, 4 * 16, "4 archetypes over 16 s");
    }

    #[test]
    fn sbr_scenario_detects_and_contains_the_attacker() {
        let report = run_scenario(DefenseScenario::Sbr(Vendor::Akamai), &quick_config(), 7);
        assert!(report.detected, "{report:?}");
        assert!(report.detection_latency_ms.unwrap() < 8_000, "{report:?}");
        assert_eq!(report.benign_requests_blocked, 0, "{report:?}");
        assert!(
            report.defended_victim_bytes < report.undefended_victim_bytes / 2,
            "enforcement must cut the victim link: {report:?}"
        );
        assert!(report.residual_amplification <= 10.0, "{report:?}");
    }

    #[test]
    fn obr_scenario_detects_on_shape_immediately() {
        let report = run_scenario(
            DefenseScenario::Obr(Vendor::Cloudflare, Vendor::Akamai),
            &quick_config(),
            7,
        );
        assert!(report.detected, "{report:?}");
        // Overlap multiplicity flags the very first attack request.
        assert!(report.detection_latency_ms.unwrap() <= 1_000, "{report:?}");
        assert_eq!(report.benign_requests_blocked, 0, "{report:?}");
        assert!(
            report.defended_victim_bytes < report.undefended_victim_bytes,
            "{report:?}"
        );
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let config = DefenseEvalConfig {
            duration_ms: 8_000,
            attack_start_ms: 2_000,
            attack_end_ms: 6_000,
            ..quick_config()
        };
        let scenarios = vec![
            DefenseScenario::Sbr(Vendor::Akamai),
            DefenseScenario::Sbr(Vendor::KeyCdn),
            DefenseScenario::Obr(Vendor::Cdn77, Vendor::Azure),
        ];
        let run = |threads: usize| {
            Executor::new(threads).map(3, scenarios.clone(), |ctx, s| {
                serde_json::to_string(&run_scenario(s, &config, ctx.seed)).expect("serializes")
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn scenario_list_has_24_entries() {
        let all = DefenseScenario::all();
        assert_eq!(all.len(), 24);
        assert_eq!(all[0].label(), "sbr Akamai");
        assert!(all.iter().any(|s| s.label().starts_with("obr ")));
    }
}
