//! Amplification accounting.
//!
//! The paper computes amplification factors as ratios of *response* wire
//! bytes captured on two segments (§V-B: "We capture all response traffic
//! in the cdn-origin connection and the client-cdn connection and
//! calculate the amplification factors").

use std::fmt;

use rangeamp_net::SegmentStats;
use serde::Serialize;

/// Per-segment response/request byte totals for one experiment run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TrafficBreakdown {
    /// Requests sent on the attacker-facing segment.
    pub attacker_requests: u64,
    /// Request bytes on the attacker-facing segment.
    pub attacker_request_bytes: u64,
    /// Response bytes delivered to the attacker.
    pub attacker_response_bytes: u64,
    /// Requests on the victim segment (`cdn-origin` for SBR,
    /// `fcdn-bcdn` for OBR).
    pub victim_requests: u64,
    /// Request bytes on the victim segment.
    pub victim_request_bytes: u64,
    /// Response bytes on the victim segment — the amplified traffic.
    pub victim_response_bytes: u64,
    /// Attacker-side response bytes under HTTP/2 framing (§VI-B check).
    pub attacker_h2_response_bytes: u64,
    /// Victim-side response bytes under HTTP/2 framing (§VI-B check).
    pub victim_h2_response_bytes: u64,
}

impl TrafficBreakdown {
    /// Builds a breakdown from the two segments' statistics.
    pub fn from_stats(attacker: SegmentStats, victim: SegmentStats) -> TrafficBreakdown {
        TrafficBreakdown {
            attacker_requests: attacker.requests,
            attacker_request_bytes: attacker.request_bytes,
            attacker_response_bytes: attacker.response_bytes,
            victim_requests: victim.requests,
            victim_request_bytes: victim.request_bytes,
            victim_response_bytes: victim.response_bytes,
            attacker_h2_response_bytes: attacker.h2_response_bytes,
            victim_h2_response_bytes: victim.h2_response_bytes,
        }
    }
}

/// One amplification measurement: what the attacker paid vs. what the
/// victim segment carried.
#[derive(Debug, Clone, Serialize)]
pub struct AmplificationMeasurement {
    /// What was attacked (vendor or cascade description).
    pub target: String,
    /// The exploited range case, in the paper's Table IV/V notation.
    pub exploited_case: String,
    /// Size of the target resource in bytes.
    pub resource_size: u64,
    /// Per-segment traffic totals.
    pub traffic: TrafficBreakdown,
}

impl AmplificationMeasurement {
    /// Response-traffic amplification factor (the paper's headline
    /// metric): victim-segment response bytes ÷ attacker-segment response
    /// bytes.
    pub fn amplification_factor(&self) -> f64 {
        if self.traffic.attacker_response_bytes == 0 {
            return 0.0;
        }
        self.traffic.victim_response_bytes as f64 / self.traffic.attacker_response_bytes as f64
    }

    /// The same ratio under HTTP/2 framing — the paper's §VI-B finding is
    /// that this stays in the same league as the HTTP/1.1 factor.
    pub fn amplification_factor_h2(&self) -> f64 {
        if self.traffic.attacker_h2_response_bytes == 0 {
            return 0.0;
        }
        self.traffic.victim_h2_response_bytes as f64
            / self.traffic.attacker_h2_response_bytes as f64
    }

    /// Request-inclusive factor (total bytes both directions), reported
    /// alongside for completeness.
    pub fn total_traffic_factor(&self) -> f64 {
        let attacker = self.traffic.attacker_request_bytes + self.traffic.attacker_response_bytes;
        let victim = self.traffic.victim_request_bytes + self.traffic.victim_response_bytes;
        if attacker == 0 {
            return 0.0;
        }
        victim as f64 / attacker as f64
    }
}

impl fmt::Display for AmplificationMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} on {} bytes → {:.0}× ({} B attacker / {} B victim)",
            self.target,
            self.exploited_case,
            self.resource_size,
            self.amplification_factor(),
            self.traffic.attacker_response_bytes,
            self.traffic.victim_response_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(attacker_resp: u64, victim_resp: u64) -> AmplificationMeasurement {
        AmplificationMeasurement {
            target: "test".to_string(),
            exploited_case: "bytes=0-0".to_string(),
            resource_size: 1024,
            traffic: TrafficBreakdown {
                attacker_requests: 1,
                attacker_request_bytes: 100,
                attacker_response_bytes: attacker_resp,
                victim_requests: 1,
                victim_request_bytes: 90,
                victim_response_bytes: victim_resp,
                attacker_h2_response_bytes: attacker_resp,
                victim_h2_response_bytes: victim_resp,
            },
        }
    }

    #[test]
    fn factor_is_response_ratio() {
        let m = measurement(500, 1_000_000);
        assert!((m.amplification_factor() - 2000.0).abs() < f64::EPSILON);
    }

    #[test]
    fn zero_attacker_bytes_yields_zero_factor() {
        let m = measurement(0, 1_000_000);
        assert_eq!(m.amplification_factor(), 0.0);
    }

    #[test]
    fn total_factor_includes_requests() {
        let m = measurement(500, 1_000_000);
        let expected = (90.0 + 1_000_000.0) / (100.0 + 500.0);
        assert!((m.total_traffic_factor() - expected).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_factor() {
        let m = measurement(500, 1_000_000);
        assert!(m.to_string().contains("2000×"));
    }
}
