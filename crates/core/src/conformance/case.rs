//! Fuzz-case vocabulary and the committed-corpus text format.
//!
//! A case is either a *pipeline* case — a structured client request
//! (resource size, raw `Range` value, `If-Range` validator kind, padding)
//! replayed through every vendor edge — or a *wire* case: mutated request
//! bytes pushed through the `wire.rs` parse→emit roundtrip.
//!
//! Cases serialize to a line-oriented text format so minimised findings
//! can live in `tests/corpus/` and replay as a normal `cargo test`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rangeamp_http::range::{ParseExpectation, RangeRequestGenerator, RawRangeFamily};
use rangeamp_http::{wire, Request};

use crate::TARGET_PATH;

/// Resource sizes exercised by the fuzzer, ascending. The large entries
/// straddle the size-conditional vendor branches (Azure 8/16 MB windows,
/// Huawei and CloudFront 10 MB thresholds).
pub const SIZE_PALETTE: [u64; 7] = [
    1,
    1024,
    64 * 1024,
    1024 * 1024,
    9 * 1024 * 1024,
    12 * 1024 * 1024,
    25 * 1024 * 1024,
];

/// How many leading palette entries count as "small" (multi-range and
/// malformed shapes are confined to these to bound multipart copy cost).
const SMALL_SIZES: usize = 4;

/// The `If-Range` validator attached to a pipeline case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfRangeKind {
    /// No `If-Range` header.
    None,
    /// The resource's current strong ETag (matches).
    MatchingEtag,
    /// A strong ETag for a different representation (fails).
    StaleEtag,
    /// A weak ETag (`W/"..."`) — never matches per RFC 7232.
    WeakEtag,
    /// The resource's exact `Last-Modified` date (matches).
    MatchingDate,
    /// A different HTTP-date (fails).
    StaleDate,
    /// A value that is neither a quoted tag nor the current date.
    Malformed,
}

impl IfRangeKind {
    /// Every kind, in corpus-name order.
    pub const ALL: [IfRangeKind; 7] = [
        IfRangeKind::None,
        IfRangeKind::MatchingEtag,
        IfRangeKind::StaleEtag,
        IfRangeKind::WeakEtag,
        IfRangeKind::MatchingDate,
        IfRangeKind::StaleDate,
        IfRangeKind::Malformed,
    ];

    /// Stable name used in the corpus text format.
    pub fn name(self) -> &'static str {
        match self {
            IfRangeKind::None => "none",
            IfRangeKind::MatchingEtag => "matching-etag",
            IfRangeKind::StaleEtag => "stale-etag",
            IfRangeKind::WeakEtag => "weak-etag",
            IfRangeKind::MatchingDate => "matching-date",
            IfRangeKind::StaleDate => "stale-date",
            IfRangeKind::Malformed => "malformed",
        }
    }

    /// Inverse of [`IfRangeKind::name`].
    pub fn from_name(name: &str) -> Option<IfRangeKind> {
        IfRangeKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether the origin will honor a `Range` header accompanied by this
    /// validator (a failed or malformed validator voids the range).
    pub fn origin_honors_range(self) -> bool {
        matches!(
            self,
            IfRangeKind::None | IfRangeKind::MatchingEtag | IfRangeKind::MatchingDate
        )
    }
}

/// One structured pipeline case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Complete length of the synthetic target resource.
    pub size: u64,
    /// Raw `Range` header value as the client sends it.
    pub range: String,
    /// What the generator promised about `range`'s parse outcome
    /// (`None` for corpus entries, which carry no generation metadata).
    pub expect: Option<ParseExpectation>,
    /// `If-Range` validator kind.
    pub if_range: IfRangeKind,
    /// Length of an `X-Fuzz-Pad` filler header (exercises header limits).
    pub pad: u32,
}

/// One wire-level case: raw request bytes for the parse→emit roundtrip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCase {
    /// The (possibly mutated) request bytes.
    pub raw: Vec<u8>,
}

/// A corpus entry: any replayable case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusEntry {
    /// A structured pipeline case.
    Pipeline(FuzzCase),
    /// A wire roundtrip case.
    Wire(WireCase),
}

/// Fraction denominators for the deterministic case mix.
const WIRE_EVERY: u64 = 4; // index % 4 == 3 → wire case
const LARGE_EVERY: u64 = 8; // 1-in-8 pipeline cases use a large size

/// Generates the case for unit `index`; the per-case RNG stream is keyed
/// by `(seed, index)` so every index yields an independent case and any
/// executor shard can regenerate case `i` without shared state.
pub fn generate(index: u64, seed: u64) -> CorpusEntry {
    let mut rng = StdRng::seed_from_u64(mix(seed, index));
    if index % WIRE_EVERY == WIRE_EVERY - 1 {
        CorpusEntry::Wire(generate_wire(&mut rng))
    } else {
        CorpusEntry::Pipeline(generate_pipeline(&mut rng))
    }
}

/// SplitMix64 finalizer over the `(seed, index)` pair — adjacent indices
/// must not produce correlated `StdRng` streams.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn generate_pipeline(rng: &mut StdRng) -> FuzzCase {
    let large = rng.gen_range(0..LARGE_EVERY) == 0;
    let size = if large {
        SIZE_PALETTE
            [SMALL_SIZES + rng.gen_range(0..(SIZE_PALETTE.len() - SMALL_SIZES) as u64) as usize]
    } else {
        SIZE_PALETTE[rng.gen_range(0..SMALL_SIZES as u64) as usize]
    };
    let (range, expect) = if large {
        generate_large_range(rng, size)
    } else {
        let mut gen = RangeRequestGenerator::new(rng.gen::<u64>(), size);
        let raw = gen.next_raw_case();
        (raw.value, Some(raw.expectation))
    };
    let pad = if rng.gen_range(0..16u64) == 0 {
        rng.gen_range(0..100_000u64) as u32
    } else {
        0
    };
    let if_range = if rng.gen_range(0..4u64) == 0 {
        IfRangeKind::ALL[1 + rng.gen_range(0..(IfRangeKind::ALL.len() - 1) as u64) as usize]
    } else {
        IfRangeKind::None
    };
    FuzzCase {
        size,
        range,
        expect,
        if_range,
        pad,
    }
}

/// Large files get single-range shapes biased toward the vendors'
/// size-threshold boundaries (multi-range sets add nothing there but
/// multipart copy cost).
fn generate_large_range(rng: &mut StdRng, size: u64) -> (String, Option<ParseExpectation>) {
    const MB: u64 = 1024 * 1024;
    if rng.gen_range(0..2u64) == 0 {
        // A boundary-biased valid single range.
        let a = boundary_offset(rng, size);
        let value = match rng.gen_range(0..3u64) {
            0 => {
                let b = boundary_offset(rng, size);
                format!("bytes={}-{}", a.min(b), a.max(b))
            }
            1 => format!("bytes={a}-"),
            _ => format!("bytes=-{}", a.max(1)),
        };
        (value, Some(ParseExpectation::Parses))
    } else {
        const SINGLE: [RawRangeFamily; 8] = [
            RawRangeFamily::SuffixTail,
            RawRangeFamily::HugeLast,
            RawRangeFamily::CaseUnit,
            RawRangeFamily::UnknownUnit,
            RawRangeFamily::ReversedBounds,
            RawRangeFamily::OverflowOffset,
            RawRangeFamily::BareSuffix,
            RawRangeFamily::Garbage,
        ];
        let family = SINGLE[rng.gen_range(0..SINGLE.len() as u64) as usize];
        let mut gen = RangeRequestGenerator::new(rng.gen::<u64>(), MB.min(size));
        let raw = gen.raw_case_of_family(family);
        (raw.value, Some(raw.expectation))
    }
}

fn boundary_offset(rng: &mut StdRng, size: u64) -> u64 {
    const MB: u64 = 1024 * 1024;
    const POINTS: [u64; 8] = [
        0,
        1,
        4095,
        8 * MB - 1,
        8 * MB,
        8 * MB + 1,
        16 * MB - 1,
        16 * MB,
    ];
    match rng.gen_range(0..10u64) {
        p @ 0..=7 => POINTS[p as usize].min(size - 1),
        8 => size - 1,
        _ => rng.gen_range(0..size),
    }
}

/// Builds a well-formed request, encodes it, then applies a deterministic
/// byte-level mutation (or none, for straight roundtrip coverage).
fn generate_wire(rng: &mut StdRng) -> WireCase {
    const RANGES: [&str; 6] = [
        "bytes=0-0",
        "bytes=0-0,2-2",
        "bytes=-1",
        "bytes=100-",
        "bits=0-1",
        "bytes=5-2",
    ];
    let mut builder = Request::get(TARGET_PATH).header("Host", "victim.example");
    if rng.gen_range(0..4u64) != 0 {
        builder = builder.header(
            "Range",
            RANGES[rng.gen_range(0..RANGES.len() as u64) as usize],
        );
    }
    if rng.gen_range(0..4u64) == 0 {
        builder = builder.header("If-Range", "\"stale\"");
    }
    let mut raw = wire::encode_request(&builder.build());
    let mutations = rng.gen_range(0..3u64);
    for _ in 0..mutations {
        mutate(rng, &mut raw);
    }
    WireCase { raw }
}

fn mutate(rng: &mut StdRng, raw: &mut Vec<u8>) {
    if raw.is_empty() {
        raw.push(b'G');
        return;
    }
    let pos = rng.gen_range(0..raw.len() as u64) as usize;
    match rng.gen_range(0..5u64) {
        0 => raw.truncate(pos),
        1 => raw[pos] ^= 1 << rng.gen_range(0..8u64),
        2 => raw.insert(pos, rng.gen_range(0..=255u64) as u8),
        3 => {
            raw.remove(pos);
        }
        _ => {
            // Duplicate a short run starting at `pos`.
            let end = (pos + 1 + rng.gen_range(0..16u64) as usize).min(raw.len());
            let run: Vec<u8> = raw[pos..end].to_vec();
            raw.splice(pos..pos, run);
        }
    }
}

impl CorpusEntry {
    /// Serializes the entry to the corpus text format. Lines starting with
    /// `#` are comments; the `range` line is last because its value is
    /// free-form (it never contains a newline by construction).
    pub fn to_text(&self) -> String {
        match self {
            CorpusEntry::Pipeline(case) => {
                let mut text = String::from("kind: pipeline\n");
                text.push_str(&format!("size: {}\n", case.size));
                text.push_str(&format!("if-range: {}\n", case.if_range.name()));
                text.push_str(&format!("pad: {}\n", case.pad));
                if let Some(expect) = case.expect {
                    let word = match expect {
                        ParseExpectation::Parses => "parses",
                        ParseExpectation::Rejected => "rejected",
                    };
                    text.push_str(&format!("expect: {word}\n"));
                }
                text.push_str(&format!("range: {}\n", case.range));
                text
            }
            CorpusEntry::Wire(case) => {
                let hex: String = case.raw.iter().map(|b| format!("{b:02x}")).collect();
                format!("kind: wire\nhex: {hex}\n")
            }
        }
    }

    /// Parses the corpus text format. `#` lines and blank lines are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line or missing field.
    pub fn from_text(text: &str) -> Result<CorpusEntry, String> {
        let mut kind = None;
        let mut size = None;
        let mut if_range = IfRangeKind::None;
        let mut pad = 0u32;
        let mut expect = None;
        let mut range = None;
        let mut hex = None;
        for line in text.lines() {
            let line = line.trim_end_matches('\r');
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, raw_value) = line
                .split_once(": ")
                .or_else(|| line.split_once(':'))
                .ok_or_else(|| format!("malformed corpus line: {line:?}"))?;
            // Range values are free-form and may carry significant leading
            // or trailing whitespace; every other value is trimmed.
            let value = if key == "range" {
                raw_value
            } else {
                raw_value.trim()
            };
            match key {
                "kind" => kind = Some(value.to_string()),
                "size" => {
                    size = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("bad size {value:?}: {e}"))?,
                    )
                }
                "if-range" => {
                    if_range = IfRangeKind::from_name(value)
                        .ok_or_else(|| format!("unknown if-range kind {value:?}"))?
                }
                "pad" => {
                    pad = value
                        .parse::<u32>()
                        .map_err(|e| format!("bad pad {value:?}: {e}"))?
                }
                "expect" => {
                    expect = Some(match value {
                        "parses" => ParseExpectation::Parses,
                        "rejected" => ParseExpectation::Rejected,
                        other => return Err(format!("unknown expectation {other:?}")),
                    })
                }
                "range" => range = Some(value.to_string()),
                "hex" => hex = Some(value.to_string()),
                other => return Err(format!("unknown corpus key {other:?}")),
            }
        }
        match kind.as_deref() {
            Some("pipeline") => Ok(CorpusEntry::Pipeline(FuzzCase {
                size: size.ok_or("pipeline entry missing size")?,
                range: range.ok_or("pipeline entry missing range")?,
                expect,
                if_range,
                pad,
            })),
            Some("wire") => {
                let hex = hex.ok_or("wire entry missing hex")?;
                if hex.len() % 2 != 0 {
                    return Err("odd-length hex payload".to_string());
                }
                let raw = (0..hex.len())
                    .step_by(2)
                    .map(|i| {
                        u8::from_str_radix(&hex[i..i + 2], 16)
                            .map_err(|e| format!("bad hex at {i}: {e}"))
                    })
                    .collect::<Result<Vec<u8>, String>>()?;
                Ok(CorpusEntry::Wire(WireCase { raw }))
            }
            Some(other) => Err(format!("unknown corpus kind {other:?}")),
            None => Err("corpus entry missing kind".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for index in 0..32u64 {
            assert_eq!(
                generate(index, index * 977 + 5),
                generate(index, index * 977 + 5)
            );
        }
    }

    #[test]
    fn corpus_text_roundtrips() {
        for index in 0..64u64 {
            let entry = generate(index, index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let text = entry.to_text();
            let reparsed = CorpusEntry::from_text(&text)
                .unwrap_or_else(|e| panic!("entry {index} failed to reparse: {e}\n{text}"));
            assert_eq!(entry, reparsed, "entry {index}");
        }
    }

    #[test]
    fn corpus_comments_and_blanks_are_ignored() {
        let text = "# a finding\n\nkind: pipeline\nsize: 1024\nrange: bytes=0-0\n";
        let entry = CorpusEntry::from_text(text).expect("parses");
        match entry {
            CorpusEntry::Pipeline(case) => {
                assert_eq!(case.size, 1024);
                assert_eq!(case.range, "bytes=0-0");
                assert_eq!(case.if_range, IfRangeKind::None);
                assert_eq!(case.pad, 0);
                assert_eq!(case.expect, None);
            }
            CorpusEntry::Wire(_) => panic!("expected pipeline entry"),
        }
    }

    #[test]
    fn each_index_yields_an_independent_case() {
        // Regression: `generate` once seeded the RNG from the master seed
        // alone, so every index produced the same case and the fuzzer had
        // a single-case corpus. Require genuine per-index variety.
        let distinct: std::collections::HashSet<String> =
            (0..64u64).map(|i| generate(i, 42).to_text()).collect();
        assert!(
            distinct.len() >= 48,
            "only {} distinct cases in 64 indices",
            distinct.len()
        );
    }

    #[test]
    fn the_case_mix_exercises_every_range_shape() {
        use rangeamp_http::range::{ByteRangeSpec, RangeHeader};
        let (mut wire, mut rejected, mut multi, mut single_from_to, mut single_other) =
            (0u32, 0u32, 0u32, 0u32, 0u32);
        for index in 0..400u64 {
            match generate(index, 42) {
                CorpusEntry::Wire(_) => wire += 1,
                CorpusEntry::Pipeline(case) => match RangeHeader::parse(&case.range) {
                    Err(_) => rejected += 1,
                    Ok(h) if h.is_multi() => multi += 1,
                    Ok(h) if matches!(h.specs()[0], ByteRangeSpec::FromTo { .. }) => {
                        single_from_to += 1
                    }
                    Ok(_) => single_other += 1,
                },
            }
        }
        // Every shape class must appear often enough that a vendor-policy
        // regression in any rewrite branch is observable within a smoke run.
        for (label, count) in [
            ("wire", wire),
            ("rejected", rejected),
            ("multi-range", multi),
            ("single from-to", single_from_to),
            ("single open/suffix", single_other),
        ] {
            assert!(count >= 10, "{label} underrepresented: {count}/400");
        }
    }

    #[test]
    fn sizes_stay_in_the_palette() {
        for index in 0..200u64 {
            if let CorpusEntry::Pipeline(case) = generate(index, index * 31 + 7) {
                assert!(SIZE_PALETTE.contains(&case.size), "size {}", case.size);
            }
        }
    }
}
