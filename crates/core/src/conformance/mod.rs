//! Differential conformance harness for the range-rewrite pipeline.
//!
//! The harness has four layers:
//!
//! * [`case`] — a structure-aware generator for `Range`/`If-Range`
//!   request cases (plus raw-bytes wire mutations), and the plain-text
//!   corpus format they are committed in.
//! * [`model`] — an independent, table-driven prediction of each of the
//!   13 vendors' back-to-origin forwarding (the paper's Tables I/II).
//! * [`oracle`] — replays every case through the real
//!   [`rangeamp_cdn::EdgeNode`] pipeline and cross-checks grammar, wire
//!   roundtrips, header limits, the forwarding model, coverage
//!   (never-narrower), RFC 7233 response shape, `If-Range` equivalence,
//!   amplification monotonicity, and panic-freedom.
//! * [`mod@shrink`] / [`corpus`] — greedy deterministic minimisation of
//!   findings, and the committed regression corpus replayed by
//!   `cargo test`.
//!
//! [`run_fuzz`] drives the whole stack on the sharded [`Executor`]: case
//! `i` is derived only from `(seed, i)` and results are merged in index
//! order, so the report — including its digest over every per-case
//! outcome line — is byte-identical at any thread count.

pub mod case;
pub mod corpus;
pub mod model;
pub mod oracle;
pub mod shrink;

pub use case::{CorpusEntry, FuzzCase, IfRangeKind, WireCase, SIZE_PALETTE};
pub use model::{expected_forwarding, Fwd};
pub use oracle::{
    check_entry, check_monotonicity, check_pipeline, check_pipeline_with_override, check_wire,
    CaseReport, ConformanceEnv, Violation,
};
pub use shrink::shrink;

use crate::Executor;

/// Parameters for a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; case `i` derives from `(seed, i)` alone.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: u64,
    /// Every `stride`-th pipeline case additionally runs the
    /// amplification-monotonicity oracle (it costs extra probes).
    pub monotonicity_stride: u64,
    /// Cap on findings that are shrunk and reported in detail.
    pub max_findings: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 42,
            cases: 1000,
            monotonicity_stride: 8,
            max_findings: 8,
        }
    }
}

/// One violating case, with its minimised reproducer.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Index of the generated case that first exposed the violation.
    pub index: u64,
    /// The violation as reported by the oracle layer.
    pub violation: Violation,
    /// The original generated entry.
    pub entry: CorpusEntry,
    /// The shrunk entry (possibly identical to `entry`).
    pub minimized: CorpusEntry,
}

/// The outcome of a fuzz run. Identical for identical `(seed, cases)`
/// regardless of executor thread count.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The master seed used.
    pub seed: u64,
    /// Total generated cases.
    pub cases: u64,
    /// Cases exercising the full request pipeline.
    pub pipeline_cases: u64,
    /// Cases exercising only the wire codec.
    pub wire_cases: u64,
    /// Edge probes executed across all oracles.
    pub probes: u64,
    /// Total violations observed (before the `max_findings` cap).
    pub violations: u64,
    /// FNV-1a digest over every per-case outcome line, in index order.
    pub digest: u64,
    /// Shrunk findings, at most `max_findings`.
    pub findings: Vec<Finding>,
}

/// Runs the conformance fuzzer: generate → oracle-check in parallel on
/// `executor`, then shrink any findings sequentially.
pub fn run_fuzz(config: &FuzzConfig, executor: &Executor) -> FuzzReport {
    let env = ConformanceEnv::new();
    let units: Vec<u64> = (0..config.cases).collect();
    let stride = config.monotonicity_stride.max(1);
    let results = executor.map(config.seed, units, |_ctx, index| {
        let entry = case::generate(index, config.seed);
        let mut report = check_entry(&env, &entry);
        if let CorpusEntry::Pipeline(pipeline_case) = &entry {
            if index % stride == 0 {
                let mono = check_monotonicity(&env, pipeline_case);
                report.probes += mono.probes;
                report.violations.extend(mono.violations);
            }
        }
        (index, entry, report)
    });

    let mut digest = Fnv::new();
    let mut pipeline_cases = 0u64;
    let mut wire_cases = 0u64;
    let mut probes = 0u64;
    let mut violations = 0u64;
    let mut findings: Vec<Finding> = Vec::new();
    for (index, entry, report) in &results {
        match entry {
            CorpusEntry::Pipeline(_) => pipeline_cases += 1,
            CorpusEntry::Wire(_) => wire_cases += 1,
        }
        probes += report.probes;
        violations += report.violations.len() as u64;
        digest.write(format!("{index}|{}|", report.summary).as_bytes());
        for v in &report.violations {
            digest.write(format!("{}:{:?}:{};", v.oracle, v.vendor, v.detail).as_bytes());
        }
        digest.write(b"\n");
        if let Some(first) = report.violations.first() {
            if findings.len() < config.max_findings {
                findings.push(Finding {
                    index: *index,
                    violation: first.clone(),
                    entry: entry.clone(),
                    minimized: entry.clone(),
                });
            }
        }
    }
    for finding in &mut findings {
        finding.minimized = shrink(&env, &finding.entry, &finding.violation);
    }
    FuzzReport {
        seed: config.seed,
        cases: config.cases,
        pipeline_cases,
        wire_cases,
        probes,
        violations,
        digest: digest.finish(),
        findings,
    }
}

/// 64-bit FNV-1a, the digest used for thread-invariance witnessing.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_smoke_run_is_clean_and_thread_invariant() {
        let config = FuzzConfig {
            seed: 42,
            cases: 48,
            ..FuzzConfig::default()
        };
        let sequential = run_fuzz(&config, &Executor::sequential());
        assert_eq!(
            sequential.violations, 0,
            "findings: {:#?}",
            sequential.findings
        );
        assert_eq!(
            sequential.pipeline_cases + sequential.wire_cases,
            config.cases
        );
        assert!(sequential.probes > 0);
        let threaded = run_fuzz(&config, &Executor::new(4));
        assert_eq!(sequential.digest, threaded.digest);
        assert_eq!(sequential.probes, threaded.probes);
    }

    #[test]
    fn fnv_digest_is_order_sensitive() {
        let mut a = Fnv::new();
        a.write(b"ab");
        let mut b = Fnv::new();
        b.write(b"ba");
        assert_ne!(a.finish(), b.finish());
    }
}
