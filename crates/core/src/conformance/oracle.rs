//! The observed half of the differential harness: replay cases through
//! real [`EdgeNode`]s and check every independent invariant.
//!
//! Oracles, in check order:
//!
//! 1. **grammar** — the generator's parse expectation holds, and parsed
//!    headers survive a display→parse roundtrip unchanged.
//! 2. **wire** — request bytes never panic the codec; anything the codec
//!    emits decodes back, and re-encoding is byte-idempotent.
//! 3. **limits** — a request outside the vendor's header limits is
//!    rejected with 431 *before* any back-to-origin fetch, and an admitted
//!    request is never 431'd.
//! 4. **policy-model** — the captured back-to-origin `Range` sequence
//!    matches [`super::model::expected_forwarding`] exactly.
//! 5. **coverage** — Deletion/Expansion never narrow: the union of
//!    forwarded ranges covers every satisfiable client range.
//! 6. **response-shape** — 200/206/416 structure per RFC 7233: full-body
//!    equality, `Content-Range` bounds, multipart part sequences equal to
//!    the resolved or coalesced set, part bodies equal to resource slices.
//! 7. **if-range** — a matching validator yields the same status, body,
//!    and forwarding as the same request without `If-Range`.
//! 8. **no-panic** — nothing in the pipeline panics (probes run under
//!    `catch_unwind`).
//!
//! Amplification monotonicity (oracle 9) runs on a deterministic subset
//! from the fuzz driver via [`check_monotonicity`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::Mutex;
use rangeamp_cdn::{EdgeNode, UpstreamService, Vendor, VendorProfile};
use rangeamp_http::range::{coalesce, ContentRange, RangeHeader, ResolvedRange};
use rangeamp_http::{multipart, wire, Body, Request, Response};
use rangeamp_net::{Segment, SegmentName};
use rangeamp_origin::{OriginConfig, OriginServer, ResourceStore};

use super::case::{CorpusEntry, FuzzCase, IfRangeKind, WireCase, SIZE_PALETTE};
use super::model::{expected_forwarding, Fwd};
use crate::{TARGET_HOST, TARGET_PATH};

/// One oracle violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired (stable kebab-case name).
    pub oracle: &'static str,
    /// The vendor under probe, when vendor-specific.
    pub vendor: Option<Vendor>,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

/// The outcome of checking one case.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// Violations found (empty on a clean case).
    pub violations: Vec<Violation>,
    /// Number of edge probes executed.
    pub probes: u64,
    /// Deterministic per-case outcome line (hashed into the run digest, so
    /// thread-count invariance is witnessed over *observed behaviour*, not
    /// just finding counts).
    pub summary: String,
}

impl CaseReport {
    fn violate(&mut self, oracle: &'static str, vendor: Option<Vendor>, detail: String) {
        self.violations.push(Violation {
            oracle,
            vendor,
            detail,
        });
    }
}

/// Per-size origin fixture: the server plus the reference content.
struct SizedBed {
    origin: Arc<OriginServer>,
    full: Body,
    etag: String,
}

/// Shared, lazily-populated environment: one origin fixture per resource
/// size, safe to share across executor shards.
pub struct ConformanceEnv {
    beds: Mutex<HashMap<u64, Arc<SizedBed>>>,
    date: String,
}

impl std::fmt::Debug for ConformanceEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConformanceEnv")
            .field("beds", &self.beds.lock().keys().collect::<Vec<_>>())
            .field("date", &self.date)
            .finish()
    }
}

impl Default for ConformanceEnv {
    fn default() -> ConformanceEnv {
        ConformanceEnv::new()
    }
}

impl ConformanceEnv {
    /// An empty environment; origin fixtures are built on first use.
    pub fn new() -> ConformanceEnv {
        ConformanceEnv {
            beds: Mutex::new(HashMap::new()),
            date: OriginConfig::default().date_header,
        }
    }

    fn bed(&self, size: u64) -> Arc<SizedBed> {
        let mut beds = self.beds.lock();
        beds.entry(size)
            .or_insert_with(|| {
                let mut store = ResourceStore::new();
                store.add_synthetic(TARGET_PATH, size, "application/octet-stream");
                let resource = store.get(TARGET_PATH).expect("freshly added resource");
                let full = resource.full_body();
                let etag = resource.etag().to_string();
                Arc::new(SizedBed {
                    origin: Arc::new(OriginServer::new(store)),
                    full,
                    etag,
                })
            })
            .clone()
    }
}

/// Checks any corpus entry against every applicable oracle.
pub fn check_entry(env: &ConformanceEnv, entry: &CorpusEntry) -> CaseReport {
    match entry {
        CorpusEntry::Pipeline(case) => check_pipeline(env, case),
        CorpusEntry::Wire(case) => check_wire(case),
    }
}

/// Checks a pipeline case against all 13 stock vendor profiles.
pub fn check_pipeline(env: &ConformanceEnv, case: &FuzzCase) -> CaseReport {
    check_pipeline_with_override(env, case, None)
}

/// Checks a pipeline case with one vendor's profile replaced — the stock
/// model prediction stays in force, so a behaviour-changing override (e.g.
/// `force_laziness` on a Deletion vendor) must produce a `policy-model`
/// violation. This is the hand-injected-bug harness test hook.
pub fn check_pipeline_with_override(
    env: &ConformanceEnv,
    case: &FuzzCase,
    profile_override: Option<(Vendor, &VendorProfile)>,
) -> CaseReport {
    let mut out = CaseReport::default();
    let parse_result = RangeHeader::parse(&case.range);

    if let Some(expect) = case.expect {
        let held = match expect {
            rangeamp_http::range::ParseExpectation::Parses => parse_result.is_ok(),
            rangeamp_http::range::ParseExpectation::Rejected => parse_result.is_err(),
        };
        if !held {
            out.violate(
                "grammar",
                None,
                format!(
                    "expected {expect:?} for {:?}, got {:?}",
                    case.range,
                    parse_result.as_ref().map(ToString::to_string)
                ),
            );
        }
    }
    let parsed = parse_result.ok();
    if let Some(header) = &parsed {
        let canonical = header.to_string();
        match RangeHeader::parse(&canonical) {
            Ok(reparsed) if reparsed == *header => {}
            other => out.violate(
                "grammar",
                None,
                format!("canonical form {canonical:?} did not roundtrip: {other:?}"),
            ),
        }
    }
    let canonical = parsed.as_ref().map(ToString::to_string);

    let bed = env.bed(case.size);
    let Some(req) = build_request(case, &bed.etag, &env.date) else {
        // The Range value cannot even be carried in a header field; the
        // wire-mutation cases cover those byte sequences instead.
        out.summary = format!("unrepresentable:{:?}", case.range);
        return out;
    };

    // Client-request wire roundtrip.
    let wire_case = WireCase {
        raw: wire::encode_request(&req),
    };
    let wire_report = check_wire(&wire_case);
    out.violations.extend(wire_report.violations);

    let mut summary = String::new();
    for vendor in Vendor::ALL {
        let profile = match profile_override {
            Some((v, profile)) if v == vendor => profile.clone(),
            _ => vendor.profile(),
        };
        let segment = check_vendor(
            case,
            vendor,
            profile,
            &req,
            parsed.as_ref(),
            canonical.as_deref(),
            &bed,
            env,
            &mut out,
        );
        summary.push_str(&segment);
        summary.push(';');
    }
    out.summary = summary;
    out
}

/// Probes one vendor and runs oracles 3–8. Returns the vendor's summary
/// segment for the run digest.
#[allow(clippy::too_many_arguments)]
fn check_vendor(
    case: &FuzzCase,
    vendor: Vendor,
    profile: VendorProfile,
    req: &Request,
    parsed: Option<&RangeHeader>,
    canonical: Option<&str>,
    bed: &SizedBed,
    env: &ConformanceEnv,
    out: &mut CaseReport,
) -> String {
    let admits = profile.limits.admits(req);
    let probe = match run_probe(bed, profile, req) {
        Ok(probe) => probe,
        Err(panic_msg) => {
            out.violate("no-panic", Some(vendor), panic_msg);
            return format!("{vendor:?}:panicked");
        }
    };
    out.probes += 1;
    let summary = format!(
        "{vendor:?}:{}:{:?}:{}",
        probe.status, probe.forwarded, probe.origin_bytes
    );

    if !admits {
        if probe.status != 431 {
            out.violate(
                "limits",
                Some(vendor),
                format!(
                    "over-limit request answered {} instead of 431",
                    probe.status
                ),
            );
        }
        if !probe.forwarded.is_empty() {
            out.violate(
                "limits",
                Some(vendor),
                format!(
                    "over-limit request reached the origin: {:?}",
                    probe.forwarded
                ),
            );
        }
        return summary;
    }
    if probe.status == 431 {
        out.violate(
            "limits",
            Some(vendor),
            "request within limits was rejected with 431".to_string(),
        );
        return summary;
    }

    // Oracle 4: forwarded sequence vs the declarative model.
    let honors = case.if_range.origin_honors_range();
    let expected = expected_forwarding(vendor, parsed, case.size, honors);
    let sequence_matches = expected.len() == probe.forwarded.len()
        && expected
            .iter()
            .zip(&probe.forwarded)
            .all(|(fwd, observed)| fwd.matches(observed.as_deref(), canonical));
    if !sequence_matches {
        out.violate(
            "policy-model",
            Some(vendor),
            format!(
                "expected {expected:?} (canonical {canonical:?}), origin saw {:?}",
                probe.forwarded
            ),
        );
    }

    check_coverage(case, vendor, parsed, &probe, out);
    check_response_shape(case, vendor, parsed, bed, &probe, out);

    // Oracle 7: a matching validator must be equivalent to no validator.
    if matches!(
        case.if_range,
        IfRangeKind::MatchingEtag | IfRangeKind::MatchingDate
    ) {
        check_if_range_equivalence(case, vendor, bed, env, &probe, out);
    }
    summary
}

/// Oracle 5: the union of forwarded ranges covers every satisfiable
/// client range (Deletion and Expansion only ever widen).
fn check_coverage(
    case: &FuzzCase,
    vendor: Vendor,
    parsed: Option<&RangeHeader>,
    probe: &ProbeResult,
    out: &mut CaseReport,
) {
    let Some(header) = parsed else {
        return;
    };
    let requested = header.resolve(case.size);
    if requested.is_empty() {
        return;
    }
    if probe.forwarded.is_empty() {
        out.violate(
            "coverage",
            Some(vendor),
            "satisfiable range answered without any origin fetch on a cold cache".to_string(),
        );
        return;
    }
    let mut covered: Vec<ResolvedRange> = Vec::new();
    for entry in &probe.forwarded {
        match entry {
            None => covered.push(ResolvedRange {
                first: 0,
                last: case.size - 1,
            }),
            Some(value) => match RangeHeader::parse(value) {
                Ok(fwd) => covered.extend(fwd.resolve(case.size)),
                Err(e) => out.violate(
                    "coverage",
                    Some(vendor),
                    format!("forwarded Range {value:?} does not parse: {e}"),
                ),
            },
        }
    }
    let covered = coalesce(&covered);
    for r in &requested {
        let contained = covered
            .iter()
            .any(|c| c.first <= r.first && r.last <= c.last);
        if !contained {
            out.violate(
                "coverage",
                Some(vendor),
                format!(
                    "requested {}-{} not covered by forwarded union {covered:?}",
                    r.first, r.last
                ),
            );
        }
    }
}

/// Oracle 6: RFC 7233 response structure against the reference content.
fn check_response_shape(
    case: &FuzzCase,
    vendor: Vendor,
    parsed: Option<&RangeHeader>,
    bed: &SizedBed,
    probe: &ProbeResult,
    out: &mut CaseReport,
) {
    let size = case.size;
    let resp = &probe.response;
    let status = probe.status;

    let Some(header) = parsed else {
        // Absent/malformed Range: a full 200.
        if status != 200 {
            out.violate(
                "response-shape",
                Some(vendor),
                format!("no effective Range but status {status}"),
            );
            return;
        }
        if let Some(detail) = slice_mismatch(&bed.full, 0, size, resp.body()) {
            out.violate(
                "response-shape",
                Some(vendor),
                format!("full 200 body mismatch: {detail}"),
            );
        }
        return;
    };

    let resolved = header.resolve(size);
    if resolved.is_empty() {
        if status != 416 {
            out.violate(
                "response-shape",
                Some(vendor),
                format!("unsatisfiable range answered {status} instead of 416"),
            );
            return;
        }
        let want = format!("bytes */{size}");
        let got = resp.headers().get("content-range").unwrap_or("");
        if got != want {
            out.violate(
                "response-shape",
                Some(vendor),
                format!("416 Content-Range {got:?}, expected {want:?}"),
            );
        }
        return;
    }

    if status != 206 {
        out.violate(
            "response-shape",
            Some(vendor),
            format!("satisfiable range answered {status} instead of 206"),
        );
        return;
    }

    if resolved.len() == 1 {
        check_single_206(vendor, resolved[0], size, bed, resp, out);
        return;
    }

    let merged = coalesce(&resolved);
    let content_type = resp.headers().get("content-type").unwrap_or("").to_string();
    if let Some(boundary) = content_type
        .strip_prefix("multipart/byteranges; boundary=")
        .map(str::to_string)
    {
        let parts = match multipart::parse(resp.body().as_bytes(), &boundary) {
            Ok(parts) => parts,
            Err(e) => {
                out.violate(
                    "response-shape",
                    Some(vendor),
                    format!("multipart body does not parse: {e}"),
                );
                return;
            }
        };
        let part_ranges: Vec<ResolvedRange> = parts
            .iter()
            .filter_map(|p| match p.content_range {
                ContentRange::Satisfied { range, .. } => Some(range),
                ContentRange::Unsatisfied { .. } => None,
            })
            .collect();
        if part_ranges.len() != parts.len() {
            out.violate(
                "response-shape",
                Some(vendor),
                "multipart part carries an unsatisfied Content-Range".to_string(),
            );
            return;
        }
        if part_ranges != resolved && part_ranges != merged {
            out.violate(
                "response-shape",
                Some(vendor),
                format!(
                    "part sequence {part_ranges:?} is neither the resolved {resolved:?} nor the coalesced {merged:?} set"
                ),
            );
        }
        for (part, range) in parts.iter().zip(&part_ranges) {
            match part.content_range {
                ContentRange::Satisfied {
                    complete_length, ..
                } if complete_length == size => {}
                other => {
                    out.violate(
                        "response-shape",
                        Some(vendor),
                        format!("part Content-Range {other:?} complete length != {size}"),
                    );
                    continue;
                }
            }
            if range.last >= size {
                out.violate(
                    "response-shape",
                    Some(vendor),
                    format!("part range {range:?} exceeds the {size}-byte representation"),
                );
                continue;
            }
            if let Some(detail) = slice_mismatch(&bed.full, range.first, range.len(), &part.body) {
                out.violate(
                    "response-shape",
                    Some(vendor),
                    format!("part {range:?} body mismatch: {detail}"),
                );
            }
        }
    } else {
        // A single-part 206 for a multi request is only legal when the
        // set coalesces to one span.
        if merged.len() != 1 {
            out.violate(
                "response-shape",
                Some(vendor),
                format!(
                    "multi request answered single-part 206 ({content_type:?}) though the coalesced set has {} spans",
                    merged.len()
                ),
            );
            return;
        }
        check_single_206(vendor, merged[0], size, bed, resp, out);
    }
}

fn check_single_206(
    vendor: Vendor,
    expected: ResolvedRange,
    size: u64,
    bed: &SizedBed,
    resp: &Response,
    out: &mut CaseReport,
) {
    let got = resp.headers().get("content-range").unwrap_or("");
    match ContentRange::parse(got) {
        Ok(ContentRange::Satisfied {
            range,
            complete_length,
        }) if range == expected && complete_length == size => {}
        other => {
            out.violate(
                "response-shape",
                Some(vendor),
                format!(
                    "206 Content-Range {got:?} parsed as {other:?}, expected {}-{}/{size}",
                    expected.first, expected.last
                ),
            );
            return;
        }
    }
    if let Some(detail) = slice_mismatch(&bed.full, expected.first, expected.len(), resp.body()) {
        out.violate(
            "response-shape",
            Some(vendor),
            format!("206 body mismatch: {detail}"),
        );
    }
}

/// Oracle 7: a matching `If-Range` validator must be observably identical
/// to sending no validator at all.
fn check_if_range_equivalence(
    case: &FuzzCase,
    vendor: Vendor,
    bed: &SizedBed,
    env: &ConformanceEnv,
    with_validator: &ProbeResult,
    out: &mut CaseReport,
) {
    let mut baseline_case = case.clone();
    baseline_case.if_range = IfRangeKind::None;
    let Some(baseline_req) = build_request(&baseline_case, &bed.etag, &env.date) else {
        return;
    };
    // The validator line changes header totals; only compare beds where
    // both requests pass the vendor's limits.
    let profile = vendor.profile();
    if !profile.limits.admits(&baseline_req) {
        return;
    }
    let baseline = match run_probe(bed, profile, &baseline_req) {
        Ok(probe) => probe,
        Err(panic_msg) => {
            out.violate("no-panic", Some(vendor), panic_msg);
            return;
        }
    };
    out.probes += 1;
    if baseline.status != with_validator.status
        || baseline.forwarded != with_validator.forwarded
        || baseline.response.body().as_bytes() != with_validator.response.body().as_bytes()
    {
        out.violate(
            "if-range",
            Some(vendor),
            format!(
                "matching {} validator changed the outcome: {} {:?} vs baseline {} {:?}",
                case.if_range.name(),
                with_validator.status,
                with_validator.forwarded,
                baseline.status,
                baseline.forwarded
            ),
        );
    }
}

/// Oracle 9: per-vendor origin traffic (the amplification numerator) is
/// monotone non-decreasing in resource size, whenever the model predicts
/// the same policy shape at both sizes. Restricted to single-spec headers:
/// multi-range monotonicity is genuinely broken by Apache's egregious-set
/// heuristic (clamping at small sizes can create overlap that vanishes at
/// larger ones), so asserting it would be unsound.
pub fn check_monotonicity(env: &ConformanceEnv, case: &FuzzCase) -> CaseReport {
    let mut out = CaseReport::default();
    let Some(header) = RangeHeader::parse(&case.range).ok() else {
        return out;
    };
    if header.is_multi() {
        return out;
    }
    let Some(pos) = SIZE_PALETTE.iter().position(|&s| s == case.size) else {
        return out;
    };
    if pos + 1 >= SIZE_PALETTE.len() {
        return out;
    }
    let larger = SIZE_PALETTE[pos + 1];
    let honors = case.if_range.origin_honors_range();

    let small_bed = env.bed(case.size);
    let large_bed = env.bed(larger);
    let mut large_case = case.clone();
    large_case.size = larger;
    let (Some(small_req), Some(large_req)) = (
        build_request(case, &small_bed.etag, &env.date),
        build_request(&large_case, &large_bed.etag, &env.date),
    ) else {
        return out;
    };

    for vendor in Vendor::ALL {
        let profile = vendor.profile();
        if !profile.limits.admits(&small_req) || !profile.limits.admits(&large_req) {
            continue;
        }
        let shape_small = expected_forwarding(vendor, Some(&header), case.size, honors);
        let shape_large = expected_forwarding(vendor, Some(&header), larger, honors);
        if fwd_shape(&shape_small) != fwd_shape(&shape_large) {
            // The vendor switches policy across this size boundary
            // (Huawei's 10 MB flip, Azure's windows): not comparable.
            continue;
        }
        let small = match run_probe(&small_bed, profile.clone(), &small_req) {
            Ok(probe) => probe,
            Err(panic_msg) => {
                out.violate("no-panic", Some(vendor), panic_msg);
                continue;
            }
        };
        let large = match run_probe(&large_bed, profile, &large_req) {
            Ok(probe) => probe,
            Err(panic_msg) => {
                out.violate("no-panic", Some(vendor), panic_msg);
                continue;
            }
        };
        out.probes += 2;
        if large.origin_bytes < small.origin_bytes {
            out.violate(
                "monotonicity",
                Some(vendor),
                format!(
                    "origin traffic shrank with resource size: {} bytes at {} vs {} bytes at {larger}",
                    small.origin_bytes, case.size, large.origin_bytes
                ),
            );
        }
    }
    out.summary = format!("mono:{}:{}", case.size, larger);
    out
}

fn fwd_shape(fwds: &[Fwd]) -> Vec<u8> {
    fwds.iter()
        .map(|f| match f {
            Fwd::Deleted => 0,
            Fwd::Unchanged => 1,
            Fwd::Exact(_) => 2,
        })
        .collect()
}

/// Oracle 2: the wire codec never panics, and decode→encode→decode is a
/// byte-level fixpoint.
pub fn check_wire(case: &WireCase) -> CaseReport {
    let mut out = CaseReport::default();
    let decoded = catch_unwind(AssertUnwindSafe(|| wire::decode_request(&case.raw)));
    match decoded {
        Err(payload) => {
            out.violate("wire-no-panic", None, panic_message(payload));
            out.summary = "wire:panicked".to_string();
        }
        Ok(Err(e)) => {
            out.summary = format!("wire:rejected:{e}");
        }
        Ok(Ok(req)) => {
            let encoded = wire::encode_request(&req);
            match wire::decode_request(&encoded) {
                Err(e) => out.violate(
                    "wire-roundtrip",
                    None,
                    format!("emitted request does not re-decode: {e}"),
                ),
                Ok(again) => {
                    let re_encoded = wire::encode_request(&again);
                    if re_encoded != encoded {
                        out.violate(
                            "wire-roundtrip",
                            None,
                            format!(
                                "encode is not idempotent: {:?} vs {:?}",
                                String::from_utf8_lossy(&encoded),
                                String::from_utf8_lossy(&re_encoded)
                            ),
                        );
                    }
                }
            }
            out.summary = format!("wire:accepted:{}", encoded.len());
        }
    }
    out
}

/// What one edge probe observed.
struct ProbeResult {
    status: u16,
    response: Response,
    forwarded: Vec<Option<String>>,
    origin_bytes: u64,
}

fn run_probe(bed: &SizedBed, profile: VendorProfile, req: &Request) -> Result<ProbeResult, String> {
    let segment = Segment::new(SegmentName::CdnOrigin);
    let upstream: Arc<dyn UpstreamService> = bed.origin.clone();
    let edge = EdgeNode::new(profile, upstream, segment.clone());
    let response = catch_unwind(AssertUnwindSafe(|| edge.handle(req))).map_err(panic_message)?;
    Ok(ProbeResult {
        status: response.status().as_u16(),
        forwarded: segment.capture().forwarded_ranges(),
        origin_bytes: segment.stats().response_bytes,
        response,
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn build_request(case: &FuzzCase, etag: &str, date: &str) -> Option<Request> {
    let mut req = Request::get(TARGET_PATH).build();
    req.headers_mut().try_append("Host", TARGET_HOST).ok()?;
    req.headers_mut()
        .try_append("Range", case.range.clone())
        .ok()?;
    let if_range_value = match case.if_range {
        IfRangeKind::None => None,
        IfRangeKind::MatchingEtag => Some(etag.to_string()),
        IfRangeKind::StaleEtag => Some("\"deadbeef-0\"".to_string()),
        IfRangeKind::WeakEtag => Some(format!("W/{etag}")),
        IfRangeKind::MatchingDate => Some(date.to_string()),
        IfRangeKind::StaleDate => Some("Wed, 01 Jan 2020 00:00:00 GMT".to_string()),
        IfRangeKind::Malformed => Some("W/not-a-validator".to_string()),
    };
    if let Some(value) = if_range_value {
        req.headers_mut().try_append("If-Range", value).ok()?;
    }
    if case.pad > 0 {
        req.headers_mut()
            .try_append("X-Fuzz-Pad", "a".repeat(case.pad as usize))
            .ok()?;
    }
    Some(req)
}

/// Sampled slice comparison: length, both 1 KB ends, and 16 strided
/// probes. Full memcmp over 25 MB bodies would dominate the fuzz budget
/// without adding detection power against slicing bugs.
fn slice_mismatch(full: &Body, first: u64, expected_len: u64, got: &Body) -> Option<String> {
    if got.len() != expected_len {
        return Some(format!("length {} != expected {expected_len}", got.len()));
    }
    if expected_len == 0 {
        return None;
    }
    let full = full.as_bytes();
    let got = got.as_bytes();
    let start = first as usize;
    let n = got.len();
    let edge = n.min(1024);
    if got[..edge] != full[start..start + edge] {
        return Some(format!("head bytes differ at offset {first}"));
    }
    if got[n - edge..] != full[start + n - edge..start + n] {
        return Some("tail bytes differ".to_string());
    }
    for k in 0..16u64 {
        let off = (expected_len * k / 16) as usize;
        if got[off] != full[start + off] {
            return Some(format!("byte at relative offset {off} differs"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::case::{FuzzCase, IfRangeKind};
    use super::*;
    use rangeamp_cdn::MitigationConfig;

    fn case(size: u64, range: &str) -> FuzzCase {
        FuzzCase {
            size,
            range: range.to_string(),
            expect: None,
            if_range: IfRangeKind::None,
            pad: 0,
        }
    }

    #[test]
    fn stock_vendors_pass_the_paper_probes() {
        let env = ConformanceEnv::new();
        for range in ["bytes=0-0", "bytes=-1", "bytes=100-", "bytes=0-0,2-2"] {
            let report = check_pipeline(&env, &case(1024 * 1024, range));
            assert!(
                report.violations.is_empty(),
                "{range}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn size_threshold_probes_pass() {
        let env = ConformanceEnv::new();
        const MB: u64 = 1024 * 1024;
        for (size, range) in [
            (12 * MB, "bytes=0-0"),
            (12 * MB, "bytes=8388608-8388608"),
            (9 * MB, "bytes=-1"),
            (25 * MB, "bytes=20000000-20000000"),
        ] {
            let report = check_pipeline(&env, &case(size, range));
            assert!(
                report.violations.is_empty(),
                "{size}/{range}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn injected_policy_bug_is_caught_by_the_model_oracle() {
        // Flip Akamai from Deletion to Laziness via the mitigation override
        // — the model still predicts stock Deletion, so the differential
        // oracle must fire.
        let env = ConformanceEnv::new();
        let mut bugged = Vendor::Akamai.profile();
        bugged.mitigation = MitigationConfig {
            force_laziness: true,
            ..MitigationConfig::none()
        };
        let report = check_pipeline_with_override(
            &env,
            &case(1024 * 1024, "bytes=0-0"),
            Some((Vendor::Akamai, &bugged)),
        );
        let caught = report
            .violations
            .iter()
            .any(|v| v.oracle == "policy-model" && v.vendor == Some(Vendor::Akamai));
        assert!(
            caught,
            "expected a policy-model violation: {:?}",
            report.violations
        );
        // And only Akamai is implicated.
        assert!(report
            .violations
            .iter()
            .all(|v| v.vendor == Some(Vendor::Akamai)));
    }

    #[test]
    fn matching_if_range_is_equivalent_to_none() {
        let env = ConformanceEnv::new();
        let mut probe = case(1024 * 1024, "bytes=0-0");
        probe.if_range = IfRangeKind::MatchingEtag;
        let report = check_pipeline(&env, &probe);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn monotonicity_holds_for_the_sbr_probe() {
        let env = ConformanceEnv::new();
        let report = check_monotonicity(&env, &case(1024 * 1024, "bytes=0-0"));
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
