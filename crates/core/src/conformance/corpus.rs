//! The committed regression corpus: minimised fuzz findings and
//! hand-written probes, stored as plain text under `tests/corpus/` and
//! replayed by an ordinary `cargo test`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use super::case::CorpusEntry;
use super::oracle::Violation;

/// Loads every corpus entry under `dir`, sorted by file name so replay
/// order is stable. `README*` files and anything that is not `.txt` are
/// skipped; a `.txt` file that fails to parse is an error (a corrupt
/// corpus must fail loudly, not silently lose coverage).
pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, CorpusEntry)>> {
    let mut names: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "txt"))
        // `defense-*.txt` fixtures share the corpus directory but use the
        // replay format of `rangeamp_defense::replay`, not `CorpusEntry`.
        .filter(|p| {
            !p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("defense-"))
        })
        .collect();
    names.sort();
    let mut entries = Vec::with_capacity(names.len());
    for path in names {
        let text = fs::read_to_string(&path)?;
        let entry = CorpusEntry::from_text(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        entries.push((name, entry));
    }
    Ok(entries)
}

/// Writes a minimised finding into `dir` as
/// `finding-<oracle>-<vendor>-<seq>.txt`, with the violation detail
/// preserved as a comment header. Returns the path written.
pub fn write_finding(
    dir: &Path,
    violation: &Violation,
    seq: usize,
    entry: &CorpusEntry,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let vendor = violation
        .vendor
        .map(|v| format!("{v:?}").to_ascii_lowercase())
        .unwrap_or_else(|| "any".to_string());
    let path = dir.join(format!(
        "finding-{}-{vendor}-{seq:02}.txt",
        violation.oracle
    ));
    let mut text = String::new();
    text.push_str(&format!("# oracle: {}\n", violation.oracle));
    text.push_str(&format!("# vendor: {vendor}\n"));
    for line in violation.detail.lines() {
        text.push_str(&format!("# {line}\n"));
    }
    text.push_str(&entry.to_text());
    fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::super::case::{FuzzCase, IfRangeKind};
    use super::*;

    #[test]
    fn finding_files_roundtrip_through_load_dir() {
        let dir = std::env::temp_dir().join("rangeamp-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let entry = CorpusEntry::Pipeline(FuzzCase {
            size: 1024,
            range: "bytes=0-0".to_string(),
            expect: None,
            if_range: IfRangeKind::None,
            pad: 0,
        });
        let violation = Violation {
            oracle: "policy-model",
            vendor: None,
            detail: "expected X\ngot Y".to_string(),
        };
        let path = write_finding(&dir, &violation, 3, &entry).expect("write");
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("finding-policy-model-any-03"));
        // A README must be ignored.
        fs::write(dir.join("README.md"), "docs").expect("readme");
        let loaded = load_dir(&dir).expect("load");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, entry);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_corpus_files_fail_loudly() {
        let dir = std::env::temp_dir().join("rangeamp-corpus-corrupt");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("bad.txt"), "kind: nonsense\n").expect("write");
        assert!(load_dir(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
