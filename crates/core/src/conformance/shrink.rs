//! Deterministic greedy shrinking for fuzz findings.
//!
//! A finding is minimised against the predicate "the same (oracle, vendor)
//! violation still fires". Candidates are generated in a fixed order and a
//! candidate is only accepted when its shrink cost is *strictly* smaller, so
//! the loop terminates without an evaluation budget — the budget below is
//! just a belt-and-braces cap on probe work.

use super::case::{CorpusEntry, FuzzCase, IfRangeKind, SIZE_PALETTE};
use super::oracle::{check_entry, ConformanceEnv, Violation};

/// Upper bound on candidate evaluations per shrink.
const DEFAULT_EVALS: u32 = 200;

/// Fixed replacement headers tried before fine-grained edits; each is a
/// one-line repro when it reproduces the violation.
const ARCHETYPES: [&str; 6] = [
    "bytes=0-0",
    "bytes=-1",
    "bytes=0-",
    "bytes=0-0,2-2",
    "bytes=5-2",
    "bytes=-",
];

/// Minimises `entry` while `violation`'s (oracle, vendor) pair keeps
/// firing. Returns the smallest reproducer found (possibly the original).
pub fn shrink(env: &ConformanceEnv, entry: &CorpusEntry, violation: &Violation) -> CorpusEntry {
    let reproduces = |candidate: &CorpusEntry| {
        check_entry(env, candidate)
            .violations
            .iter()
            .any(|v| v.oracle == violation.oracle && v.vendor == violation.vendor)
    };
    let mut best = entry.clone();
    let mut evals = 0u32;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if evals >= DEFAULT_EVALS {
                return best;
            }
            if cost(&candidate) >= cost(&best) {
                continue;
            }
            evals += 1;
            if reproduces(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Shrink order for comparing candidates: palette position, then header
/// complexity, then the auxiliary request dimensions. Every accepted step
/// strictly decreases this, which bounds the loop.
fn cost(entry: &CorpusEntry) -> (u64, u64, u128, u64, u64, u64) {
    match entry {
        CorpusEntry::Wire(w) => (u64::MAX, w.raw.len() as u64, 0, 0, 0, 0),
        CorpusEntry::Pipeline(c) => {
            let size_idx = SIZE_PALETTE
                .iter()
                .position(|&s| s == c.size)
                .unwrap_or(SIZE_PALETTE.len()) as u64;
            (
                size_idx,
                c.range.len() as u64,
                digit_weight(&c.range),
                u64::from(c.if_range != IfRangeKind::None),
                u64::from(c.pad),
                u64::from(c.expect.is_some()),
            )
        }
    }
}

/// Sum of the numeric literals in a header value — lets number-halving
/// count as progress even when the string length is unchanged.
fn digit_weight(value: &str) -> u128 {
    let mut total: u128 = 0;
    let mut current: u128 = 0;
    let mut in_number = false;
    for ch in value.chars() {
        if let Some(d) = ch.to_digit(10) {
            current = current.saturating_mul(10).saturating_add(u128::from(d));
            in_number = true;
        } else if in_number {
            total = total.saturating_add(current);
            current = 0;
            in_number = false;
        }
    }
    total.saturating_add(current)
}

fn candidates(entry: &CorpusEntry) -> Vec<CorpusEntry> {
    match entry {
        CorpusEntry::Pipeline(case) => pipeline_candidates(case)
            .into_iter()
            .map(CorpusEntry::Pipeline)
            .collect(),
        CorpusEntry::Wire(wire) => wire_candidates(&wire.raw)
            .into_iter()
            .map(|raw| CorpusEntry::Wire(super::case::WireCase { raw }))
            .collect(),
    }
}

fn pipeline_candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let mut push = |mutated: FuzzCase| out.push(mutated);

    if case.if_range != IfRangeKind::None {
        let mut c = case.clone();
        c.if_range = IfRangeKind::None;
        push(c);
    }
    if case.pad > 0 {
        let mut c = case.clone();
        c.pad = 0;
        push(c);
    }
    if case.expect.is_some() {
        let mut c = case.clone();
        c.expect = None;
        push(c);
    }
    for &size in &SIZE_PALETTE {
        if size < case.size {
            let mut c = case.clone();
            c.size = size;
            push(c);
        }
    }
    for archetype in ARCHETYPES {
        if case.range != archetype {
            let mut c = case.clone();
            c.range = archetype.to_string();
            c.expect = None;
            push(c);
        }
    }
    // Drop individual specs from a multi-range set.
    if case.range.contains(',') {
        let pieces: Vec<&str> = case.range.split(',').collect();
        for skip in 0..pieces.len() {
            let kept: Vec<&str> = pieces
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, p)| *p)
                .collect();
            let mut c = case.clone();
            c.range = kept.join(",");
            push(c);
        }
    }
    // Halve each numeric literal.
    for (start, len) in number_spans(&case.range) {
        let number: u128 = case.range[start..start + len].parse().unwrap_or(0);
        if number > 0 {
            let mut c = case.clone();
            c.range = format!(
                "{}{}{}",
                &case.range[..start],
                number / 2,
                &case.range[start + len..]
            );
            push(c);
        }
    }
    // Character-level reduction.
    if case.range.len() > 64 {
        let mut c = case.clone();
        let half: String = case.range.chars().take(case.range.len() / 2).collect();
        c.range = half;
        push(c);
    } else {
        for i in 0..case.range.len() {
            if case.range.is_char_boundary(i) {
                let mut c = case.clone();
                let mut reduced = String::with_capacity(case.range.len());
                for (j, ch) in case.range.char_indices() {
                    if j != i {
                        reduced.push(ch);
                    }
                }
                c.range = reduced;
                push(c);
            }
        }
    }
    out
}

/// Byte spans of maximal ASCII digit runs.
fn number_spans(value: &str) -> Vec<(usize, usize)> {
    let bytes = value.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            spans.push((start, i - start));
        } else {
            i += 1;
        }
    }
    spans
}

fn wire_candidates(raw: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    if raw.len() > 1 {
        out.push(raw[..raw.len() / 2].to_vec());
        out.push(raw[..raw.len() - 1].to_vec());
    }
    // Remove 8-byte chunks.
    let chunk = 8;
    let mut offset = 0;
    while offset + chunk <= raw.len() {
        let mut shorter = Vec::with_capacity(raw.len() - chunk);
        shorter.extend_from_slice(&raw[..offset]);
        shorter.extend_from_slice(&raw[offset + chunk..]);
        out.push(shorter);
        offset += chunk;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::case::WireCase;
    use super::*;

    #[test]
    fn digit_weight_sums_literals() {
        assert_eq!(digit_weight("bytes=0-0"), 0);
        assert_eq!(digit_weight("bytes=100-200,5-"), 305);
        assert_eq!(digit_weight("no digits"), 0);
    }

    #[test]
    fn cost_orders_palette_then_header() {
        let small = CorpusEntry::Pipeline(FuzzCase {
            size: SIZE_PALETTE[0],
            range: "bytes=0-0".to_string(),
            expect: None,
            if_range: IfRangeKind::None,
            pad: 0,
        });
        let large = CorpusEntry::Pipeline(FuzzCase {
            size: SIZE_PALETTE[4],
            range: "bytes=0-0".to_string(),
            expect: None,
            if_range: IfRangeKind::None,
            pad: 0,
        });
        assert!(cost(&small) < cost(&large));
    }

    #[test]
    fn candidates_are_deterministic_and_always_cheaper_when_accepted() {
        let case = FuzzCase {
            size: SIZE_PALETTE[3],
            range: "bytes=0-0,100-200".to_string(),
            expect: None,
            if_range: IfRangeKind::MatchingEtag,
            pad: 64,
        };
        let entry = CorpusEntry::Pipeline(case);
        let first = candidates(&entry);
        let second = candidates(&entry);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.to_text(), b.to_text());
        }
    }

    #[test]
    fn wire_candidates_only_shrink() {
        let raw = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
        for cand in wire_candidates(&raw) {
            assert!(cand.len() < raw.len());
        }
        let entry = CorpusEntry::Wire(WireCase { raw: raw.clone() });
        for cand in candidates(&entry) {
            assert!(cost(&cand) < cost(&entry));
        }
    }
}
