//! Declarative re-statement of the 13 per-vendor Range-rewrite policies.
//!
//! This module is the *model* half of the differential oracle: an
//! independent, table-driven prediction of what every vendor forwards to
//! the origin for a given client `Range` header and resource size. It is
//! deliberately written as data-flow over the paper's Tables I/II — not by
//! calling into `rangeamp_cdn` — so a bug in a vendor's miss handler and a
//! bug in this table have to coincide exactly to escape the fuzzer.
//!
//! The observed side is [`crate::conformance::oracle`], which replays the
//! same case through the real [`rangeamp_cdn::EdgeNode`] and compares the
//! captured back-to-origin `Range` headers against this prediction.

use rangeamp_cdn::Vendor;
use rangeamp_http::range::{coalesce, ByteRangeSpec, RangeHeader};

/// CloudFront's chunk alignment: 1 MB.
const CF_CHUNK: u64 = 1 << 20;
/// CloudFront does not expand multi-range windows wider than 10 MB.
const CF_MULTI_WINDOW_MAX: u64 = 10 * 1024 * 1024;
/// Azure's first back-to-origin window boundary: 8 MB.
const AZ_WINDOW_START: u64 = 8 * 1024 * 1024;
/// Azure's second connection covers `[8 MB, 16 MB - 1]`.
const AZ_WINDOW_END: u64 = 16 * 1024 * 1024 - 1;
/// CDN77 deletes `bytes=first-last` only when `first` < 1 KB.
const CDN77_DELETE_BELOW: u64 = 1024;
/// Huawei's threshold between the suffix-deletion and double-fetch regimes.
const HW_SIZE_THRESHOLD: u64 = 10 * 1024 * 1024;

/// One predicted back-to-origin request, described by its `Range` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fwd {
    /// The fetch carries no `Range` header (Deletion, or no client range).
    Deleted,
    /// The fetch carries the client's range in canonical serialized form
    /// (Laziness — the node re-serializes the parsed header, so
    /// "byte-identical" holds up to RFC 7233 canonicalization).
    Unchanged,
    /// The fetch carries exactly this `Range` value (Expansion/coalescing).
    Exact(String),
}

impl Fwd {
    /// Whether an observed forwarded `Range` value matches this prediction,
    /// given the canonical serialization of the client's header.
    pub fn matches(&self, observed: Option<&str>, canonical: Option<&str>) -> bool {
        match self {
            Fwd::Deleted => observed.is_none(),
            Fwd::Unchanged => observed.is_some() && observed == canonical,
            Fwd::Exact(value) => observed == Some(value.as_str()),
        }
    }
}

/// Predicts the ordered back-to-origin request sequence for `vendor`.
///
/// * `range` — the client's `Range` header as parsed by the edge
///   (`None` for absent or malformed-per-RFC-7233 headers).
/// * `size` — the resource's complete length (the emulated edges always
///   have a size hint for existing resources).
/// * `origin_honors_range` — whether the origin will answer a satisfiable
///   single-range fetch with a 206 (false when an `If-Range` validator
///   fails, voiding the range). Only StackPath's forwarded sequence is
///   response-dependent in this way.
///
/// An empty vector means the edge answers directly without contacting the
/// origin (a coalesced multi-range set that resolves to nothing → 416).
pub fn expected_forwarding(
    vendor: Vendor,
    range: Option<&RangeHeader>,
    size: u64,
    origin_honors_range: bool,
) -> Vec<Fwd> {
    let Some(header) = range else {
        // No (or malformed) Range: every vendor does a plain full fetch.
        return vec![Fwd::Deleted];
    };
    if header.is_multi() {
        return expected_multi(vendor, header, size);
    }
    let spec = header.specs()[0];
    let resolved = spec.resolve(size);
    match vendor {
        // Table I: first-last and -suffix deleted, open-ended relayed.
        Vendor::Akamai | Vendor::Fastly | Vendor::GCoreLabs => match spec {
            ByteRangeSpec::FromTo { .. } | ByteRangeSpec::Suffix { .. } => vec![Fwd::Deleted],
            ByteRangeSpec::From { .. } => vec![Fwd::Unchanged],
        },
        // Table I (option enabled): only -suffix is deleted.
        Vendor::AlibabaCloud => match spec {
            ByteRangeSpec::Suffix { .. } => vec![Fwd::Deleted],
            _ => vec![Fwd::Unchanged],
        },
        Vendor::Azure => {
            if size <= AZ_WINDOW_START {
                return vec![Fwd::Deleted];
            }
            match resolved {
                // Unsatisfiable: still a (deleted) full fetch.
                None => vec![Fwd::Deleted],
                // First window: one aborted full fetch.
                Some(r) if r.last < AZ_WINDOW_START => vec![Fwd::Deleted],
                // Second window: aborted full fetch + the fixed window.
                Some(r) if r.first >= AZ_WINDOW_START && r.last <= AZ_WINDOW_END => vec![
                    Fwd::Deleted,
                    Fwd::Exact(format!(
                        "bytes={AZ_WINDOW_START}-{}",
                        AZ_WINDOW_END.min(size - 1)
                    )),
                ],
                // Straddling or beyond 16 MB: relayed verbatim.
                Some(_) => vec![Fwd::Unchanged],
            }
        }
        Vendor::Cdn77 => match spec {
            ByteRangeSpec::FromTo { first, .. } if first < CDN77_DELETE_BELOW => {
                vec![Fwd::Deleted]
            }
            _ => vec![Fwd::Unchanged],
        },
        Vendor::CdnSun => match spec {
            ByteRangeSpec::FromTo { first: 0, .. } => vec![Fwd::Deleted],
            _ => vec![Fwd::Unchanged],
        },
        // Cloudflare wants the whole object for its cache.
        Vendor::Cloudflare => vec![Fwd::Deleted],
        Vendor::CloudFront => match spec {
            ByteRangeSpec::FromTo { first, last } => vec![Fwd::Exact(format!(
                "bytes={}-{}",
                cf_align_down(first),
                cf_align_up(last)
            ))],
            ByteRangeSpec::From { first } => {
                vec![Fwd::Exact(format!("bytes={}-", cf_align_down(first)))]
            }
            ByteRangeSpec::Suffix { .. } => vec![Fwd::Unchanged],
        },
        Vendor::HuaweiCloud => match spec {
            ByteRangeSpec::Suffix { .. } if size < HW_SIZE_THRESHOLD => vec![Fwd::Deleted],
            ByteRangeSpec::FromTo { .. } if size >= HW_SIZE_THRESHOLD => {
                // "None & None": two full back-to-origin fetches.
                vec![Fwd::Deleted, Fwd::Deleted]
            }
            _ => vec![Fwd::Unchanged],
        },
        // First request for a fresh cache key is always Laziness; the
        // conformance beds are fresh per probe, so Deletion-on-second-hit
        // never shows up here.
        Vendor::KeyCdn => vec![Fwd::Unchanged],
        Vendor::StackPath => {
            // Laziness first; a 206 triggers the range-less re-forward.
            if resolved.is_some() && origin_honors_range {
                vec![Fwd::Unchanged, Fwd::Deleted]
            } else {
                vec![Fwd::Unchanged]
            }
        }
        Vendor::TencentCloud => match spec {
            ByteRangeSpec::FromTo { .. } => vec![Fwd::Deleted],
            _ => vec![Fwd::Unchanged],
        },
    }
}

/// Multi-range prediction (Table II: only CDN77, StackPath, and CDNsun's
/// `start1 ≥ 1` all-open sets are relayed verbatim).
fn expected_multi(vendor: Vendor, header: &RangeHeader, size: u64) -> Vec<Fwd> {
    match vendor {
        Vendor::Cdn77 | Vendor::StackPath => vec![Fwd::Unchanged],
        Vendor::CdnSun => {
            let all_open = header
                .specs()
                .iter()
                .all(|s| matches!(s, ByteRangeSpec::From { .. }));
            let first_start = match header.specs()[0] {
                ByteRangeSpec::From { first } => Some(first),
                _ => None,
            };
            if all_open && first_start.is_some_and(|s| s >= 1) {
                vec![Fwd::Unchanged]
            } else {
                expected_coalesced(header, size)
            }
        }
        Vendor::CloudFront => {
            let all_from_to = header
                .specs()
                .iter()
                .all(|s| matches!(s, ByteRangeSpec::FromTo { .. }));
            if !all_from_to {
                return expected_coalesced(header, size);
            }
            let mut min_first = u64::MAX;
            let mut max_last = 0u64;
            for spec in header.specs() {
                if let ByteRangeSpec::FromTo { first, last } = *spec {
                    min_first = min_first.min(first);
                    max_last = max_last.max(last);
                }
            }
            let first = cf_align_down(min_first);
            let last = cf_align_up(max_last);
            if last - first >= CF_MULTI_WINDOW_MAX {
                vec![Fwd::Unchanged]
            } else {
                vec![Fwd::Exact(format!("bytes={first}-{last}"))]
            }
        }
        _ => expected_coalesced(header, size),
    }
}

/// The shared `coalesced_forward` path: merge the resolved set and forward
/// it in one fetch; an empty resolution is answered directly (no fetch).
fn expected_coalesced(header: &RangeHeader, size: u64) -> Vec<Fwd> {
    let merged = coalesce(&header.resolve(size));
    if merged.is_empty() {
        return Vec::new();
    }
    let specs: Vec<String> = merged
        .iter()
        .map(|r| {
            if r.last + 1 == size {
                format!("{}-", r.first)
            } else {
                format!("{}-{}", r.first, r.last)
            }
        })
        .collect();
    vec![Fwd::Exact(format!("bytes={}", specs.join(",")))]
}

fn cf_align_down(pos: u64) -> u64 {
    pos & !(CF_CHUNK - 1)
}

fn cf_align_up(pos: u64) -> u64 {
    pos | (CF_CHUNK - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn h(value: &str) -> RangeHeader {
        RangeHeader::parse(value).expect("test header parses")
    }

    #[test]
    fn absent_range_is_a_single_deleted_fetch_everywhere() {
        for vendor in Vendor::ALL {
            assert_eq!(
                expected_forwarding(vendor, None, MB, true),
                vec![Fwd::Deleted],
                "{vendor:?}"
            );
        }
    }

    #[test]
    fn table_one_single_range_rows() {
        let sbr = h("bytes=0-0");
        assert_eq!(
            expected_forwarding(Vendor::Akamai, Some(&sbr), MB, true),
            vec![Fwd::Deleted]
        );
        assert_eq!(
            expected_forwarding(Vendor::KeyCdn, Some(&sbr), MB, true),
            vec![Fwd::Unchanged]
        );
        assert_eq!(
            expected_forwarding(Vendor::StackPath, Some(&sbr), MB, true),
            vec![Fwd::Unchanged, Fwd::Deleted]
        );
        assert_eq!(
            expected_forwarding(Vendor::CloudFront, Some(&sbr), MB, true),
            vec![Fwd::Exact("bytes=0-1048575".to_string())]
        );
    }

    #[test]
    fn azure_window_and_huawei_double_fetch() {
        let probe = h("bytes=8388608-8388608");
        assert_eq!(
            expected_forwarding(Vendor::Azure, Some(&probe), 25 * MB, true),
            vec![
                Fwd::Deleted,
                Fwd::Exact("bytes=8388608-16777215".to_string())
            ]
        );
        let sbr = h("bytes=0-0");
        assert_eq!(
            expected_forwarding(Vendor::HuaweiCloud, Some(&sbr), 12 * MB, true),
            vec![Fwd::Deleted, Fwd::Deleted]
        );
    }

    #[test]
    fn coalesced_set_resolving_to_nothing_means_no_fetch() {
        let unsat = h("bytes=2000-3000,4000-5000");
        assert_eq!(
            expected_forwarding(Vendor::Akamai, Some(&unsat), 1024, true),
            Vec::<Fwd>::new()
        );
    }
}
